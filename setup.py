"""Setup script (also the canonical project metadata).

Kept as an executable ``setup.py`` so that editable installs work on
environments without the ``wheel`` package (offline CI containers), where
pip falls back to the legacy ``setup.py develop`` code path.
"""

from setuptools import find_packages, setup

setup(
    name="repro-js-relaxed-memory",
    version="0.2.0",
    description=(
        "Reproduction of Watt et al. (PLDI 2020): repairing and mechanising "
        "the JavaScript relaxed memory model"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro-cache=repro.dispatch.store:main",
            "repro-serve=repro.service.server:main",
            "repro-query=repro.service.client:main",
            "repro-analyze=repro.analyze.cli:main",
            "repro-lint=repro.analyze.lint:main",
        ],
    },
    extras_require={
        "bench": ["pytest-benchmark"],
        "test": ["pytest", "hypothesis"],
    },
)
