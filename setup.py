"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so that editable installs work on environments without the ``wheel``
package (offline CI containers), where pip falls back to the legacy
``setup.py develop`` code path.
"""

from setuptools import setup

setup()
