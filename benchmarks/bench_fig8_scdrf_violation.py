"""Fig. 7/8 — the SC-DRF violation of the original model and its repair (§3.2)."""

from repro.core import FINAL_MODEL, ORIGINAL_MODEL
from repro.lang import non_sc_outcomes, program_is_data_race_free
from repro.litmus.catalogue import fig8_sc_drf_violation

from conftest import print_rows, run_once


def test_fig8_is_data_race_free(benchmark):
    program = fig8_sc_drf_violation().program
    drf = run_once(benchmark, program_is_data_race_free, program, ORIGINAL_MODEL)
    assert drf
    print_rows("Fig. 8 data-race freedom", ["data-race-free under the Fig. 7 definition"])


def test_fig8_non_sc_outcome_under_original_model(benchmark):
    program = fig8_sc_drf_violation().program
    weird = run_once(benchmark, non_sc_outcomes, program, ORIGINAL_MODEL)
    assert {"1:r0": 1, "1:r1": 2} in weird
    print_rows(
        "Fig. 8 under the ES2019 model",
        [f"non-SC outcomes allowed: {weird} (SC-DRF violated)"],
    )


def test_fig8_sc_drf_restored_by_final_model(benchmark):
    program = fig8_sc_drf_violation().program
    weird = run_once(benchmark, non_sc_outcomes, program, FINAL_MODEL)
    assert weird == []
    print_rows("Fig. 8 under the corrected model", ["no non-SC outcome (SC-DRF restored)"])
