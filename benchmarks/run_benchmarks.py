#!/usr/bin/env python
"""Run the pytest-benchmark suite and export a ``BENCH_<date>.json`` file.

This seeds (and extends) the repository's performance trajectory: each run
writes one machine-readable snapshot next to the benchmarks, so successive
PRs can be compared with ``pytest-benchmark compare`` or plain ``jq``.

Usage::

    python benchmarks/run_benchmarks.py                 # full suite
    python benchmarks/run_benchmarks.py --label after   # BENCH_<date>_after.json
    python benchmarks/run_benchmarks.py bench_sec5_counterexample_search.py

Any positional arguments are benchmark files (relative to ``benchmarks/``)
to restrict the run to; with none, the whole suite runs.  Requires the
``bench`` extra (``pip install -e .[bench]``).
"""

from __future__ import annotations

import argparse
import datetime
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files",
        nargs="*",
        help="benchmark files to run (relative to benchmarks/); default: all",
    )
    parser.add_argument(
        "--label",
        default="",
        help="suffix for the output file name (BENCH_<date>_<label>.json)",
    )
    parser.add_argument(
        "--output-dir",
        default=str(BENCH_DIR),
        help="directory to write the BENCH_*.json snapshot into",
    )
    args = parser.parse_args()

    try:
        import pytest_benchmark  # noqa: F401
    except ImportError:
        print(
            "pytest-benchmark is not installed; install the bench extra:\n"
            "    pip install -e .[bench]",
            file=sys.stderr,
        )
        return 1

    date = datetime.date.today().isoformat()
    suffix = f"_{args.label}" if args.label else ""
    output = Path(args.output_dir) / f"BENCH_{date}{suffix}.json"

    targets = (
        [str(BENCH_DIR / name) for name in args.files]
        if args.files
        # bench_*.py does not match pytest's default test_* collection
        # pattern, so enumerate the files explicitly.
        else sorted(str(p) for p in BENCH_DIR.glob("bench_*.py"))
    )
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    command = [
        sys.executable,
        "-m",
        "pytest",
        *targets,
        "-q",
        f"--benchmark-json={output}",
    ]
    print("+", " ".join(command))
    result = subprocess.run(command, cwd=BENCH_DIR, env=env)
    if result.returncode == 0:
        print(f"benchmark snapshot written to {output}")
    return result.returncode


if __name__ == "__main__":
    raise SystemExit(main())
