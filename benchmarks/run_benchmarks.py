#!/usr/bin/env python
"""Run the pytest-benchmark suite and export a ``BENCH_<date>.json`` file.

This seeds (and extends) the repository's performance trajectory: each run
writes one machine-readable snapshot next to the benchmarks, so successive
PRs can be compared with ``pytest-benchmark compare`` or plain ``jq``.

Usage::

    python benchmarks/run_benchmarks.py                 # full suite
    python benchmarks/run_benchmarks.py --label after   # BENCH_<date>_after.json
    python benchmarks/run_benchmarks.py bench_sec5_counterexample_search.py
    python benchmarks/run_benchmarks.py --filter "serial or cold"
    python benchmarks/run_benchmarks.py --compare benchmarks/BENCH_2026-07-29_after.json
    python benchmarks/run_benchmarks.py --quick --compare <baseline>   # per-PR gate

Any positional arguments are benchmark files (relative to ``benchmarks/``)
to restrict the run to; with none, the whole suite runs.  ``--filter`` is a
pytest ``-k`` expression over test names.  ``--compare BASELINE`` turns the
run into a regression gate: after the run, each benchmark's mean is compared
against the same benchmark in ``BASELINE`` and the exit code is non-zero if
any slowed down by more than ``--threshold`` (default 1.25×) — suitable for
CI.  Requires the ``bench`` extra (``pip install -e .[bench]``).
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"

# The --quick profile: a sub-minute subset covering both §5 sweeps, the
# bounded-correctness corpus and the headline paper figures — enough signal
# for a per-PR regression gate (pair with --compare) without the multi-minute
# full suite.
QUICK_FILES = (
    "bench_sec5_counterexample_search.py",
    "bench_sec5_bounded_correctness.py",
    "bench_fig1_message_passing.py",
    "bench_fig6_armv8_violation.py",
    "bench_fig8_scdrf_violation.py",
    "bench_resilience_overhead.py",
    "bench_store_backends.py",
    "bench_analyze.py",
    "bench_symmetry.py",
)

# The fault-free-overhead budget of the resilience layer, for the
# informational snapshot report below.  The *enforced* gate lives in
# bench_resilience_overhead.py::test_fault_free_overhead_budget, which
# interleaves the on/off arms so host-load drift cannot fail one arm only;
# a budget breach there fails the pytest run (and hence --quick) directly.
RESILIENCE_OVERHEAD_THRESHOLD = 1.05


class SnapshotError(Exception):
    """A BENCH_*.json file that cannot be read as a pytest-benchmark snapshot."""


def _load_stat(path: Path, stat: str = "mean") -> dict:
    """``{fullname: <stat> seconds}`` of a pytest-benchmark JSON snapshot.

    Raises :class:`SnapshotError` — with the offending path and what went
    wrong — for unreadable files, invalid JSON, or JSON that is not a
    pytest-benchmark snapshot (e.g. a hand-edited or truncated baseline).
    """
    try:
        with path.open() as handle:
            data = json.load(handle)
    except OSError as exc:
        raise SnapshotError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SnapshotError(
            f"{path} is not valid JSON ({exc}); was the file truncated or "
            "hand-edited?  Re-generate it with run_benchmarks.py"
        ) from exc
    try:
        benchmarks = data["benchmarks"]
        return {
            bench.get("fullname", bench["name"]): float(bench["stats"][stat])
            for bench in benchmarks
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(
            f"{path} is valid JSON but not a pytest-benchmark snapshot "
            f"(missing or malformed {exc!r}); expected the schema written "
            "by run_benchmarks.py / pytest --benchmark-json"
        ) from exc


def _load_means(path: Path) -> dict:
    """``{fullname: mean seconds}`` of a pytest-benchmark JSON snapshot."""
    return _load_stat(path, "mean")


def check_resilience_overhead(snapshot: Path, threshold: float) -> None:
    """Report the fault-free overhead of the resilience layer (informational).

    Looks for paired ``*resilience_off*`` / ``*resilience_on*`` benchmarks in
    ``snapshot`` (produced by ``bench_resilience_overhead.py``) and prints
    each pair's on/off ratio over the arms' *minimum* rounds (min-of-rounds
    is the standard noise-robust estimator — noise only ever adds time).
    The two snapshot arms run minutes apart within the profile, so their
    ratio wobbles with host load; this report does NOT gate.  The enforced
    budget is ``test_fault_free_overhead_budget`` in the same bench file,
    which interleaves the arms and fails the pytest run itself.
    """
    mins = _load_stat(snapshot, "min")
    on = {
        name.replace("resilience_on", "@"): value
        for name, value in mins.items()
        if "resilience_on" in name
    }
    off = {
        name.replace("resilience_off", "@"): value
        for name, value in mins.items()
        if "resilience_off" in name
    }
    for stem in sorted(set(on) & set(off)):
        ratio = on[stem] / off[stem] if off[stem] > 0 else float("inf")
        print(
            f"  resilience overhead {stem.replace('@', '*')}: "
            f"{off[stem] * 1000:.1f} ms bare -> {on[stem] * 1000:.1f} ms "
            f"supervised+journaled ({ratio:.3f}x; budget {threshold:.2f}x "
            "enforced in-suite by the interleaved gate)"
        )


def report_cache_health(snapshot: Path) -> None:
    """Print the verdict-cache counters recorded in the snapshot.

    Warm-cache benchmarks stash the sweep's ``VerdictCache.stats()`` dict
    in ``extra_info["cache_stats"]``; surfacing them here makes a snapshot
    self-describing — a "warm" row whose counters show misses or corrupt
    entries is measuring recomputation, not the cache.  Informational only.
    """
    try:
        with snapshot.open() as handle:
            benchmarks = json.load(handle)["benchmarks"]
    except (OSError, json.JSONDecodeError, KeyError, TypeError):
        return
    rows = []
    for bench in benchmarks:
        stats = (bench.get("extra_info") or {}).get("cache_stats")
        if not isinstance(stats, dict):
            continue
        name = bench.get("fullname", bench.get("name", "?"))
        counters = ", ".join(
            f"{key}={stats[key]}"
            for key in ("backend", "hits", "misses", "writes", "corrupt", "evictions")
            if key in stats
        )
        rows.append(f"  cache health {name}: {counters}")
    symmetry_rows = []
    for bench in benchmarks:
        stats = (bench.get("extra_info") or {}).get("symmetry_stats")
        if not isinstance(stats, dict):
            continue
        name = bench.get("fullname", bench.get("name", "?"))
        counters = ", ".join(
            f"{key}={stats[key]}"
            for key in (
                "orbits_seen",
                "members_skipped",
                "canonical_cache_hits",
                "parity_failures",
            )
            if key in stats
        )
        symmetry_rows.append(f"  symmetry {name}: {counters}")
    if rows:
        print("verdict-cache counters (from extra_info):")
        for row in rows:
            print(row)
    if symmetry_rows:
        print("symmetry counters (from extra_info):")
        for row in symmetry_rows:
            print(row)


def compare_snapshots(current: Path, baseline: Path, threshold: float) -> int:
    """Print a comparison table; return the number of regressions past threshold.

    Compares the arms' *minimum* rounds, not their means — the same
    noise-robust estimator :func:`check_resilience_overhead` documents
    (scheduler and I/O noise only ever add time, so the min of each arm is
    the consistent estimate of its quiet floor).  Single-round arms are
    unaffected (min == mean); multi-round arms stop flagging a noisy round
    as a regression.
    """
    current_means = _load_stat(current, "min")
    baseline_means = _load_stat(baseline, "min")
    common = sorted(set(current_means) & set(baseline_means))
    only_current = sorted(set(current_means) - set(baseline_means))
    only_baseline = sorted(set(baseline_means) - set(current_means))
    regressions = []
    print(f"\ncomparison vs {baseline} (fail ratio > {threshold:.2f}):")
    for name in common:
        base, cur = baseline_means[name], current_means[name]
        ratio = cur / base if base > 0 else float("inf")
        marker = " REGRESSION" if ratio > threshold else ""
        print(f"  {name}: {base * 1000:.1f} ms -> {cur * 1000:.1f} ms ({ratio:.2f}x){marker}")
        if ratio > threshold:
            regressions.append(name)
    for name in only_current:
        print(f"  {name}: (new, {current_means[name] * 1000:.1f} ms)")
    for name in only_baseline:
        print(f"  {name}: (missing from current run)")
    if regressions:
        print(f"{len(regressions)} regression(s) past {threshold:.2f}x")
    return len(regressions)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files",
        nargs="*",
        help="benchmark files to run (relative to benchmarks/); default: all",
    )
    parser.add_argument(
        "--label",
        default="",
        help="suffix for the output file name (BENCH_<date>_<label>.json)",
    )
    parser.add_argument(
        "--output-dir",
        default=str(BENCH_DIR),
        help="directory to write the BENCH_*.json snapshot into",
    )
    parser.add_argument(
        "--filter",
        default="",
        help="pytest -k expression selecting benchmarks within the files",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the sub-minute quick profile (both §5 sweeps, the "
        "bounded-correctness corpus and the headline figures); combine "
        "with --compare for a per-PR regression gate",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE",
        default="",
        help="compare against a baseline BENCH_*.json; exit non-zero on regression",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="regression gate: fail when current mean > baseline mean x threshold",
    )
    args = parser.parse_args()

    try:
        import pytest_benchmark  # noqa: F401
    except ImportError:
        print(
            "pytest-benchmark is not installed; install the bench extra:\n"
            "    pip install -e .[bench]",
            file=sys.stderr,
        )
        return 1

    if args.quick:
        if args.files:
            print(
                "--quick selects its own file set; drop the positional "
                "benchmark files or run without --quick",
                file=sys.stderr,
            )
            return 2
        args.files = list(QUICK_FILES)
        if not args.label:
            args.label = "quick"

    date = datetime.date.today().isoformat()
    suffix = f"_{args.label}" if args.label else ""
    # Resolve now, against the invoker's cwd: the pytest subprocess runs
    # with cwd=BENCH_DIR, and --compare reopens this path afterwards.
    output = (Path(args.output_dir) / f"BENCH_{date}{suffix}.json").resolve()
    output.parent.mkdir(parents=True, exist_ok=True)

    baseline = None
    if args.compare:
        # Resolve (and sanity-check) the baseline BEFORE the run: the run
        # writes the output file first, and a baseline that resolves to the
        # same path would be silently overwritten — the "gate" would then
        # compare the run against itself and always pass.
        baseline = Path(args.compare)
        if not baseline.is_absolute():
            # Try the invoker's cwd first, then the benchmarks directory.
            baseline = (
                Path.cwd() / args.compare
                if (Path.cwd() / args.compare).exists()
                else BENCH_DIR / args.compare
            )
        if not baseline.exists():
            print(f"baseline {args.compare} not found", file=sys.stderr)
            return 2
        try:
            # Validate the schema BEFORE the (multi-minute) run, so a
            # malformed baseline fails in milliseconds, not after it.
            _load_means(baseline)
        except SnapshotError as exc:
            print(f"bad --compare baseline: {exc}", file=sys.stderr)
            return 2
        baseline = baseline.resolve()
        if baseline == output:
            print(
                f"baseline {args.compare} is this run's own output file; "
                "give the baseline run a distinct --label (e.g. "
                "--label before) or pass --output-dir",
                file=sys.stderr,
            )
            return 2

    targets = (
        [str(BENCH_DIR / name) for name in args.files]
        if args.files
        # bench_*.py does not match pytest's default test_* collection
        # pattern, so enumerate the files explicitly.
        else sorted(str(p) for p in BENCH_DIR.glob("bench_*.py"))
    )
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    command = [
        sys.executable,
        "-m",
        "pytest",
        *targets,
        "-q",
        f"--benchmark-json={output}",
    ]
    if args.filter:
        command.extend(["-k", args.filter])
    print("+", " ".join(command))
    result = subprocess.run(command, cwd=BENCH_DIR, env=env)
    if result.returncode != 0:
        return result.returncode
    print(f"benchmark snapshot written to {output}")
    if args.quick:
        check_resilience_overhead(output, RESILIENCE_OVERHEAD_THRESHOLD)
    report_cache_health(output)
    if baseline is not None:
        try:
            if compare_snapshots(output, baseline, args.threshold):
                return 1
        except SnapshotError as exc:
            print(f"cannot compare snapshots: {exc}", file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
