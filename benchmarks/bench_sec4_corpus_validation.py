"""§4.1 — validating the mixed-size ARMv8 axiomatic model against the operational model.

The paper's run: 11,587 litmus tests, 167,014 Flat-generated candidate
executions, all allowed by the axiomatic model.  Here the corpus comes from
the diy-style generator and the operational Flat-substitute; the statistic
that must reproduce is the soundness verdict (zero axiomatic rejections).
"""

from repro.armv8 import validate_corpus
from repro.litmus import GeneratorConfig, generate_arm_corpus

from conftest import print_rows, run_once

CORPUS_SIZE = 64


def _corpus():
    """A uni-size sweep plus the mixed-size variants (the §4.1 corpus split)."""
    uni = list(generate_arm_corpus(GeneratorConfig(max_tests=CORPUS_SIZE)))
    mixed = [
        program
        for program in generate_arm_corpus(
            GeneratorConfig(accesses_per_thread=1, include_mixed_size=True)
        )
        if "mixed" in program.name
    ]
    return uni + mixed


def test_sec4_corpus_validation_soundness(benchmark):
    corpus = _corpus()
    result = run_once(benchmark, validate_corpus, corpus)
    assert result.sound
    print_rows(
        "§4.1 corpus validation (paper: 11,587 tests / 167,014 executions / 0 rejections)",
        [
            f"tests run            : {result.programs}",
            f"mixed-size tests     : {result.mixed_size_programs}",
            f"operational executions checked: {result.executions}",
            f"axiomatic rejections : {result.failures}",
        ],
    )
