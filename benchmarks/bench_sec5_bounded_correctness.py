"""§5.3 / Thm 6.2 — bounded compilation correctness and the tot construction.

For every program in the sweep, every ARMv8-allowed execution of its
compilation must translate to a JavaScript-valid execution, and the
``tot := linear extension of sb ∪ (obs ∩ (L∪A)²)`` construction must itself
provide the witness (the paper model-checks exactly this before using the
construction in the Coq proof).
"""

from repro.compile import check_corpus_compilation
from repro.core import FINAL_MODEL
from repro.litmus.catalogue import (
    fig1_message_passing,
    fig6_armv8_violation,
    fig8_sc_drf_violation,
    load_buffering,
    message_passing,
    rmw_exchange_mutex,
    store_buffering,
)

from conftest import print_rows, run_once

PROGRAMS = [
    fig1_message_passing().program,
    fig6_armv8_violation().program,
    fig8_sc_drf_violation().program,
    store_buffering(True).program,
    store_buffering(False).program,
    load_buffering(True).program,
    message_passing(True, False).program,
    rmw_exchange_mutex().program,
]


def test_bounded_compilation_correctness_final_model(benchmark):
    results = run_once(benchmark, check_corpus_compilation, PROGRAMS, FINAL_MODEL)
    assert all(result.correct for result in results)
    assert all(result.construction_complete for result in results)
    rows = [result.summary() for result in results]
    total = sum(result.arm_executions for result in results)
    rows.append(f"total ARM executions checked: {total}; counter-examples: 0")
    print_rows("§5.3 bounded compilation correctness (corrected model)", rows)
