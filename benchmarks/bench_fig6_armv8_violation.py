"""Fig. 5/6 — the ARMv8 compilation-scheme violation of the original model (§3.1)."""

from repro.armv8 import arm_operational_outcomes, arm_outcome_allowed
from repro.compile import compile_program, find_compilation_violation
from repro.core import ARMV8_FIX_MODEL, FINAL_MODEL, ORIGINAL_MODEL
from repro.lang import outcome_allowed
from repro.litmus.catalogue import fig6_armv8_violation

from conftest import print_rows, run_once

OUTCOME = {"0:r1": 1, "1:r2": 1}


def test_fig6_forbidden_by_original_model(benchmark):
    program = fig6_armv8_violation().program
    allowed = run_once(benchmark, outcome_allowed, program, OUTCOME, ORIGINAL_MODEL)
    assert not allowed
    print_rows("Fig. 6 under the ES2019 model", [f"{OUTCOME}: forbidden"])


def test_fig6_allowed_by_fixed_models(benchmark):
    program = fig6_armv8_violation().program
    allowed = run_once(benchmark, outcome_allowed, program, OUTCOME, FINAL_MODEL)
    assert allowed
    assert outcome_allowed(program, OUTCOME, ARMV8_FIX_MODEL)
    print_rows("Fig. 6 under the corrected models", [f"{OUTCOME}: allowed"])


def test_fig6_allowed_by_armv8_for_compiled_program(benchmark):
    compiled = compile_program(fig6_armv8_violation().program)
    allowed = run_once(benchmark, arm_outcome_allowed, compiled.arm, OUTCOME)
    assert allowed
    operational = arm_operational_outcomes(compiled.arm)
    assert any(all(o.get(k) == v for k, v in OUTCOME.items()) for o in operational)
    print_rows(
        "Fig. 6b compiled to ARMv8 (ldar/stlr scheme)",
        ["axiomatic model: allowed", "operational (Flat-substitute) model: allowed"],
    )


def test_fig6_is_a_compilation_counterexample(benchmark):
    program = fig6_armv8_violation().program
    violation = run_once(benchmark, find_compilation_violation, program, ORIGINAL_MODEL)
    assert violation is not None
    assert violation.event_count == 6 and violation.byte_location_count == 2
    print_rows(
        "Compilation counter-example against the ES2019 model",
        [f"{violation.event_count} events, {violation.byte_location_count} byte locations (paper: 6 / 2)"],
    )
