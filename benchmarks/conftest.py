"""Shared helpers for the benchmark harness.

Every benchmark regenerates one row/figure of the paper's evaluation (see
DESIGN.md's per-experiment index) and asserts the qualitative result — who
wins, what is allowed/forbidden — while pytest-benchmark records the cost of
the underlying model-checking run.  Each benchmark runs its workload once
(``rounds=1``): the workloads are exhaustive enumerations, so repeated
timing adds nothing but wall-clock.
"""

from __future__ import annotations

import gc


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark ``function`` with a single round and return its result.

    Pending garbage is collected *before* the round: single-round timings of
    millisecond workloads are otherwise at the mercy of whichever test's
    allocations happen to push the gen-2 threshold over during the timed
    window — a ~15 ms pause billed to a random 1 ms victim looks like a 15x
    regression that appears and disappears as unrelated files join the run.
    Each benchmark still pays for its own allocations.
    """
    gc.collect()
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_rows(title, rows):
    """Print a small result table under a header (the 'regenerated figure')."""
    print(f"\n=== {title} ===")
    for row in rows:
        print("   ", row)
