"""§5.1/§5.2/§5.4 — the bounded counter-example searches and their minimal sizes.

Paper results reproduced here:

* SC-DRF search (§5.4): the original model has a 4-event, 1-location
  counter-example (Fig. 8), smaller than the 6-event, 2-location hand-found
  one of Watt et al. [52].
* ARMv8-compilation search (§5.1): the original model has a 6-event,
  2-byte-location counter-example (Fig. 6), smaller than the 8-event,
  3-location hand-found one.
* Both searches come up empty against the corrected model within a small
  bound (§5.3's bounded correctness for the compilation side).
"""

import pytest

from repro.compile import find_compilation_violation
from repro.core import FINAL_MODEL, ORIGINAL_MODEL
from repro.litmus.catalogue import fig6_armv8_violation
from repro.search import SearchBounds, search_sc_drf_violation

from conftest import print_rows, run_once

SC_DRF_BOUNDS = SearchBounds(
    threads=2,
    max_accesses_per_thread=2,
    max_total_accesses=4,
    locations=1,
    values=(1, 2),
    guarded_observer=True,
)

SMALL_BOUNDS = SearchBounds(
    threads=2,
    max_accesses_per_thread=2,
    max_total_accesses=3,
    locations=1,
    values=(1, 2),
    guarded_observer=False,
)


def test_sc_drf_search_minimal_counterexample(benchmark):
    report = run_once(benchmark, search_sc_drf_violation, SC_DRF_BOUNDS, ORIGINAL_MODEL)
    assert report.found
    ce = report.counterexample
    assert (ce.event_count, ce.location_count) == (4, 1)
    print_rows(
        "§5.4 SC-DRF counter-example sizes",
        [
            "hand-found (Watt et al. [52]) : 6 events, 2 locations",
            f"search-found (this run)       : {ce.event_count} events, {ce.location_count} location(s)"
            f"  [{report.programs_examined} programs examined]",
        ],
    )


def test_sc_drf_search_empty_for_corrected_model(benchmark):
    report = run_once(benchmark, search_sc_drf_violation, SMALL_BOUNDS, FINAL_MODEL)
    assert not report.found
    print_rows(
        "§5.4 against the corrected model",
        [f"no counter-example within the bound ({report.programs_examined} programs)"],
    )


def test_armv8_compilation_counterexample_size(benchmark):
    """§5.1: the minimal compilation counter-example (via the Fig. 6 shape).

    A blind sweep over all 6-access programs is hours of CPU; like the paper
    (which seeds Alloy with the compilation scheme and symmetry breaking) we
    check the known minimal shape and report its size, plus the §5.3 result
    that the corrected model admits no counter-example for the same program.
    """
    program = fig6_armv8_violation().program
    violation = run_once(benchmark, find_compilation_violation, program, ORIGINAL_MODEL)
    assert violation is not None
    assert (violation.event_count, violation.byte_location_count) == (6, 2)
    assert find_compilation_violation(program, FINAL_MODEL) is None
    print_rows(
        "§5.1 ARMv8-compilation counter-example sizes",
        [
            "hand-found                    : 8 events, 3 byte locations",
            f"search-found (this run)       : {violation.event_count} events, "
            f"{violation.byte_location_count} byte locations",
            "corrected model               : no counter-example",
        ],
    )
