"""Fig. 1/2 — message passing through a SeqCst flag (allowed / forbidden outcomes)."""

from repro.core import FINAL_MODEL
from repro.lang import allowed_outcomes, outcome_allowed, sc_outcomes
from repro.litmus.catalogue import fig1_message_passing, fig1_relaxed_flag

from conftest import print_rows, run_once


def test_fig1_allowed_outcomes(benchmark):
    program = fig1_message_passing().program
    outcomes = run_once(benchmark, allowed_outcomes, program, FINAL_MODEL)
    keyed = {tuple(sorted(o.items())) for o in outcomes}
    assert (("1:r0", 5), ("1:r1", 3)) in keyed
    assert (("1:r0", 0),) in keyed
    assert (("1:r0", 5), ("1:r1", 0)) not in keyed
    print_rows(
        "Fig. 1: outcomes of message passing (final model)",
        [dict(o) for o in sorted(outcomes, key=lambda o: sorted(o.items()))],
    )


def test_fig1_relaxed_flag_allows_stale_read(benchmark):
    program = fig1_relaxed_flag().program
    stale = {"1:r0": 5, "1:r1": 0}
    observed = run_once(benchmark, outcome_allowed, program, stale, FINAL_MODEL)
    assert observed
    assert all(dict(o) != stale for o in sc_outcomes(program))
    print_rows(
        "Fig. 1 (non-atomic flag): the relaxed outcome appears",
        [f"{stale} allowed = {observed} (never SC)"],
    )
