"""Verdict-store backends head to head: file-per-verdict vs segment log.

ISSUE 7 adds a crash-safe segment-log backend behind the same
``VerdictCache`` API.  These benchmarks price the switch: raw put/get
microbenchmarks over a synthetic verdict population, and the pair that
the acceptance criterion reads — a warm-cache catalogue sweep on each
backend (the segment row must stay within 1.1x of the file row).  Warm
sweeps record ``cache_stats`` in ``extra_info`` so the snapshot JSON
carries the hit/miss/corrupt counters alongside the timings.
"""

import gc
import json
import shutil
import tempfile
from pathlib import Path

from repro.dispatch import MISS, SegmentVerdictCache, VerdictCache, open_cache
from repro.litmus.runner import run_catalogue

from conftest import print_rows

#: Rounds for the raw put/get arms.  These are pure-I/O microbenchmarks —
#: their single-round timings swing 2x with page-cache and journal state
#: alone — so each arm takes the min over a few rounds instead (the
#: snapshot comparison reads per-arm minima).
IO_ROUNDS = 3


def _gc_setup():
    gc.collect()


def _run_io(benchmark, function, *args, **kwargs):
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, setup=_gc_setup,
        rounds=IO_ROUNDS, iterations=1,
    )

GOLDEN_PATH = Path(__file__).parent.parent / "tests" / "data" / "catalogue_verdicts.json"

# The synthetic population: enough records to roll a handful of segments
# (and a handful of hash-prefix directories on the file backend), with
# verdict payloads shaped like the real per-expectation ones.
POPULATION = 600

_state = {}


def _verdict(i):
    return {"allowed": i % 3 == 0, "outcomes": [i, i + 1], "tag": f"synthetic-{i}"}


def _populate(cache):
    for i in range(POPULATION):
        cache.put(f"bench-key-{i:05d}", _verdict(i))


def _read_all(cache):
    for i in range(POPULATION):
        verdict = cache.get(f"bench-key-{i:05d}")
        assert verdict is not MISS and verdict["tag"] == f"synthetic-{i}"


def _bench_writes(benchmark, backend):
    root = tempfile.mkdtemp(prefix=f"repro-store-{backend}-")
    try:
        cache = open_cache(Path(root) / "w", backend=backend)
        _run_io(benchmark, _populate, cache)
        # Every round re-puts the full population (overwrites are writes).
        assert cache.writes == IO_ROUNDS * POPULATION
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _bench_reads(benchmark, backend):
    root = tempfile.mkdtemp(prefix=f"repro-store-{backend}-")
    try:
        _populate(open_cache(Path(root) / "r", backend=backend))
        cache = open_cache(Path(root) / "r", backend=backend)
        _run_io(benchmark, _read_all, cache)
        assert cache.hits == IO_ROUNDS * POPULATION and cache.misses == 0
        benchmark.extra_info["cache_stats"] = cache.stats()
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_store_writes_files(benchmark):
    _bench_writes(benchmark, "files")


def test_store_writes_segments(benchmark):
    _bench_writes(benchmark, "segments")


def test_store_reads_files(benchmark):
    _bench_reads(benchmark, "files")


def test_store_reads_segments(benchmark):
    _bench_reads(benchmark, "segments")
    print_rows(
        "verdict-store microbench",
        [
            f"{POPULATION} puts + {POPULATION} warm gets per backend "
            "(see the files/segments row pair)"
        ],
    )


def _assert_catalogue_matches_golden(report):
    with GOLDEN_PATH.open() as handle:
        golden = json.load(handle)
    for result in report.results:
        for er in result.results:
            key = "|".join(
                (
                    result.test.name,
                    er.expectation.model,
                    json.dumps(sorted(er.expectation.spec_dict.items())),
                )
            )
            assert er.observed_allowed == golden[key], key


def _bench_catalogue_warm(benchmark, backend):
    root = tempfile.mkdtemp(prefix=f"repro-catalogue-{backend}-")
    try:
        cache_dir = Path(root) / "verdicts"
        run_catalogue(cache=open_cache(cache_dir, backend=backend))
        cache = open_cache(cache_dir, backend=backend)
        report = _run_io(benchmark, run_catalogue, cache=cache)
        _assert_catalogue_matches_golden(report)
        assert cache.writes == 0, "warm run recomputed something"
        assert report.cache_stats is not None
        benchmark.extra_info["cache_stats"] = report.cache_stats
        return report
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_catalogue_warm_files(benchmark):
    """Warm catalogue sweep on the file-per-verdict backend (the baseline
    for the 1.1x acceptance bound on the segment row below)."""
    report = _bench_catalogue_warm(benchmark, "files")
    _state["warm_verdicts"] = report.verdicts()


def test_catalogue_warm_segments(benchmark):
    """Warm catalogue sweep on the segment-log backend.

    The acceptance criterion compares this row against
    ``test_catalogue_warm_files`` in the committed snapshot: within 1.1x.
    """
    report = _bench_catalogue_warm(benchmark, "segments")
    if "warm_verdicts" in _state:
        assert report.verdicts() == _state["warm_verdicts"]
    print_rows(
        "warm catalogue sweep per backend",
        [
            f"{report.cache_stats['hits']} verdicts served from the segment "
            "store, 0 recomputed, bit-identical to the file backend"
        ],
    )
