"""Round-trip overhead of the verdict service versus direct batch calls.

The service's contract (ISSUE-8) is that it adds *transport*, not
*semantics*: a catalogue request over the unix socket must return verdicts
bit-identical to the in-process batch path, and the framing/queueing/thread
hand-off it layers on top should cost a bounded, roughly constant amount per
request.  This module measures three things over one live server:

* the in-process batch baseline (``iter_test_verdicts`` over the fast
  catalogue subset),
* the same workload requested through ``ServiceClient`` over a unix
  socket with the in-process LRU tier disabled (the honest transport
  overhead: every request recomputes, so service = batch + framing),
* the same request against a server with its default LRU tier warm (the
  service's steady state for repeated queries), and
* a burst of ``health`` round-trips, which carry no model-checking work at
  all and therefore isolate the pure protocol + event-loop cost of one
  request/response cycle.

Not part of the quick gate profile: the arms need a background server
thread, and the figure they support is the PERFORMANCE.md service-overhead
table, not a regression gate.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.litmus.catalogue import by_name
from repro.litmus.runner import iter_test_verdicts
from repro.service import ServiceClient, ServiceConfig, VerdictService

from conftest import print_rows, run_once

# The same fast, representative catalogue subset the dispatch benchmarks use.
FAST_TESTS = ["sb-sc", "lb-sc", "corr-un", "mp-un-sc", "mixed-size-overlap"]

HEALTH_ROUND_TRIPS = 200


def _start_service(sock, **config_kwargs):
    svc = VerdictService(
        ServiceConfig(socket_path=str(sock), workers=1, **config_kwargs),
        cache=False,
    )
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(
            svc.run(install_signals=False, on_ready=lambda _s: ready.set())
        ),
        daemon=True,
    )
    thread.start()
    assert ready.wait(10), "service did not come up"
    return svc, thread


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """LRU tier off: every served request pays the full model-checking cost."""
    sock = tmp_path_factory.mktemp("service") / "cold.sock"
    svc, thread = _start_service(sock, lru_capacity=0)
    yield svc
    svc.stop_from_thread(grace=1.0)
    thread.join(10)


@pytest.fixture(scope="module")
def warm_service(tmp_path_factory):
    """Default LRU tier: repeated queries are served from the memo."""
    sock = tmp_path_factory.mktemp("service") / "warm.sock"
    svc, thread = _start_service(sock)
    yield svc
    svc.stop_from_thread(grace=1.0)
    thread.join(10)


def _batch_catalogue():
    # workers=1 to match the server's configuration — this pair compares
    # transports, not dispatch strategies.
    return list(
        iter_test_verdicts(
            [by_name(n) for n in FAST_TESTS], workers=1, cache=False
        )
    )


def _served_catalogue(address):
    with ServiceClient(address) as client:
        return client.request("catalogue", {"names": FAST_TESTS})


def _health_burst(address):
    with ServiceClient(address) as client:
        for _ in range(HEALTH_ROUND_TRIPS):
            client.health()


@pytest.fixture(scope="module", autouse=True)
def _warm(service, warm_service):
    # Steady state for every arm: shape tables and model memos warm once,
    # both servers' worker loops have served a request, and the warm
    # server's LRU tier holds the catalogue verdicts.
    _batch_catalogue()
    _served_catalogue(service.address)
    _served_catalogue(warm_service.address)


def test_catalogue_direct_batch(benchmark):
    results = run_once(benchmark, _batch_catalogue)
    assert len(results) == len(FAST_TESTS)


def test_catalogue_via_service(benchmark, service):
    items = run_once(benchmark, _served_catalogue, service.address)
    assert len(items) == len(FAST_TESTS)
    assert all(item["passed"] for item in items)
    # The service arm is only worth timing if it serves the same verdicts.
    direct = {test.name: verdicts for test, verdicts in _batch_catalogue()}
    for item in items:
        assert item["verdicts"] == list(direct[item["test"]])


def test_catalogue_via_service_warm_lru(benchmark, warm_service):
    items = run_once(benchmark, _served_catalogue, warm_service.address)
    assert len(items) == len(FAST_TESTS)
    assert all(item["passed"] for item in items)
    assert warm_service.stats()["cache"]["lru_hits"] > 0


def test_health_round_trip_burst(benchmark, service):
    run_once(benchmark, _health_burst, service.address)
    stats = benchmark.stats.stats
    print_rows(
        "service request overhead",
        [
            f"{HEALTH_ROUND_TRIPS} health round-trips: {stats.min * 1e3:.2f} ms total",
            f"per request: {stats.min / HEALTH_ROUND_TRIPS * 1e6:.0f} us",
        ],
    )
