"""Theorem 6.1 — model-internal SC-DRF of the revised model (bounded check)."""

from repro.core import FINAL_MODEL, ORIGINAL_MODEL, check_internal_sc_drf, exists_valid_total_order
from repro.lang import ground_executions
from repro.litmus.catalogue import (
    fig1_message_passing,
    fig8_sc_drf_violation,
    load_buffering,
    store_buffering,
    two_plus_two_w,
)

from conftest import print_rows, run_once

PROGRAMS = [
    fig1_message_passing().program,
    fig8_sc_drf_violation().program,
    store_buffering(True).program,
    load_buffering(False).program,
    two_plus_two_w(True).program,
]


def _valid_executions(model):
    for program in PROGRAMS:
        for ground in ground_executions(program):
            tot = exists_valid_total_order(ground.execution, model)
            if tot is not None:
                yield ground.execution.with_witness(tot=tot)


def test_thm61_internal_sc_drf_revised_model(benchmark):
    report = run_once(
        benchmark, check_internal_sc_drf, list(_valid_executions(FINAL_MODEL)), FINAL_MODEL
    )
    assert report.holds and report.relevant > 0
    original = check_internal_sc_drf(list(_valid_executions(ORIGINAL_MODEL)), ORIGINAL_MODEL)
    assert not original.holds
    print_rows(
        "Theorem 6.1 (internal SC-DRF), bounded over the catalogue sweep",
        [report.summary(), original.summary() + "   (the unrepaired model, as expected)"],
    )
