"""Fig. 13 / §7 — wait/notify critical-section synchronisation."""

from repro.lang import wait_notify_allowed_outcomes, wait_notify_outcome_allowed
from repro.litmus.catalogue import fig13_wait_notify

from conftest import print_rows, run_once


def test_fig13_uncorrected_admits_both_bad_executions(benchmark):
    program = fig13_wait_notify().program
    outcomes = run_once(benchmark, wait_notify_allowed_outcomes, program, False)
    stale = any(o.get("0:r0") == 0 for o in outcomes)
    stuck = any("0:r0" not in o and o.get("1:r1") == 0 for o in outcomes)
    assert stale and stuck
    print_rows(
        "Fig. 13 without critical-section synchronisation (uncorrected spec)",
        ["Fig. 13b (woken waiter reads 0): allowed", "Fig. 13c (waiter stuck after notify): allowed"],
    )


def test_fig13_corrected_forbids_both(benchmark):
    program = fig13_wait_notify().program
    outcomes = run_once(benchmark, wait_notify_allowed_outcomes, program, True)
    assert all(o.get("0:r0") == 42 for o in outcomes if "0:r0" in o)
    assert all("0:r0" in o for o in outcomes)
    assert not wait_notify_outcome_allowed(program, {"0:r0": 0}, corrected=True)
    print_rows(
        "Fig. 13 with the §7 additional-synchronizes-with edges",
        ["the waiter always terminates and reads 42 " f"(outcomes: {sorted(tuple(sorted(o.items())) for o in outcomes)})"],
    )
