"""Orbit-quotient win and overhead of the symmetry engine.

Two very different inputs, two very different questions:

* The **two-location** §5.4 hunt is where the quotient earns its keep: the
  enumeration is full of location-renamed and thread-permuted isomorphs,
  so evaluating one representative per orbit skips roughly half the
  checker calls.  ``test_sc_drf_hunt_symmetry_off``/``_on`` snapshot both
  arms for the ``BENCH_*.json`` trajectory, recording the engine's
  counters in ``extra_info["symmetry_stats"]``.
* The **one-location** hunt is orbit-trivial by construction — the shape
  generator already deduplicates sorted single-location shapes, so every
  orbit has exactly one member and the canonical-form pass is pure
  overhead.  ``test_symmetry_orbit_trivial_overhead_budget`` is the gate:
  interleaved rounds with alternating arm order (load shifts hit both arms
  equally in both directions), min-over-min ratio, 1.05x budget.

Every round of both measurements asserts the two arms produce identical
reports — the bit-identity contract, enforced where the time is measured.
"""

from __future__ import annotations

import gc
import os
import time

from repro.analyze.symmetry import SYMMETRY_ENV
from repro.core.js_model import ORIGINAL_MODEL
from repro.search import SearchBounds, search_sc_drf_violation

import pytest

from conftest import print_rows

#: Orbit-rich input: two locations make the enumeration ~50% isomorphs.
QUOTIENT_BOUNDS = SearchBounds(
    threads=2,
    max_accesses_per_thread=2,
    max_total_accesses=4,
    locations=2,
    values=(1, 2),
    allow_unordered=True,
    guarded_observer=True,
)

#: Orbit-trivial input: the paper's Fig. 8 bound.  One location leaves no
#: index renamings and the generator's sorted-shape dedup already collapses
#: thread permutations, so every canonical-form pass is wasted work — the
#: worst case the overhead gate bills.
TRIVIAL_BOUNDS = SearchBounds(
    threads=2,
    max_accesses_per_thread=2,
    max_total_accesses=4,
    locations=1,
    values=(1, 2),
    allow_unordered=True,
    guarded_observer=True,
)

OVERHEAD_BUDGET = 1.05
GATE_ROUNDS = 5
# True orbit-trivial overhead measures ~1.02-1.04x, so the noise headroom
# under the 1.05x budget is small; under full quick-profile load the gate
# may need many escalation rounds to find a quiet min-min pair.  Each
# round is ~0.5 s, so even the cap is cheap.
GATE_ROUNDS_MAX = 24


def _sweep(bounds: SearchBounds, symmetry: bool):
    previous = os.environ.get(SYMMETRY_ENV)
    os.environ[SYMMETRY_ENV] = "1" if symmetry else "off"
    try:
        return search_sc_drf_violation(bounds, model=ORIGINAL_MODEL, cache=False)
    finally:
        if previous is None:
            os.environ.pop(SYMMETRY_ENV, None)
        else:
            os.environ[SYMMETRY_ENV] = previous


def _assert_reports_match(off, on):
    assert on.found == off.found
    assert on.programs_examined == off.programs_examined
    if off.found:
        assert on.counterexample.program.name == off.counterexample.program.name
        assert on.counterexample.outcome == off.counterexample.outcome


@pytest.fixture(scope="module", autouse=True)
def _warm():
    # Steady state for both arms: shape tables, model caches and the
    # generator memos warm once, billed to neither arm.
    for bounds in (QUOTIENT_BOUNDS, TRIVIAL_BOUNDS):
        _sweep(bounds, symmetry=True)
        _sweep(bounds, symmetry=False)


def _run_hunt_arm(benchmark, symmetry: bool, title: str):
    gc.collect()
    report = benchmark.pedantic(
        lambda: _sweep(QUOTIENT_BOUNDS, symmetry=symmetry), rounds=3, iterations=1
    )
    assert report.found
    rows = [f"{report.programs_examined} programs examined, hit found"]
    if report.symmetry_stats is not None:
        benchmark.extra_info["symmetry_stats"] = report.symmetry_stats
        rows.append(
            f"orbits seen {report.symmetry_stats['orbits_seen']}, "
            f"members skipped {report.symmetry_stats['members_skipped']}"
        )
    print_rows(title, rows)


def test_sc_drf_hunt_symmetry_off(benchmark):
    _run_hunt_arm(benchmark, False, "two-location SC-DRF hunt, symmetry off")


def test_sc_drf_hunt_symmetry_on(benchmark):
    _run_hunt_arm(benchmark, True, "two-location SC-DRF hunt, symmetry on")


def test_symmetry_orbit_trivial_overhead_budget():
    """The gate: alternating-order interleaved rounds, min-over-min <= budget.

    Same escalation logic as the analyzer and resilience gates — each arm's
    minimum only ever moves toward the noise-free time — plus order
    balancing: odd rounds run on-before-off, so slow drifts on a loaded
    host cancel instead of consistently taxing the second arm.
    """
    off_times, on_times = [], []

    def one_round(on_first: bool):
        timed = {}
        order = ("on", "off") if on_first else ("off", "on")
        for key in order:
            gc.collect()
            start = time.perf_counter()
            timed[key] = _sweep(TRIVIAL_BOUNDS, symmetry=(key == "on"))
            (on_times if key == "on" else off_times).append(
                time.perf_counter() - start
            )
        # Bit-identity where the overhead is measured.
        _assert_reports_match(timed["off"], timed["on"])
        assert timed["on"].symmetry_stats is not None
        # Orbit-trivial means exactly that: the quotient never skips.
        assert timed["on"].symmetry_stats["members_skipped"] == 0

    for round_index in range(GATE_ROUNDS):
        one_round(on_first=bool(round_index % 2))
    while min(on_times) / min(off_times) > OVERHEAD_BUDGET and (
        len(off_times) < GATE_ROUNDS_MAX
    ):
        one_round(on_first=bool(len(off_times) % 2))
    ratio = min(on_times) / min(off_times)
    print_rows(
        "symmetry orbit-trivial overhead gate",
        [
            f"symmetry-off minimum: {min(off_times) * 1000:8.1f} ms",
            f"symmetry-on minimum:  {min(on_times) * 1000:8.1f} ms",
            f"ratio {ratio:.3f}x over {len(off_times)} interleaved rounds "
            f"(budget {OVERHEAD_BUDGET:.2f}x, one-location hunt)",
        ],
    )
    assert ratio <= OVERHEAD_BUDGET, (
        f"symmetry engine costs {ratio:.3f}x on orbit-trivial input "
        f"(budget {OVERHEAD_BUDGET:.2f}x): symmetry-off min "
        f"{min(off_times) * 1000:.1f} ms vs symmetry-on min "
        f"{min(on_times) * 1000:.1f} ms over {len(off_times)} interleaved rounds"
    )
