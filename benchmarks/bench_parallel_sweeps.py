"""Scale-out workloads: sharded sweeps and the persistent verdict cache.

These benchmarks capture the *trajectory* dimension ISSUE 2 adds: not how
fast one check runs, but how a bag of independent checks scales — across
``multiprocessing`` workers (``workers=4``) and across *runs* (the
content-addressed verdict cache).  Every workload asserts that the sharded
/ cached verdicts are bit-identical to the recorded golden ones, so the
speed numbers can never be bought with a wrong verdict.

Interpreting the serial-vs-sharded pair: sharding helps on multi-core
hosts; on a single-core container (like the one the committed snapshots
come from) ``workers=4`` measures pure dispatch overhead.  The warm-cache
numbers are host-independent.
"""

import json
import shutil
import tempfile
from pathlib import Path

from repro.core import FINAL_MODEL, ORIGINAL_MODEL
from repro.dispatch import VerdictCache
from repro.litmus.runner import run_catalogue
from repro.search import (
    SearchBounds,
    search_compilation_violation,
    search_sc_drf_violation,
)

from conftest import print_rows, run_once

WORKERS = 4

# An empty (no-hit) bounded-correctness sweep over 320 programs under the
# corrected model: every program is checked, per-program costs are roughly
# uniform (good sharding granularity), and the whole sweep is a few seconds
# serial.  The cap cuts the enumeration inside the 4-access size class.
COMPILE_SWEEP_BOUNDS = SearchBounds(
    threads=2,
    max_accesses_per_thread=2,
    max_total_accesses=4,
    locations=1,
    values=(1, 2),
    guarded_observer=False,
    max_programs=320,
)

# The §5.4 bound containing the Fig. 8 counter-example (original model):
# exercises the order-preserving early exit of a sharded hunt.
SC_DRF_BOUNDS = SearchBounds(
    threads=2,
    max_accesses_per_thread=2,
    max_total_accesses=4,
    locations=1,
    values=(1, 2),
    guarded_observer=True,
)

# A tail-heavy slice of the §5.4 guarded bound under the *corrected* model:
# no counter-example exists, so the whole slice is swept, and the per-program
# cost climbs steeply with the access count — the scenario the cost-tapered
# (work-stealing) chunker exists for.  The static/sized sharded pair below
# measures the difference; on a single-core host both measure dispatch
# overhead only (chunk layout cannot change one core's wall-clock).
TAIL_BOUNDS = SearchBounds(
    threads=2,
    max_accesses_per_thread=2,
    max_total_accesses=4,
    locations=1,
    values=(1, 2),
    guarded_observer=True,
    max_programs=500,
)

GOLDEN_PATH = Path(__file__).parent.parent / "tests" / "data" / "catalogue_verdicts.json"

# Cross-benchmark state (serial reference verdicts, the shared cache dir).
# Each benchmark also works standalone under --filter: every assertion
# against state another benchmark produces is guarded.
_state = {}


def _assert_catalogue_matches_golden(report):
    with GOLDEN_PATH.open() as handle:
        golden = json.load(handle)
    for result in report.results:
        for er in result.results:
            key = "|".join(
                (
                    result.test.name,
                    er.expectation.model,
                    json.dumps(sorted(er.expectation.spec_dict.items())),
                )
            )
            assert er.observed_allowed == golden[key], key


def test_catalogue_sweep_serial(benchmark):
    report = run_once(benchmark, run_catalogue, workers=1, cache=False)
    _assert_catalogue_matches_golden(report)
    _state["catalogue_serial"] = report.verdicts()
    print_rows(
        "catalogue sweep (serial)",
        [f"{len(report.results)} tests, all verdicts == golden"],
    )


def test_catalogue_sweep_sharded(benchmark):
    report = run_once(benchmark, run_catalogue, workers=WORKERS, cache=False)
    _assert_catalogue_matches_golden(report)
    if "catalogue_serial" in _state:
        assert report.verdicts() == _state["catalogue_serial"]
    print_rows(
        f"catalogue sweep (workers={WORKERS})",
        [f"{len(report.results)} tests, bit-identical to serial"],
    )


def test_catalogue_cache_cold(benchmark):
    cache_dir = tempfile.mkdtemp(prefix="repro-verdicts-")
    _state["cache_dir"] = cache_dir
    report = run_once(benchmark, run_catalogue, cache=VerdictCache(cache_dir))
    _assert_catalogue_matches_golden(report)


def test_catalogue_cache_warm(benchmark):
    cache_dir = _state.get("cache_dir")
    if cache_dir is None:  # standalone run: populate a cache un-benchmarked
        cache_dir = tempfile.mkdtemp(prefix="repro-verdicts-")
        run_catalogue(cache=VerdictCache(cache_dir))
    cache = VerdictCache(cache_dir)
    report = run_once(benchmark, run_catalogue, cache=cache)
    _assert_catalogue_matches_golden(report)
    assert cache.writes == 0, "warm run recomputed something"
    benchmark.extra_info["cache_stats"] = report.cache_stats
    print_rows(
        "catalogue sweep (warm verdict cache)",
        [f"{cache.hits} verdicts served from cache, 0 recomputed"],
    )
    shutil.rmtree(cache_dir, ignore_errors=True)
    _state.pop("cache_dir", None)


def test_compilation_sweep_serial(benchmark):
    report = run_once(
        benchmark,
        search_compilation_violation,
        COMPILE_SWEEP_BOUNDS,
        FINAL_MODEL,
        workers=1,
    )
    assert not report.found
    _state["sweep_examined"] = report.programs_examined
    print_rows(
        "bounded-correctness sweep, corrected model (serial)",
        [f"{report.programs_examined} programs, no counter-example (§5.3)"],
    )


def test_compilation_sweep_sharded(benchmark):
    report = run_once(
        benchmark,
        search_compilation_violation,
        COMPILE_SWEEP_BOUNDS,
        FINAL_MODEL,
        workers=WORKERS,
    )
    assert not report.found
    if "sweep_examined" in _state:
        assert report.programs_examined == _state["sweep_examined"]
    print_rows(
        f"bounded-correctness sweep, corrected model (workers={WORKERS})",
        [f"{report.programs_examined} programs, report identical to serial"],
    )


def test_compilation_sweep_warm_cache(benchmark):
    cache_dir = tempfile.mkdtemp(prefix="repro-verdicts-")
    try:
        search_compilation_violation(
            COMPILE_SWEEP_BOUNDS, FINAL_MODEL, cache=VerdictCache(cache_dir)
        )
        cache = VerdictCache(cache_dir)
        report = run_once(
            benchmark,
            search_compilation_violation,
            COMPILE_SWEEP_BOUNDS,
            FINAL_MODEL,
            cache=cache,
        )
        assert not report.found
        if "sweep_examined" in _state:
            assert report.programs_examined == _state["sweep_examined"]
        assert cache.hits == report.programs_examined
        benchmark.extra_info["cache_stats"] = report.cache_stats
        print_rows(
            "bounded-correctness sweep, corrected model (warm verdict cache)",
            [f"{cache.hits} per-program verdicts served from cache"],
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def test_scdrf_hunt_serial(benchmark):
    """The original-model hunt that rediscovers Fig. 8 (early exit)."""
    report = run_once(
        benchmark, search_sc_drf_violation, SC_DRF_BOUNDS, ORIGINAL_MODEL, workers=1
    )
    assert report.found
    assert (
        report.counterexample.event_count,
        report.counterexample.location_count,
    ) == (4, 1)
    _state["hunt_examined"] = report.programs_examined


def test_scdrf_hunt_sharded(benchmark):
    """The sharded hunt early-exits at the same program with the same count."""
    report = run_once(
        benchmark,
        search_sc_drf_violation,
        SC_DRF_BOUNDS,
        ORIGINAL_MODEL,
        workers=WORKERS,
    )
    assert report.found
    assert (
        report.counterexample.event_count,
        report.counterexample.location_count,
    ) == (4, 1)
    if "hunt_examined" in _state:
        assert report.programs_examined == _state["hunt_examined"]
    print_rows(
        f"SC-DRF hunt, original model (workers={WORKERS})",
        [
            f"Fig. 8 rediscovered after {report.programs_examined} programs, "
            "identical to serial"
        ],
    )


def test_tail_sweep_serial(benchmark):
    """The tail-heavy §5.4 slice, swept end to end (corrected model)."""
    report = run_once(
        benchmark, search_sc_drf_violation, TAIL_BOUNDS, FINAL_MODEL, workers=1
    )
    assert not report.found
    _state["tail_examined"] = report.programs_examined


def test_tail_sweep_sharded_static(benchmark):
    """The same sweep, sharded with equal-count (static) chunks."""
    report = run_once(
        benchmark,
        search_sc_drf_violation,
        TAIL_BOUNDS,
        FINAL_MODEL,
        workers=WORKERS,
        chunking="static",
    )
    assert not report.found
    if "tail_examined" in _state:
        assert report.programs_examined == _state["tail_examined"]


def test_tail_sweep_sharded_sized(benchmark):
    """The same sweep, sharded with cost-tapered (work-stealing) chunks."""
    report = run_once(
        benchmark,
        search_sc_drf_violation,
        TAIL_BOUNDS,
        FINAL_MODEL,
        workers=WORKERS,
        chunking="sized",
    )
    assert not report.found
    if "tail_examined" in _state:
        assert report.programs_examined == _state["tail_examined"]
    print_rows(
        f"tail-heavy §5.4 sweep (workers={WORKERS}, cost-tapered chunks)",
        [f"{report.programs_examined} programs, report identical to serial"],
    )
