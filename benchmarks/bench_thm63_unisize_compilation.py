"""Theorem 6.3 / Fig. 12 — uni-size compilation to x86-TSO, POWER, RISC-V, ARMv7, ARMv8."""

from repro.core import FINAL_MODEL, check_unisize_reduction, exists_valid_total_order
from repro.imm import check_unisize_compilation
from repro.lang import ground_executions
from repro.litmus.catalogue import (
    fig1_message_passing,
    load_buffering,
    message_passing,
    store_buffering,
    two_plus_two_w,
)

from conftest import print_rows, run_once

PROGRAMS = [
    fig1_message_passing().program,
    store_buffering(True).program,
    store_buffering(False).program,
    load_buffering(True).program,
    message_passing(True, False).program,
    two_plus_two_w(True).program,
]


def test_thm63_unisize_compilation_all_targets(benchmark):
    report = run_once(benchmark, check_unisize_compilation, PROGRAMS, FINAL_MODEL)
    assert report.correct
    assert set(report.per_architecture) == {"x86-tso", "power", "riscv", "armv7", "armv8"}
    print_rows("Theorem 6.3: uni-size compilation (bounded)", report.summary_lines())


def test_fig12_reduction_theorem(benchmark):
    def gather():
        executions = []
        for program in PROGRAMS[:3]:
            for ground in ground_executions(program):
                tot = exists_valid_total_order(ground.execution, FINAL_MODEL)
                witness = tot if tot is not None else tuple(sorted(ground.execution.eids))
                executions.append(ground.execution.with_witness(tot=witness))
        return check_unisize_reduction(executions, FINAL_MODEL)

    report = run_once(benchmark, gather)
    assert report.holds
    print_rows("Fig. 12: mixed-size / uni-size reduction (bounded)", [report.summary()])
