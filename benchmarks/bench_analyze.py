"""Overhead of the static analyzer on fast-path *misses*.

The static analyzer (``repro.analyze``) earns its keep on statically
race-free programs, where the SC fast path skips enumeration entirely.  Its
contract on every other program — the fast-path *misses*, where the full
enumerative pipeline still runs — is that the analysis, the per-read
rf-pruning probe and the dead-outcome check cost (almost) nothing on top.
This module times a sweep of exactly those catalogue tests whose programs
are *not* statically race-free, analyzer off vs on, and enforces a 1.05x
budget.

Same two measurement styles as ``bench_resilience_overhead.py``:

* ``test_catalogue_analyze_off``/``_on`` are pytest-benchmark arms for the
  ``BENCH_*.json`` snapshot trajectory; they are not the gate.
* ``test_analyzer_miss_overhead_budget`` is the gate: interleaved
  round-by-round so load shifts hit both arms equally, min-over-min ratio,
  escalating rounds while over budget.

Beyond the budget, every round asserts the two arms produce identical
verdicts — the bit-identity contract, enforced where the overhead is
measured.
"""

from __future__ import annotations

import gc
import os
import time

from repro.analyze import ANALYZE_ENV, analyze_program
from repro.litmus.catalogue import all_tests
from repro.litmus.runner import run_test

import pytest

from conftest import print_rows

#: Only the fast-path misses: programs with at least one may-race pair, so
#: the analyzer runs (and is then ignored by the SC fast path) while the
#: enumerative pipeline does all the real work.  Statically race-free tests
#: would make the "on" arm *faster* and mask the overhead this gate is for.
MISS_TESTS = [
    test for test in all_tests() if not analyze_program(test.program).definitely_race_free
]

OVERHEAD_BUDGET = 1.05
GATE_ROUNDS = 5
# Escalation cap raised from 12: on a loaded host the min-min pair
# needs more rounds to expose both arms' quiet floors; extra rounds
# only ever move the ratio toward the true overhead.
GATE_ROUNDS_MAX = 24


def _sweep(analyze: bool):
    previous = os.environ.get(ANALYZE_ENV)
    os.environ[ANALYZE_ENV] = "1" if analyze else "off"
    try:
        return [run_test(test, cache=False) for test in MISS_TESTS]
    finally:
        if previous is None:
            os.environ.pop(ANALYZE_ENV, None)
        else:
            os.environ[ANALYZE_ENV] = previous


def _sweep_analyze_off():
    return _sweep(analyze=False)


def _sweep_analyze_on():
    return _sweep(analyze=True)


@pytest.fixture(scope="module", autouse=True)
def _warm():
    # Steady state for both arms: one-time memo warming (shape tables,
    # model caches, and the analyzer's per-program memo on the shared
    # MISS_TESTS programs) must not be billed to whichever arm runs first.
    _sweep_analyze_on()
    _sweep_analyze_off()


def _run_pair_arm(benchmark, sweep, title):
    gc.collect()
    results = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert all(result.passed for result in results)
    print_rows(title, [f"{len(results)} tests, all expectations match"])


def test_catalogue_analyze_off(benchmark):
    _run_pair_arm(
        benchmark, _sweep_analyze_off, "fast-path-miss sweep, analyzer off"
    )


def test_catalogue_analyze_on(benchmark):
    _run_pair_arm(
        benchmark, _sweep_analyze_on, "fast-path-miss sweep, analyzer on"
    )


def test_analyzer_miss_overhead_budget():
    """The gate: interleaved on/off rounds, min-over-min ratio <= budget.

    Identical escalation logic to the resilience gate: each arm's minimum
    only ever moves toward the noise-free time, so extra rounds give a
    noisy host more chances to expose the quiet floor without letting a
    genuinely over-budget analyzer slip through.
    """
    off_times, on_times = [], []

    def one_round():
        round_results = {}
        for key, times, sweep in (
            ("off", off_times, _sweep_analyze_off),
            ("on", on_times, _sweep_analyze_on),
        ):
            gc.collect()
            start = time.perf_counter()
            results = sweep()
            times.append(time.perf_counter() - start)
            assert all(result.passed for result in results)
            round_results[key] = results
        # Bit-identity where the overhead is measured: every expectation
        # verdict must match between the two arms.
        for off_result, on_result in zip(round_results["off"], round_results["on"]):
            assert [r.observed_allowed for r in off_result.results] == [
                r.observed_allowed for r in on_result.results
            ]

    for _round in range(GATE_ROUNDS):
        one_round()
    while min(on_times) / min(off_times) > OVERHEAD_BUDGET and (
        len(off_times) < GATE_ROUNDS_MAX
    ):
        one_round()
    ratio = min(on_times) / min(off_times)
    print_rows(
        "analyzer fast-path-miss overhead gate",
        [
            f"analyzer-off minimum: {min(off_times) * 1000:8.1f} ms",
            f"analyzer-on minimum:  {min(on_times) * 1000:8.1f} ms",
            f"ratio {ratio:.3f}x over {len(off_times)} interleaved rounds "
            f"(budget {OVERHEAD_BUDGET:.2f}x, {len(MISS_TESTS)} miss tests)",
        ],
    )
    assert ratio <= OVERHEAD_BUDGET, (
        f"static analyzer costs {ratio:.3f}x on fast-path misses "
        f"(budget {OVERHEAD_BUDGET:.2f}x): analyzer-off min "
        f"{min(off_times) * 1000:.1f} ms vs analyzer-on min "
        f"{min(on_times) * 1000:.1f} ms over {len(off_times)} interleaved rounds"
    )
