"""Fig. 10 (final rule), Fig. 11 (deadness) and Fig. 14 (Init tearing, §6.4)."""

from repro.core import FINAL_MODEL, FINAL_MODEL_STRONG_TEAR, ORIGINAL_MODEL
from repro.core.events import Event, SEQCST, UNORDERED, make_init_event
from repro.core.execution import CandidateExecution
from repro.core.js_model import is_valid
from repro.lang import outcome_allowed
from repro.litmus.catalogue import fig14_init_tearing, fig8_sc_drf_violation
from repro.search import semantically_dead, syntactically_dead

from conftest import print_rows, run_once


def _fig5_shape():
    """WSC — WUn — RSC (Fig. 5): the shape the original rule wrongly forbids."""
    init = make_init_event("b", 4)
    w_sc = Event(eid=1, tid=0, ord=SEQCST, block="b", index=0, writes=(1, 0, 0, 0))
    w_un = Event(eid=2, tid=1, ord=UNORDERED, block="b", index=0, writes=(2, 0, 0, 0))
    r_sc = Event(eid=3, tid=2, ord=SEQCST, block="b", index=0, reads=(1, 0, 0, 0))
    return CandidateExecution.build(
        events=[init, w_sc, w_un, r_sc],
        rbf={(k, 1, 3) for k in range(4)},
        tot=[0, 1, 2, 3],
    )


def _fig8_execution():
    """The Fig. 8 execution: allowed by the original rule, dead under Fig. 10."""
    init = make_init_event("b", 4)
    a = Event(eid=1, tid=0, ord=SEQCST, block="b", index=0, writes=(1, 0, 0, 0))
    b = Event(eid=2, tid=1, ord=SEQCST, block="b", index=0, writes=(2, 0, 0, 0))
    c = Event(eid=3, tid=1, ord=SEQCST, block="b", index=0, reads=(1, 0, 0, 0))
    d = Event(eid=4, tid=1, ord=UNORDERED, block="b", index=0, reads=(2, 0, 0, 0))
    return CandidateExecution.build(
        events=[init, a, b, c, d],
        sb=[(2, 3), (2, 4), (3, 4)],
        rbf={(k, 1, 3) for k in range(4)} | {(k, 2, 4) for k in range(4)},
        tot=[0, 2, 1, 3, 4],
    )


def test_fig10_weakens_and_strengthens_the_original_rule(benchmark):
    """The final rule allows the Fig. 5 shape (ARMv8 fix) and kills Fig. 8 (SC-DRF fix)."""
    fig5 = _fig5_shape()
    fig8 = _fig8_execution()
    final_allows_fig5 = run_once(benchmark, is_valid, fig5, FINAL_MODEL)
    assert final_allows_fig5 and not is_valid(fig5, ORIGINAL_MODEL)
    assert is_valid(fig8, ORIGINAL_MODEL) and semantically_dead(fig8, FINAL_MODEL)
    print_rows(
        "Fig. 10 vs the original rule",
        [
            "Fig. 5 shape: original forbids, final allows (weakening — ARMv8 fix)",
            "Fig. 8 execution: original allows, final forbids for every tot (strengthening — SC-DRF fix)",
        ],
    )


def _fig11_execution():
    init = make_init_event("b", 4)
    a = Event(eid=1, tid=0, ord=SEQCST, block="b", index=0, writes=(1, 0, 0, 0))
    b = Event(eid=2, tid=1, ord=UNORDERED, block="b", index=0, writes=(2, 0, 0, 0))
    c = Event(eid=3, tid=1, ord=SEQCST, block="b", index=0, reads=(1, 0, 0, 0))
    return CandidateExecution.build(
        events=[init, a, b, c], sb=[(2, 3)], rbf={(k, 1, 3) for k in range(4)}, tot=[0, 1, 2, 3]
    )


def test_fig11_spurious_counterexample_filtered_by_deadness(benchmark):
    execution = _fig11_execution()
    dead = run_once(benchmark, semantically_dead, execution, ORIGINAL_MODEL)
    assert not is_valid(execution, ORIGINAL_MODEL)   # the naive search would report it
    assert not dead                                   # …but it is not a real counter-example
    assert not syntactically_dead(execution, ORIGINAL_MODEL)
    print_rows(
        "Fig. 11: naive-search counter-example",
        ["invalid under the picked tot", "not dead: filtered out by the §5.2 criterion"],
    )


def test_fig14_init_tearing_and_strong_rule(benchmark):
    program = fig14_init_tearing().program
    torn = {"0:r": 0x0001}
    allowed_weak = run_once(benchmark, outcome_allowed, program, torn, FINAL_MODEL)
    assert allowed_weak
    assert not outcome_allowed(program, torn, FINAL_MODEL_STRONG_TEAR)
    print_rows(
        "Fig. 14: torn read mixing Init and a 16-bit store",
        ["current Tear-Free Reads: allowed", "strong Tear-Free Reads (§6.4): forbidden"],
    )
