"""Fault-free overhead of the resilience layer (supervision + journaling).

The supervised dispatch engine, the checkpoint journal and the hardened
verdict cache all sit on the hot path of every sweep; their contract is that
a healthy run pays (almost) nothing for them.  This module times the same
catalogue sweep twice — once with every resilience feature off, once with
supervision *and* checkpoint journaling on — and enforces a 1.05x on/off
budget.

Two measurement styles, deliberately:

* ``test_catalogue_resilience_off``/``_on`` are ordinary pytest-benchmark
  arms: they land the pair in the ``BENCH_*.json`` snapshot for the
  performance trajectory.  They are *not* the gate — the two arms run
  minutes apart inside the quick profile, and on a busy 1-core host the
  load can shift by far more than 5% between their windows.
* ``test_fault_free_overhead_budget`` is the gate: it *interleaves* the
  two arms round-by-round so any load shift hits both equally, compares
  the per-arm minimum (noise only ever adds time), and fails the run past
  the budget.  ``run_benchmarks.py --quick`` inherits the failure through
  pytest's exit code.

Both arms run serially (``workers=1``): on the 1-core benchmark host the
multi-process fan-out's cost is dominated by fork/IPC, which would swamp
the supervision bookkeeping this gate is about.  The serial supervised path
exercises the same retry/journal plumbing without the pool noise.
"""

from __future__ import annotations

import gc
import shutil
import tempfile
import time

from repro.litmus.catalogue import all_tests
from repro.litmus.runner import run_test, run_tests

import pytest

from conftest import print_rows

TESTS = all_tests()

OVERHEAD_BUDGET = 1.05
GATE_ROUNDS = 5
# Escalation cap raised from 12: on a loaded host the min-min pair
# needs more rounds to expose both arms' quiet floors; extra rounds
# only ever move the ratio toward the true overhead.
GATE_ROUNDS_MAX = 24


def _sweep_resilience_off():
    # The bare pre-resilience sweep: a plain serial loop, no supervision
    # bookkeeping, no journal, no cache.
    return [run_test(test, cache=False) for test in TESTS]


def _sweep_resilience_on():
    scratch = tempfile.mkdtemp(prefix="repro-journal-")
    try:
        return run_tests(TESTS, workers=1, cache=False, checkpoint=scratch)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


@pytest.fixture(scope="module", autouse=True)
def _warm():
    # Both arms measure steady state: the first catalogue sweep of a
    # process pays one-time memo warming (shape tables, model caches) that
    # would otherwise be billed to whichever arm happens to run first and
    # swamp the few-percent overhead this pair exists to gate.
    _sweep_resilience_off()


def _run_pair_arm(benchmark, sweep, title):
    # Same GC hygiene as conftest.run_once; a handful of rounds so the
    # snapshot records a usable minimum without doubling the quick profile.
    gc.collect()
    results = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert all(result.passed for result in results)
    print_rows(title, [f"{len(results)} tests, all expectations match"])


def test_catalogue_resilience_off(benchmark):
    _run_pair_arm(benchmark, _sweep_resilience_off, "catalogue sweep, resilience off")


def test_catalogue_resilience_on(benchmark):
    _run_pair_arm(
        benchmark,
        _sweep_resilience_on,
        "catalogue sweep, resilience on (supervised + journaled)",
    )


def test_fault_free_overhead_budget():
    """The gate: interleaved on/off rounds, min-over-min ratio <= budget.

    Starts at ``GATE_ROUNDS`` rounds and, while over budget, keeps adding
    rounds up to ``GATE_ROUNDS_MAX``: each arm's minimum is a consistent
    estimator of its noise-free time (scheduler noise only ever adds), so
    extra rounds can only move the ratio *toward* the true overhead — a
    genuinely over-budget resilience layer still fails, while a noisy host
    gets more chances to expose the quiet floor of both arms.
    """
    off_times, on_times = [], []

    def one_round():
        for times, sweep in (
            (off_times, _sweep_resilience_off),
            (on_times, _sweep_resilience_on),
        ):
            gc.collect()
            start = time.perf_counter()
            results = sweep()
            times.append(time.perf_counter() - start)
            assert all(result.passed for result in results)

    for _round in range(GATE_ROUNDS):
        one_round()
    while min(on_times) / min(off_times) > OVERHEAD_BUDGET and (
        len(off_times) < GATE_ROUNDS_MAX
    ):
        one_round()
    ratio = min(on_times) / min(off_times)
    print_rows(
        "resilience fault-free overhead gate",
        [
            f"bare minimum:       {min(off_times) * 1000:8.1f} ms",
            f"supervised minimum: {min(on_times) * 1000:8.1f} ms",
            f"ratio {ratio:.3f}x over {len(off_times)} interleaved rounds "
            f"(budget {OVERHEAD_BUDGET:.2f}x)",
        ],
    )
    assert ratio <= OVERHEAD_BUDGET, (
        f"resilience layer costs {ratio:.3f}x on a fault-free sweep "
        f"(budget {OVERHEAD_BUDGET:.2f}x): "
        f"bare min {min(off_times) * 1000:.1f} ms vs supervised+journaled "
        f"min {min(on_times) * 1000:.1f} ms over {len(off_times)} "
        "interleaved rounds"
    )
