"""The long-running verdict service: a resilient front-end over dispatch.

``repro-serve`` (or ``python -m repro.service``) runs the asyncio server
(:mod:`repro.service.server`); ``repro-query`` and
:class:`~repro.service.client.ServiceClient`
(:mod:`repro.service.client`) talk to it over the length-prefixed,
checksummed frame protocol of :mod:`repro.service.protocol`.  Everything
the service serves is bit-identical to the batch CLI paths — same worker
functions, same cache keys, same supervision semantics.
"""

from .protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
    read_frame,
    read_frame_blocking,
    write_frame_blocking,
)
from .server import (
    SERVICE_OPS,
    CircuitBreaker,
    RequestError,
    ServiceConfig,
    VerdictService,
)
from .client import (
    RemoteRequestError,
    ResponseStream,
    ServiceClient,
    ServiceError,
    ServiceRejected,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_frame",
    "read_frame",
    "read_frame_blocking",
    "write_frame_blocking",
    "SERVICE_OPS",
    "CircuitBreaker",
    "RequestError",
    "ServiceConfig",
    "VerdictService",
    "RemoteRequestError",
    "ResponseStream",
    "ServiceClient",
    "ServiceError",
    "ServiceRejected",
]
