"""The long-running verdict service: an asyncio front-end over dispatch.

One process serves many clients over a Unix socket or TCP, speaking the
checksummed frame protocol of :mod:`repro.service.protocol`.  Requests —
catalogue verdicts, single ``outcome_allowed`` queries, §5 sweep slices,
corpus compilation checks — are validated, admitted through a *bounded*
queue (a full queue rejects with ``retry_after``; nothing ever buffers
unboundedly), executed through the supervised dispatch engine, and streamed
back incrementally so an early-exit or cancelled query abandons its
remaining work.

Robustness model:

* **Backpressure** — ``queue_depth`` bounds admitted-but-unstarted work and
  ``concurrency`` bounds requests executing at once; past that, clients get
  an explicit ``rejected`` frame carrying ``retry_after``.
* **Deadlines** — a per-request deadline (client-supplied or the
  configured default) cancels the request's work, which the streaming ops
  observe between items; the spawned dispatch workers are reaped when the
  op's supervised stream closes.
* **Tiered cache** — verdicts are served from an in-process LRU
  (:class:`~repro.dispatch.cache.TieredVerdictCache`) above the persistent
  store; ``stats`` exposes the merged hit/miss/eviction counters.
* **Circuit breaker** — a request whose worker pool dies outright is
  served anyway (the supervised engine degrades to serial); after
  ``breaker_threshold`` consecutive pool deaths the breaker opens and
  requests run serially for ``breaker_cooldown`` seconds before the pool
  is retried, so a host that cannot fork does not pay a pool spawn-and-die
  per request.
* **Graceful drain** — SIGTERM/SIGINT stop admission (``rejected`` with
  reason ``draining``), give in-flight requests ``drain_grace`` seconds to
  finish, then ask the supervised engines to checkpoint: completed chunks
  are journaled, sweep journals are flushed and kept, and the process
  exits 0.

Every verdict served is bit-identical to the batch CLI path: the ops call
the same worker functions with the same cache keys
(:data:`~repro.dispatch.cache.SEMANTICS_REVISION` included) as
``run_catalogue`` / ``search_*`` / ``check_corpus_compilation``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Set

from .. import analyze
from ..dispatch import (
    SEMANTICS_REVISION,
    ShutdownRequested,
    SupervisionReport,
    SweepJournal,
    TieredVerdictCache,
    chain_initializers,
    clear_shutdown,
    fingerprint,
    program_fingerprint,
    request_shutdown,
    resolve_cache,
    resolve_checkpoint,
    resolve_lru_capacity,
    resolve_workers,
    shard_ranges,
    supervised_imap,
    warm_spec,
)
from ..dispatch.supervise import _env_number
from .protocol import ProtocolError, encode_frame, read_frame

SERVICE_SOCKET_ENV = "REPRO_SERVICE_SOCKET"
SERVICE_HOST_ENV = "REPRO_SERVICE_HOST"
SERVICE_PORT_ENV = "REPRO_SERVICE_PORT"
SERVICE_QUEUE_ENV = "REPRO_SERVICE_QUEUE"
SERVICE_CONCURRENCY_ENV = "REPRO_SERVICE_CONCURRENCY"
SERVICE_DEADLINE_ENV = "REPRO_SERVICE_DEADLINE"
SERVICE_DRAIN_ENV = "REPRO_SERVICE_DRAIN"
SERVICE_RETRY_AFTER_ENV = "REPRO_SERVICE_RETRY_AFTER"
SERVICE_BREAKER_ENV = "REPRO_SERVICE_BREAKER"
SERVICE_COOLDOWN_ENV = "REPRO_SERVICE_COOLDOWN"

DEFAULT_QUEUE_DEPTH = 16
DEFAULT_CONCURRENCY = 2
DEFAULT_DRAIN_GRACE = 10.0
DEFAULT_RETRY_AFTER = 1.0
DEFAULT_BREAKER_THRESHOLD = 3
DEFAULT_BREAKER_COOLDOWN = 60.0

SERVICE_OPS = ("catalogue", "outcome", "sweep", "corpus")


class RequestError(Exception):
    """A request failed validation; becomes an ``error`` frame, never a crash."""


@dataclass
class ServiceConfig:
    """Everything the server binds, bounds and times out with."""

    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    concurrency: int = DEFAULT_CONCURRENCY
    workers: Optional[int] = None
    default_deadline: Optional[float] = None
    drain_grace: float = DEFAULT_DRAIN_GRACE
    retry_after: float = DEFAULT_RETRY_AFTER
    lru_capacity: Optional[int] = None
    breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD
    breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN

    @classmethod
    def from_env(cls) -> "ServiceConfig":
        """A config seeded from the ``REPRO_SERVICE_*`` environment knobs."""
        workers_raw = os.environ.get("REPRO_SERVICE_WORKERS", "").strip()
        return cls(
            socket_path=os.environ.get(SERVICE_SOCKET_ENV, "").strip() or None,
            host=os.environ.get(SERVICE_HOST_ENV, "").strip() or "127.0.0.1",
            port=_env_number(SERVICE_PORT_ENV, 0, int),
            queue_depth=max(
                1, _env_number(SERVICE_QUEUE_ENV, DEFAULT_QUEUE_DEPTH, int)
            ),
            concurrency=max(
                1,
                _env_number(
                    SERVICE_CONCURRENCY_ENV, DEFAULT_CONCURRENCY, int
                ),
            ),
            workers=int(workers_raw) if workers_raw.isdigit() else None,
            default_deadline=_env_number(SERVICE_DEADLINE_ENV, None, float),
            drain_grace=max(
                0.0, _env_number(SERVICE_DRAIN_ENV, DEFAULT_DRAIN_GRACE, float)
            ),
            retry_after=max(
                0.0,
                _env_number(
                    SERVICE_RETRY_AFTER_ENV, DEFAULT_RETRY_AFTER, float
                ),
            ),
            breaker_threshold=max(
                1,
                _env_number(
                    SERVICE_BREAKER_ENV, DEFAULT_BREAKER_THRESHOLD, int
                ),
            ),
            breaker_cooldown=max(
                0.0,
                _env_number(
                    SERVICE_COOLDOWN_ENV, DEFAULT_BREAKER_COOLDOWN, float
                ),
            ),
        )


class CircuitBreaker:
    """Stop re-spawning a worker pool that keeps dying; retry after cooldown.

    The supervised engine already survives a dead pool by degrading the
    *one* affected request to a serial loop.  A long-running server must
    not pay that spawn-and-die cycle on every request, so consecutive
    pool deaths past ``threshold`` open the breaker: requests run serially
    (``workers=1``) for ``cooldown`` seconds, then one request half-opens
    the breaker by trying the pool again — success closes it, another
    death reopens it immediately.
    """

    def __init__(self, threshold: int, cooldown: float):
        self.threshold = max(1, threshold)
        self.cooldown = max(0.0, cooldown)
        self._lock = threading.Lock()
        self.consecutive_pool_failures = 0
        self.times_opened = 0
        self._open_until: Optional[float] = None

    def effective_workers(self, workers: int) -> int:
        if workers <= 1:
            return workers
        with self._lock:
            if self._open_until is not None:
                if time.monotonic() < self._open_until:
                    return 1
                # Half-open: let this request probe the pool; one more
                # failure trips the threshold again immediately.
                self._open_until = None
                self.consecutive_pool_failures = self.threshold - 1
            return workers

    def record(self, report: SupervisionReport, workers_used: int) -> None:
        if workers_used <= 1:
            return  # a serial run says nothing about pool health
        with self._lock:
            if report.degraded_serial:
                self.consecutive_pool_failures += 1
                if (
                    self.consecutive_pool_failures >= self.threshold
                    and self._open_until is None
                ):
                    self._open_until = time.monotonic() + self.cooldown
                    self.times_opened += 1
            else:
                self.consecutive_pool_failures = 0

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            now = time.monotonic()
            is_open = self._open_until is not None and now < self._open_until
            return {
                "state": "open" if is_open else "closed",
                "consecutive_pool_failures": self.consecutive_pool_failures,
                "times_opened": self.times_opened,
                "cooldown_remaining": (
                    round(self._open_until - now, 3) if is_open else 0.0
                ),
            }


class _Connection:
    __slots__ = ("writer", "write_lock", "requests", "alive")

    def __init__(self, writer):
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.requests: Dict[int, threading.Event] = {}
        self.alive = True


@dataclass
class _Request:
    id: int
    op: str
    args: Dict[str, Any]
    deadline: Optional[float]
    conn: _Connection
    cancel: threading.Event


class VerdictService:
    """The server object; see the module docstring for the robustness model.

    ``cache`` follows the consumer convention — ``None`` defers to
    ``$REPRO_VERDICT_CACHE``, ``False`` disables persistence, a live cache
    passes through — and the resolved backing store is wrapped in the
    in-process LRU tier (``config.lru_capacity`` / ``$REPRO_LRU_TIER``;
    capacity 0 disables the tier).
    """

    def __init__(self, config: Optional[ServiceConfig] = None, cache: Any = None):
        self.config = config if config is not None else ServiceConfig.from_env()
        backing = resolve_cache(cache)
        capacity = resolve_lru_capacity(self.config.lru_capacity)
        if capacity > 0:
            self.cache: Any = TieredVerdictCache(backing, capacity)
        else:
            self.cache = backing
        self.resolved_workers = resolve_workers(self.config.workers)
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold, self.config.breaker_cooldown
        )
        self._counters: Dict[str, int] = {
            "admitted": 0,
            "served": 0,
            "errors": 0,
            "cancelled": 0,
            "deadline_expired": 0,
            "rejected_full": 0,
            "rejected_draining": 0,
            "protocol_errors": 0,
        }
        self._supervision_totals: Dict[str, int] = {
            "retried": 0,
            "respawns": 0,
            "timeouts": 0,
            "crashes": 0,
            "corrupt_payloads": 0,
            "degraded_serial_runs": 0,
            "quarantined": 0,
        }
        self._in_flight = 0
        self._draining = False
        self._threads: Set[threading.Thread] = set()
        self._connections: Set[_Connection] = set()
        self._worker_tasks: list = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None
        self._server = None
        self._stopped: Optional[asyncio.Event] = None
        self._drain_task = None
        self._started_at: Optional[float] = None
        self._bound = ""

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the executor tasks."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.config.queue_depth)
        self._stopped = asyncio.Event()
        if self.config.socket_path:
            path = Path(self.config.socket_path).expanduser()
            path.parent.mkdir(parents=True, exist_ok=True)
            if path.is_socket():
                # Debris from a dead server; a live one would error below.
                path.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=str(path)
            )
            self._bound = str(path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
            )
            bound = self._server.sockets[0].getsockname()
            self.config.port = bound[1]
            self._bound = f"{bound[0]}:{bound[1]}"
        self._worker_tasks = [
            self._loop.create_task(self._worker_loop())
            for _ in range(self.config.concurrency)
        ]
        self._started_at = time.monotonic()

    @property
    def address(self):
        """What a :class:`~repro.service.client.ServiceClient` connects to."""
        if self.config.socket_path:
            return self._bound
        return (self.config.host, self.config.port)

    def describe_address(self) -> str:
        kind = "unix" if self.config.socket_path else "tcp"
        return f"{kind}:{self._bound}"

    async def run(self, *, install_signals: bool = True, on_ready=None) -> None:
        """Start, serve until drained, and tear down.

        With ``install_signals``, SIGTERM and SIGINT trigger
        :meth:`drain` — stop admitting, finish or checkpoint in-flight
        requests, flush journals — and this coroutine then returns
        normally, so ``asyncio.run(service.run())`` exits 0 on SIGTERM.
        """
        await self.start()
        installed = []
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(signum, self._on_signal)
                    installed.append(signum)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # non-main thread or exotic host: rely on the embedder
        if on_ready is not None:
            on_ready(self)
        try:
            await self._stopped.wait()
        finally:
            for signum in installed:
                try:
                    self._loop.remove_signal_handler(signum)
                except (NotImplementedError, ValueError):  # pragma: no cover
                    pass

    def _on_signal(self) -> None:
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = self._loop.create_task(self.drain())

    def stop_from_thread(self, grace: Optional[float] = None, timeout: float = 60.0):
        """Thread-safe drain trigger (test harnesses, embedders)."""
        future = asyncio.run_coroutine_threadsafe(self.drain(grace), self._loop)
        return future.result(timeout)

    async def drain(self, grace: Optional[float] = None) -> None:
        """Graceful shutdown: stop admitting, finish or checkpoint, exit.

        New requests are rejected with reason ``draining`` the moment this
        starts.  In-flight requests get ``grace`` seconds to finish; past
        that, :func:`~repro.dispatch.supervise.request_shutdown` makes the
        supervised engines journal what their workers already completed and
        stop, every request's cancel event is set, and the request threads
        are given a short join so journals are flushed before the loop
        closes.  Queued-but-unstarted requests are rejected, never dropped
        silently.
        """
        if self._draining:
            if self._stopped is not None:
                await self._stopped.wait()
            return
        self._draining = True
        grace = self.config.drain_grace if grace is None else max(0.0, grace)
        deadline = self._loop.time() + grace
        while (
            self._in_flight or not self._queue.empty()
        ) and self._loop.time() < deadline:
            await asyncio.sleep(0.05)
        if self._in_flight or not self._queue.empty():
            # Out of grace: checkpoint instead of finishing.  The engines
            # journal completed chunks and raise ShutdownRequested; ops
            # observe their cancel event between items.
            request_shutdown()
            for conn in list(self._connections):
                for event in list(conn.requests.values()):
                    event.set()
            hard = self._loop.time() + max(1.0, min(grace or 1.0, 5.0))
            while self._in_flight and self._loop.time() < hard:
                await asyncio.sleep(0.05)
        # Reject whatever never started.
        while True:
            try:
                request = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            self._counters["rejected_draining"] += 1
            request.conn.requests.pop(request.id, None)
            await self._send(
                request.conn,
                {
                    "id": request.id,
                    "kind": "rejected",
                    "reason": "draining",
                    "retry_after": self.config.retry_after,
                },
            )
            self._queue.task_done()
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        # Journal flushes happen on the request threads; give them a short,
        # bounded join (they are daemons — a truly hung op cannot block
        # exit, it just loses its un-journaled tail).
        join_deadline = time.monotonic() + 2.0
        for thread in list(self._threads):
            thread.join(max(0.0, join_deadline - time.monotonic()))
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections):
            conn.alive = False
            try:
                conn.writer.close()
            except Exception:  # pragma: no cover - host-specific teardown
                pass
        if self.config.socket_path:
            try:
                Path(self.config.socket_path).expanduser().unlink()
            except OSError:
                pass
        clear_shutdown()  # leave the process-global flag clean for embedders
        self._stopped.set()

    # -- observability ------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "status": "draining" if self._draining else "serving",
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "queue_limit": self.config.queue_depth,
            "in_flight": self._in_flight,
        }

    def stats(self) -> Dict[str, Any]:
        cache_stats = self.cache.stats() if self.cache is not None else None
        return {
            **self.health(),
            "uptime": (
                round(time.monotonic() - self._started_at, 3)
                if self._started_at is not None
                else 0.0
            ),
            "concurrency": self.config.concurrency,
            "workers": self.resolved_workers,
            "counters": dict(self._counters),
            "supervision": dict(self._supervision_totals),
            "breaker": self.breaker.snapshot(),
            "cache": cache_stats,
            # The static analyzer's process-wide counters (parent's view,
            # like the cache stats): fast-path hit rate, pruned rf edges,
            # may-race pairs seen.  ``enabled`` reflects REPRO_ANALYZE.
            "analyze": {
                "enabled": analyze.analyze_enabled(),
                **analyze.stats_snapshot(),
            },
            # The symmetry engine's counters, same parent's-view caveat:
            # orbits seen, members skipped, canonical-tier cache hits.
            "symmetry": {
                "enabled": analyze.symmetry_enabled(),
                **analyze.symmetry_stats_snapshot(),
            },
            "semantics_revision": SEMANTICS_REVISION,
        }

    def _absorb_supervision(
        self, report: SupervisionReport, workers_used: int
    ) -> None:
        totals = self._supervision_totals
        totals["retried"] += report.retried
        totals["respawns"] += report.respawns
        totals["timeouts"] += report.timeouts
        totals["crashes"] += report.crashes
        totals["corrupt_payloads"] += report.corrupt_payloads
        totals["degraded_serial_runs"] += 1 if report.degraded_serial else 0
        totals["quarantined"] += len(report.quarantined)
        self.breaker.record(report, workers_used)

    # -- the wire -----------------------------------------------------------

    async def _send(self, conn: _Connection, message: Dict[str, Any]) -> bool:
        """Write one frame; a dead client cancels everything it had running."""
        if not conn.alive:
            return False
        try:
            frame = encode_frame(message)
        except (TypeError, ValueError, ProtocolError) as exc:
            frame = encode_frame(
                {
                    "id": message.get("id"),
                    "kind": "error",
                    "code": "internal",
                    "error": f"unserialisable response item: {exc}",
                }
            )
        async with conn.write_lock:
            try:
                conn.writer.write(frame)
                await conn.writer.drain()
                return True
            except (ConnectionError, OSError, RuntimeError):
                conn.alive = False
                for event in list(conn.requests.values()):
                    event.set()
                return False

    async def _handle_connection(self, reader, writer) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ProtocolError as exc:
                    # The stream is unsynchronised past a bad frame: tell
                    # the client once, then drop the connection.
                    self._counters["protocol_errors"] += 1
                    await self._send(
                        conn,
                        {
                            "id": None,
                            "kind": "error",
                            "code": "protocol",
                            "error": str(exc),
                        },
                    )
                    break
                if message is None:
                    break
                await self._dispatch_message(conn, message)
        finally:
            conn.alive = False
            for event in list(conn.requests.values()):
                event.set()
            self._connections.discard(conn)
            try:
                writer.close()
            except Exception:  # pragma: no cover - host-specific teardown
                pass

    async def _dispatch_message(self, conn: _Connection, message: Any) -> None:
        if not isinstance(message, dict):
            await self._send(
                conn,
                {
                    "id": None,
                    "kind": "error",
                    "code": "bad-request",
                    "error": "request frame must be a JSON object",
                },
            )
            return
        op = message.get("op")
        rid = message.get("id")
        if op == "cancel":
            event = conn.requests.get(rid)
            if event is not None:
                event.set()
            return  # the cancelled request still emits its own terminal frame
        if op == "health" or op == "stats":
            payload = self.health() if op == "health" else self.stats()
            await self._send(conn, {"id": rid, "kind": op, op: payload})
            return
        if op not in SERVICE_OPS:
            await self._send(
                conn,
                {
                    "id": rid,
                    "kind": "error",
                    "code": "bad-request",
                    "error": f"unknown op {op!r} (expected one of "
                    f"{sorted(SERVICE_OPS + ('health', 'stats', 'cancel'))})",
                },
            )
            return
        if not isinstance(rid, int) or isinstance(rid, bool):
            await self._send(
                conn,
                {
                    "id": None,
                    "kind": "error",
                    "code": "bad-request",
                    "error": "request 'id' must be an integer",
                },
            )
            return
        if rid in conn.requests:
            await self._send(
                conn,
                {
                    "id": rid,
                    "kind": "error",
                    "code": "bad-request",
                    "error": "request id already in flight on this connection",
                },
            )
            return
        args = message.get("args", {})
        if not isinstance(args, dict):
            await self._send(
                conn,
                {
                    "id": rid,
                    "kind": "error",
                    "code": "bad-request",
                    "error": "request 'args' must be a JSON object",
                },
            )
            return
        deadline = message.get("deadline")
        if deadline is not None and not isinstance(deadline, (int, float)):
            await self._send(
                conn,
                {
                    "id": rid,
                    "kind": "error",
                    "code": "bad-request",
                    "error": "request 'deadline' must be a number of seconds",
                },
            )
            return
        if self._draining:
            self._counters["rejected_draining"] += 1
            await self._send(
                conn,
                {
                    "id": rid,
                    "kind": "rejected",
                    "reason": "draining",
                    "retry_after": self.config.retry_after,
                },
            )
            return
        request = _Request(
            id=rid,
            op=op,
            args=args,
            deadline=float(deadline) if deadline is not None else None,
            conn=conn,
            cancel=threading.Event(),
        )
        conn.requests[rid] = request.cancel
        try:
            self._queue.put_nowait(request)
        except asyncio.QueueFull:
            conn.requests.pop(rid, None)
            self._counters["rejected_full"] += 1
            await self._send(
                conn,
                {
                    "id": rid,
                    "kind": "rejected",
                    "reason": "queue-full",
                    "retry_after": self.config.retry_after,
                },
            )
            return
        self._counters["admitted"] += 1

    # -- execution ----------------------------------------------------------

    async def _worker_loop(self) -> None:
        while True:
            request = await self._queue.get()
            try:
                if request.cancel.is_set() or not request.conn.alive:
                    self._counters["cancelled"] += 1
                    request.conn.requests.pop(request.id, None)
                    if request.conn.alive:
                        await self._send(
                            request.conn,
                            {"id": request.id, "kind": "cancelled"},
                        )
                    continue
                self._in_flight += 1
                try:
                    await self._execute(request)
                finally:
                    self._in_flight -= 1
                    request.conn.requests.pop(request.id, None)
            finally:
                self._queue.task_done()

    async def _execute(self, request: _Request) -> None:
        """Run one op on a daemon thread, streaming its items back."""
        out: asyncio.Queue = asyncio.Queue()
        loop = self._loop
        supervision = SupervisionReport()
        workers = self.breaker.effective_workers(self.resolved_workers)
        runner = getattr(self, f"_op_{request.op}")

        def work() -> None:
            generator = None
            try:
                generator = runner(
                    request.args, request.cancel, workers, supervision
                )
                for item in generator:
                    if request.cancel.is_set():
                        break
                    loop.call_soon_threadsafe(out.put_nowait, ("item", item))
                loop.call_soon_threadsafe(out.put_nowait, ("done", None))
            except RequestError as exc:
                loop.call_soon_threadsafe(
                    out.put_nowait, ("error", (str(exc), "bad-request"))
                )
            except ShutdownRequested:
                loop.call_soon_threadsafe(
                    out.put_nowait,
                    (
                        "error",
                        (
                            "request interrupted by service shutdown; "
                            "completed work was checkpointed",
                            "draining",
                        ),
                    ),
                )
            except BaseException as exc:  # the frame must always terminate
                loop.call_soon_threadsafe(
                    out.put_nowait,
                    ("error", (f"{type(exc).__name__}: {exc}", "internal")),
                )
            finally:
                if generator is not None:
                    # Deterministically reap the op's dispatch workers.
                    try:
                        generator.close()
                    except BaseException:
                        pass
                self._threads.discard(threading.current_thread())

        thread = threading.Thread(
            target=work, daemon=True, name=f"repro-request-{request.id}"
        )
        self._threads.add(thread)
        thread.start()

        deadline = (
            request.deadline
            if request.deadline is not None
            else self.config.default_deadline
        )
        expires = (
            loop.time() + deadline if deadline and deadline > 0 else None
        )
        seq = 0
        while True:
            if expires is None:
                kind, payload = await out.get()
            else:
                try:
                    kind, payload = await asyncio.wait_for(
                        out.get(), max(0.0, expires - loop.time())
                    )
                except asyncio.TimeoutError:
                    request.cancel.set()
                    self._counters["deadline_expired"] += 1
                    await self._send(
                        request.conn,
                        {
                            "id": request.id,
                            "kind": "error",
                            "code": "deadline",
                            "error": f"deadline of {deadline}s exceeded "
                            f"after {seq} item(s)",
                        },
                    )
                    break
            if kind == "item":
                seq += 1
                delivered = await self._send(
                    request.conn,
                    {
                        "id": request.id,
                        "kind": "item",
                        "seq": seq,
                        "item": payload,
                    },
                )
                if not delivered:
                    # Client died mid-stream: reap the work it ordered.
                    request.cancel.set()
                    self._counters["cancelled"] += 1
                    break
                continue
            if kind == "done":
                if request.cancel.is_set():
                    self._counters["cancelled"] += 1
                    await self._send(
                        request.conn,
                        {"id": request.id, "kind": "cancelled", "items": seq},
                    )
                else:
                    self._counters["served"] += 1
                    await self._send(
                        request.conn,
                        {"id": request.id, "kind": "done", "items": seq},
                    )
                break
            message, code = payload
            self._counters["errors"] += 1
            await self._send(
                request.conn,
                {
                    "id": request.id,
                    "kind": "error",
                    "code": code,
                    "error": message,
                },
            )
            break
        self._absorb_supervision(supervision, workers)

    # -- ops ----------------------------------------------------------------

    def _cache_arg(self):
        """The ops' ``cache=`` argument: never re-resolve the environment."""
        return self.cache if self.cache is not None else False

    def _cache_spec(self, workers: int):
        """What sweep tasks carry: the live tier serially, the backing spec
        across process boundaries (the LRU tier is process-local by design)."""
        if self.cache is None:
            return None
        if workers <= 1:
            return self.cache
        return self.cache.spec

    @staticmethod
    def _catalogue_test(name: str):
        from ..litmus.catalogue import by_name

        try:
            return by_name(name)
        except (KeyError, ValueError) as exc:
            raise RequestError(f"unknown catalogue test {name!r}") from exc

    def _requested_tests(self, args: Dict[str, Any]):
        from ..litmus.catalogue import all_tests

        names = args.get("names")
        if names is None:
            return list(all_tests())
        if not isinstance(names, (list, tuple)) or not names:
            raise RequestError("'names' must be a non-empty list of test names")
        return [self._catalogue_test(str(name)) for name in names]

    def _op_catalogue(self, args, cancel, workers, supervision) -> Iterator[dict]:
        """Stream per-test catalogue verdicts (bit-identical to the batch)."""
        from ..litmus.runner import iter_test_verdicts

        tests = self._requested_tests(args)
        stream = iter_test_verdicts(
            tests,
            workers=workers,
            cache=self._cache_arg(),
            supervision=supervision,
        )
        try:
            for test, verdicts in stream:
                if cancel.is_set():
                    return
                expected = tuple(e.allowed for e in test.expectations)
                yield {
                    "test": test.name,
                    "models": [e.model for e in test.expectations],
                    "verdicts": list(verdicts),
                    "expected": list(expected),
                    "passed": verdicts == expected,
                }
        finally:
            stream.close()

    def _op_outcome(self, args, cancel, workers, supervision) -> Iterator[dict]:
        """One ``spec_allowed`` verdict for a catalogue test."""
        from ..litmus.catalogue import FINAL, SC
        from ..litmus.runner import MODEL_BY_KEY, spec_allowed

        test = self._catalogue_test(str(args.get("test", "")))
        model_key = str(args.get("model", FINAL))
        if model_key != SC and model_key not in MODEL_BY_KEY:
            raise RequestError(
                f"unknown model {model_key!r} (expected one of "
                f"{sorted(MODEL_BY_KEY) + [SC]})"
            )
        raw_spec = args.get("spec")
        if not isinstance(raw_spec, dict) or not raw_spec:
            raise RequestError(
                "'spec' must be a non-empty {variable: value} object"
            )
        try:
            spec = {str(k): int(v) for k, v in raw_spec.items()}
        except (TypeError, ValueError) as exc:
            raise RequestError(f"'spec' values must be integers: {exc}") from exc
        allowed = spec_allowed(test, spec, model_key, cache=self._cache_arg())
        yield {
            "test": test.name,
            "model": model_key,
            "spec": spec,
            "allowed": bool(allowed),
        }

    @staticmethod
    def _describe_counterexample(counterexample) -> str:
        describe = getattr(counterexample, "describe", None)
        if callable(describe):
            return describe()
        return (
            f"compilation violation: {counterexample.program.name} "
            f"({counterexample.event_count} events, "
            f"{counterexample.byte_location_count} byte location(s))"
        )

    @staticmethod
    def _sweep_bounds(raw: Any):
        from ..search.shapes import SearchBounds

        if raw is None:
            raw = {}
        if not isinstance(raw, dict):
            raise RequestError("'bounds' must be a JSON object")
        fields = {f.name for f in dataclasses.fields(SearchBounds)}
        unknown = set(raw) - fields
        if unknown:
            raise RequestError(
                f"unknown bounds field(s) {sorted(unknown)} "
                f"(expected a subset of {sorted(fields)})"
            )
        raw = dict(raw)
        if "values" in raw:
            raw["values"] = tuple(raw["values"])
        try:
            return SearchBounds(**raw)
        except (TypeError, ValueError) as exc:
            raise RequestError(f"invalid bounds: {exc}") from exc

    def _op_sweep(self, args, cancel, workers, supervision) -> Iterator[dict]:
        """Stream one §5 sweep slice-by-slice with early exit on the hit.

        Slices fan out through the supervised engine with exactly the batch
        sweeps' worker function and cache keys; completed slices are
        journaled (kind ``service-<kind>``) so a drain mid-request leaves a
        resumable journal, and a later identical request resumes from it.
        """
        from ..litmus.catalogue import ORIGINAL
        from ..litmus.runner import MODEL_BY_KEY
        from ..search.counterexamples import (
            materialise_hit,
            sweep_slice,
            sweep_slice_task,
        )
        from ..search.shapes import (
            generate_programs,
            install_shape_tables,
            program_count,
            shape_tables,
        )

        kind = args.get("kind")
        if kind not in ("sc-drf", "arm-compilation"):
            raise RequestError(
                f"unknown sweep kind {kind!r} "
                "(expected 'sc-drf' or 'arm-compilation')"
            )
        model_key = str(args.get("model", ORIGINAL))
        if model_key not in MODEL_BY_KEY:
            raise RequestError(
                f"unknown model {model_key!r} (expected one of "
                f"{sorted(MODEL_BY_KEY)})"
            )
        model = MODEL_BY_KEY[model_key]
        use_operational = bool(args.get("use_operational", False))
        bounds = self._sweep_bounds(args.get("bounds"))
        total = program_count(bounds)
        try:
            start = int(args.get("start", 0))
            stop = args.get("stop")
            stop = total if stop is None else min(int(stop), total)
            chunk = args.get("chunk")
            chunk = None if chunk is None else max(1, int(chunk))
        except (TypeError, ValueError) as exc:
            raise RequestError(
                f"'start'/'stop'/'chunk' must be integers: {exc}"
            ) from exc
        if not 0 <= start <= stop:
            raise RequestError(
                f"need 0 <= start <= stop <= {total}, got [{start}, {stop})"
            )
        cache_live = self._cache_arg()
        cache_spec = self._cache_spec(workers)
        ranges = [
            (s + start, e + start)
            for s, e in shard_ranges(stop - start, workers, chunk)
        ]
        journal = None
        checkpoint_dir = resolve_checkpoint(None, cache=self.cache)
        if checkpoint_dir is not None and ranges:
            journal = SweepJournal.open(
                checkpoint_dir,
                f"service-{kind}",
                fingerprint(
                    "service-sweep",
                    kind,
                    bounds,
                    model,
                    use_operational,
                    list(ranges),
                ),
                SEMANTICS_REVISION,
                len(ranges),
            )
        recorded = journal.completed() if journal is not None else {}
        live = [
            (i, (kind, bounds, model, use_operational, s, e, cache_spec))
            for i, (s, e) in enumerate(ranges)
            if i not in recorded
        ]

        def on_slice_complete(live_index: int, result) -> None:
            if journal is not None:
                journal.record(live[live_index][0], list(result))

        initializer, initargs = chain_initializers(
            (install_shape_tables, (shape_tables(bounds),)),
            (warm_spec, (cache_spec,))
            if isinstance(cache_spec, tuple)
            else None,
        )
        stream = supervised_imap(
            sweep_slice_task,
            [task for _i, task in live],
            workers=workers,
            initializer=initializer,
            initargs=initargs,
            on_complete=on_slice_complete,
            report=supervision,
        )
        programs_examined = 0
        decided = False
        try:
            for index, (slice_start, slice_stop) in enumerate(ranges):
                if cancel.is_set():
                    return
                if index in recorded:
                    entry = recorded[index]
                    examined, hit = int(entry[0]), entry[1]
                    resumed = True
                else:
                    examined, hit = next(stream)
                    resumed = False
                programs_examined += examined
                yield {
                    "start": slice_start,
                    "stop": slice_stop,
                    "examined": examined,
                    "hit": hit,
                    "resumed": resumed,
                }
                while hit is not None:
                    counterexample = materialise_hit(
                        kind,
                        bounds,
                        model,
                        hit,
                        use_operational=use_operational,
                    )
                    if counterexample is not None:
                        decided = True
                        yield {
                            "found": True,
                            "hit": hit,
                            "programs_examined": programs_examined,
                            "counterexample": self._describe_counterexample(
                                counterexample
                            ),
                        }
                        return
                    # Stale-cache false hit: repair the entry and rescan the
                    # rest of this slice, exactly like the batch driver.
                    if self.cache is not None:
                        program = next(
                            generate_programs(bounds, hit, hit + 1)
                        )
                        self.cache.put(
                            self.cache.key(
                                kind,
                                program_fingerprint(program),
                                model,
                                use_operational,
                            ),
                            False,
                        )
                    examined, hit = sweep_slice(
                        kind,
                        bounds,
                        model,
                        hit + 1,
                        slice_stop,
                        use_operational=use_operational,
                        cache=cache_live,
                    )
                    programs_examined += examined
            decided = True
            yield {
                "found": False,
                "programs_examined": programs_examined,
                "exhausted": True,
            }
        finally:
            stream.close()
            if journal is not None:
                if decided and not cancel.is_set():
                    journal.finish()
                else:
                    journal.close()

    def _op_corpus(self, args, cancel, workers, supervision) -> Iterator[dict]:
        """Stream per-program bounded compilation-check results."""
        from ..compile.correctness import corpus_check_task
        from ..litmus.catalogue import FINAL
        from ..litmus.runner import MODEL_BY_KEY

        tests = self._requested_tests(args)
        model_key = str(args.get("model", FINAL))
        if model_key not in MODEL_BY_KEY:
            raise RequestError(
                f"unknown model {model_key!r} (expected one of "
                f"{sorted(MODEL_BY_KEY)})"
            )
        model = MODEL_BY_KEY[model_key]
        use_operational = bool(args.get("use_operational", False))
        group_coherence = bool(args.get("group_coherence", True))
        cache_spec = self._cache_spec(workers)
        stream = supervised_imap(
            corpus_check_task,
            [
                (
                    test.program,
                    model,
                    use_operational,
                    group_coherence,
                    cache_spec,
                )
                for test in tests
            ],
            workers=workers,
            initializer=warm_spec if isinstance(cache_spec, tuple) else None,
            initargs=(cache_spec,) if isinstance(cache_spec, tuple) else (),
            report=supervision,
        )
        try:
            for test, result in zip(tests, stream):
                if cancel.is_set():
                    return
                yield {
                    "program": test.name,
                    "model": result.model,
                    "correct": result.correct,
                    "arm_executions": result.arm_executions,
                    "valid_with_construction": result.valid_with_construction,
                    "valid_with_search": result.valid_with_search,
                    "construction_failures": result.construction_failures,
                    "counterexamples": len(result.counterexamples),
                }
        finally:
            stream.close()


def main(argv=None) -> int:
    """``repro-serve`` / ``python -m repro.service``: run the server."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Long-running verdict service over the dispatch/store stack: "
            "bounded admission, streamed results, per-request deadlines, "
            "tiered verdict cache, graceful SIGTERM drain."
        ),
    )
    parser.add_argument(
        "--socket",
        default=None,
        help=f"serve on a Unix socket path (default: ${SERVICE_SOCKET_ENV})",
    )
    parser.add_argument(
        "--host", default=None, help="TCP bind host (default: 127.0.0.1)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP bind port (default: ephemeral; printed on startup)",
    )
    parser.add_argument(
        "--queue", type=int, default=None, help="admission queue depth"
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=None,
        help="requests executing at once",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="dispatch workers per request (default: $REPRO_WORKERS)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="default per-request deadline in seconds (default: none)",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=None,
        help="seconds in-flight requests get to finish on SIGTERM",
    )
    parser.add_argument(
        "--cache",
        default=None,
        help="verdict-cache directory, or 'off' "
        "(default: $REPRO_VERDICT_CACHE)",
    )
    parser.add_argument(
        "--lru",
        type=int,
        default=None,
        help="in-process LRU tier capacity, 0 disables "
        "(default: $REPRO_LRU_TIER or 4096)",
    )
    args = parser.parse_args(argv)

    config = ServiceConfig.from_env()
    if args.socket is not None:
        config.socket_path = args.socket or None
    if args.host is not None:
        config.host = args.host
        config.socket_path = None if args.socket is None else config.socket_path
    if args.port is not None:
        config.port = args.port
    if args.queue is not None:
        config.queue_depth = max(1, args.queue)
    if args.concurrency is not None:
        config.concurrency = max(1, args.concurrency)
    if args.workers is not None:
        config.workers = args.workers
    if args.deadline is not None:
        config.default_deadline = args.deadline if args.deadline > 0 else None
    if args.drain_grace is not None:
        config.drain_grace = max(0.0, args.drain_grace)
    if args.lru is not None:
        config.lru_capacity = args.lru

    cache: Any = None
    if args.cache is not None:
        if args.cache.strip().lower() in ("", "0", "off", "none", "no"):
            cache = False
        else:
            from ..dispatch import open_cache

            cache = open_cache(args.cache)

    service = VerdictService(config, cache=cache)

    def announce(started: VerdictService) -> None:
        print(
            f"repro-serve: listening on {started.describe_address()} "
            f"(queue={started.config.queue_depth}, "
            f"concurrency={started.config.concurrency}, "
            f"workers={started.resolved_workers})",
            flush=True,
        )

    try:
        asyncio.run(service.run(on_ready=announce))
    except KeyboardInterrupt:  # second signal: hard stop
        return 130
    return 0
