"""``python -m repro.service`` — run the verdict server (same as repro-serve)."""

import sys

from .server import main

if __name__ == "__main__":
    sys.exit(main())
