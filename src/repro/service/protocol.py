"""Length-prefixed, checksummed JSON framing for the verdict service.

One frame is ``MAGIC | u32 payload length | sha256(payload)[:16] | payload``
(little-endian header, UTF-8 JSON payload) — the same belt-and-braces
discipline as the segment store's records: the receiver verifies the magic,
a sanity bound on the length, and the checksum before parsing a byte of
JSON, so a torn write, a crossed wire or a foreign client talking to the
port is a clean :class:`ProtocolError`, never a half-parsed request.

Requests and responses are flat JSON objects.  Requests carry ``op`` (the
operation name), ``id`` (a client-chosen integer echoed on every response
frame), ``args`` (operation parameters) and optionally ``deadline``
(seconds).  Responses carry ``id`` and ``kind`` — ``item`` frames stream
incremental results (with a monotonically increasing ``seq``), and exactly
one terminal frame (``done``, ``error``, ``rejected``, ``health``,
``stats``, ``cancelled``) closes each request.

Both an asyncio reader (server side) and a blocking file reader (client
side) are provided over the identical wire format.
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Any, Optional

MAGIC = b"RVQ1"
_HEADER = struct.Struct("<4sI16s")
HEADER_SIZE = _HEADER.size

MAX_FRAME_BYTES = 32 * 2 ** 20
"""Sanity bound on one frame's payload.

Far above any legitimate request or streamed item; a length past it means
the stream is garbage (wrong magic interpretation, corrupted header) and
is rejected before any allocation."""


class ProtocolError(Exception):
    """The byte stream does not parse as a valid frame."""


def encode_frame(message: Any) -> bytes:
    """Serialise ``message`` (a JSON-able object) into one wire frame."""
    payload = json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    digest = hashlib.sha256(payload).digest()[:16]
    return _HEADER.pack(MAGIC, len(payload), digest) + payload


def _parse_header(header: bytes) -> tuple:
    magic, length, digest = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    return length, digest


def _parse_payload(payload: bytes, digest: bytes) -> Any:
    if hashlib.sha256(payload).digest()[:16] != digest:
        raise ProtocolError("frame payload fails its checksum")
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        # Checksummed yet unparseable: the sender framed garbage.
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc


async def read_frame(reader) -> Optional[Any]:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns ``None`` on a clean EOF (the peer closed between frames);
    raises :class:`ProtocolError` on garbage or a mid-frame truncation.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    length, digest = _parse_header(header)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-payload") from exc
    return _parse_payload(payload, digest)


def _read_exactly(stream, count: int) -> bytes:
    """Blocking read of exactly ``count`` bytes (short only at EOF)."""
    chunks = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_blocking(stream) -> Optional[Any]:
    """Read one frame from a blocking binary stream (client side).

    Same contract as :func:`read_frame`: ``None`` on clean EOF,
    :class:`ProtocolError` on garbage or truncation.
    """
    header = _read_exactly(stream, HEADER_SIZE)
    if not header:
        return None
    if len(header) < HEADER_SIZE:
        raise ProtocolError("connection closed mid-header")
    length, digest = _parse_header(header)
    payload = _read_exactly(stream, length)
    if len(payload) < length:
        raise ProtocolError("connection closed mid-payload")
    return _parse_payload(payload, digest)


def write_frame_blocking(stream, message: Any) -> None:
    """Write one frame to a blocking binary stream and flush it."""
    stream.write(encode_frame(message))
    stream.flush()
