"""Blocking client for the verdict service, and the ``repro-query`` CLI.

:class:`ServiceClient` speaks the frame protocol over a Unix socket or TCP
connection and exposes the service's ops as plain calls: ``health()`` /
``stats()`` return their payload, :meth:`ServiceClient.request` collects a
whole streamed response, and :meth:`ServiceClient.stream` returns a lazy
iterator whose :meth:`ResponseStream.cancel` tells the server to abandon
the remaining work — the wire realisation of the batch paths' early exit.

Failure is explicit, never silent: a backpressure rejection raises
:class:`ServiceRejected` carrying the server's ``retry_after`` hint, a
remote validation or execution failure raises :class:`RemoteRequestError`
with the server's error code, and a dead or garbled connection raises
:class:`ServiceError`.
"""

from __future__ import annotations

import json
import os
import socket
import sys
from typing import Any, Dict, Iterator, List, Optional

from .protocol import ProtocolError, read_frame_blocking, write_frame_blocking


class ServiceError(Exception):
    """The connection or the conversation with the service broke down."""


class ServiceRejected(ServiceError):
    """The service refused admission (bounded queue full, or draining)."""

    def __init__(self, reason: str, retry_after: Optional[float]):
        super().__init__(
            f"request rejected ({reason})"
            + (f"; retry after {retry_after}s" if retry_after else "")
        )
        self.reason = reason
        self.retry_after = retry_after


class RemoteRequestError(ServiceError):
    """The service reported an error executing or validating the request."""

    def __init__(self, message: str, code: Optional[str] = None):
        super().__init__(message)
        self.code = code


class ResponseStream:
    """Lazy iterator over one request's ``item`` frames.

    Iteration yields each item payload and stops at the terminal frame
    (``done`` or ``cancelled``); ``error`` and ``rejected`` terminals
    raise.  After iteration, :attr:`terminal` holds the terminal frame.
    :meth:`cancel` asks the server to abandon the remaining work, then
    drains to the terminal so the connection stays frame-aligned for the
    next request.
    """

    def __init__(self, client: "ServiceClient", request_id: int):
        self._client = client
        self.id = request_id
        self.terminal: Optional[Dict[str, Any]] = None

    def __iter__(self) -> "ResponseStream":
        return self

    def __next__(self) -> Any:
        if self.terminal is not None:
            raise StopIteration
        frame = self._client._read_for(self.id)
        kind = frame.get("kind")
        if kind == "item":
            return frame.get("item")
        self.terminal = frame
        self._client._finish(self)
        if kind == "error":
            raise RemoteRequestError(
                str(frame.get("error")), frame.get("code")
            )
        if kind == "rejected":
            raise ServiceRejected(
                str(frame.get("reason")), frame.get("retry_after")
            )
        raise StopIteration  # done / cancelled

    def cancel(self) -> Optional[Dict[str, Any]]:
        """Abandon the request server-side; returns the terminal frame."""
        if self.terminal is None:
            self._client._send_cancel(self.id)
            try:
                for _ in self:
                    pass
            except ServiceError:
                pass  # the terminal frame is still recorded
        return self.terminal


class ServiceClient:
    """A blocking connection to one verdict service.

    ``address`` is a Unix socket path (a string containing no ``:``, or a
    path-like), a ``"host:port"`` string, or a ``(host, port)`` tuple —
    exactly what :attr:`VerdictService.address` reports.  One streamed
    request is in flight per client at a time (the protocol interleaves
    frames by request id; this client keeps the common case simple).
    """

    def __init__(self, address: Any, timeout: Optional[float] = None):
        self._sock = self._connect(address, timeout)
        self._stream = self._sock.makefile("rwb")
        self._next_id = 0
        self._active: Optional[ResponseStream] = None

    @staticmethod
    def _connect(address: Any, timeout: Optional[float]) -> socket.socket:
        if isinstance(address, (tuple, list)):
            host, port = address
            return socket.create_connection((host, int(port)), timeout=timeout)
        address = os.fspath(address)
        if ":" in address and "/" not in address:
            host, _, port = address.rpartition(":")
            return socket.create_connection(
                (host or "127.0.0.1", int(port)), timeout=timeout
            )
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
            raise ServiceError(
                "unix sockets are unavailable on this platform; "
                "connect with host:port"
            )
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if timeout is not None:
            sock.settimeout(timeout)
        try:
            sock.connect(address)
        except OSError:
            sock.close()
            raise
        return sock

    def close(self) -> None:
        try:
            self._stream.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- plumbing -----------------------------------------------------------

    def _allocate_id(self) -> int:
        rid = self._next_id
        self._next_id += 1
        return rid

    def _finish(self, stream: ResponseStream) -> None:
        if self._active is stream:
            self._active = None

    def _send_cancel(self, request_id: int) -> None:
        try:
            write_frame_blocking(
                self._stream, {"op": "cancel", "id": request_id}
            )
        except (OSError, ValueError) as exc:
            raise ServiceError(f"connection lost sending cancel: {exc}") from exc

    def _read_for(self, request_id: int) -> Dict[str, Any]:
        while True:
            try:
                frame = read_frame_blocking(self._stream)
            except (OSError, ValueError) as exc:
                raise ServiceError(f"connection lost: {exc}") from exc
            if frame is None:
                raise ServiceError(
                    "connection closed by the service mid-request"
                )
            if not isinstance(frame, dict):
                raise ServiceError(
                    f"service sent a non-object frame: {frame!r}"
                )
            fid = frame.get("id")
            if fid == request_id:
                return frame
            if fid is None:
                # Connection-scoped error (e.g. a protocol complaint).
                raise RemoteRequestError(
                    str(frame.get("error", frame)), frame.get("code")
                )
            # A frame for a request this client is no longer reading
            # (e.g. the tail of a cancelled stream): skip it.

    # -- the public surface -------------------------------------------------

    def stream(
        self,
        op: str,
        args: Optional[Dict[str, Any]] = None,
        deadline: Optional[float] = None,
    ) -> ResponseStream:
        """Send one request; returns the lazy :class:`ResponseStream`."""
        if self._active is not None and self._active.terminal is None:
            raise ServiceError(
                "a streamed request is already in flight on this client; "
                "drain or cancel it first"
            )
        rid = self._allocate_id()
        message: Dict[str, Any] = {"op": op, "id": rid, "args": args or {}}
        if deadline is not None:
            message["deadline"] = deadline
        try:
            write_frame_blocking(self._stream, message)
        except (OSError, ValueError) as exc:
            raise ServiceError(f"connection lost sending request: {exc}") from exc
        response = ResponseStream(self, rid)
        self._active = response
        return response

    def request(
        self,
        op: str,
        args: Optional[Dict[str, Any]] = None,
        deadline: Optional[float] = None,
    ) -> List[Any]:
        """Send one request and collect every streamed item."""
        return list(self.stream(op, args, deadline))

    def _single(self, op: str) -> Dict[str, Any]:
        rid = self._allocate_id()
        try:
            write_frame_blocking(self._stream, {"op": op, "id": rid})
        except (OSError, ValueError) as exc:
            raise ServiceError(f"connection lost sending request: {exc}") from exc
        frame = self._read_for(rid)
        kind = frame.get("kind")
        if kind == op:
            return frame.get(op, {})
        if kind == "error":
            raise RemoteRequestError(str(frame.get("error")), frame.get("code"))
        raise ServiceError(f"unexpected {kind!r} frame answering {op!r}")

    def health(self) -> Dict[str, Any]:
        return self._single("health")

    def stats(self) -> Dict[str, Any]:
        return self._single("stats")


# ---------------------------------------------------------------------------
# repro-query
# ---------------------------------------------------------------------------


def _resolve_address(raw: Optional[str]) -> Any:
    if raw:
        return raw
    socket_path = os.environ.get("REPRO_SERVICE_SOCKET", "").strip()
    if socket_path:
        return socket_path
    host = os.environ.get("REPRO_SERVICE_HOST", "").strip() or "127.0.0.1"
    port = os.environ.get("REPRO_SERVICE_PORT", "").strip()
    if not port:
        raise ServiceError(
            "no service address: pass --connect, or set "
            "$REPRO_SERVICE_SOCKET or $REPRO_SERVICE_HOST/$REPRO_SERVICE_PORT"
        )
    return (host, int(port))


def _emit(item: Any) -> None:
    print(json.dumps(item, sort_keys=True), flush=True)


def _stream_command(
    client: ServiceClient,
    op: str,
    request_args: Dict[str, Any],
    deadline: Optional[float],
    first: Optional[int] = None,
) -> int:
    stream = client.stream(op, request_args, deadline)
    emitted = 0
    for item in stream:
        _emit(item)
        emitted += 1
        if first is not None and emitted >= first:
            stream.cancel()
            break
    return 0


def main(argv=None) -> int:
    """``repro-query``: query a running verdict service, one JSON per line."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-query",
        description=(
            "Query a running repro-serve verdict service.  Streamed results "
            "are printed as one JSON object per line; exit status is 0 on "
            "success, 1 on a remote or connection error, 3 when the service "
            "rejected the request (queue full or draining)."
        ),
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="ADDR",
        help="unix socket path or HOST:PORT (default: $REPRO_SERVICE_SOCKET, "
        "else $REPRO_SERVICE_HOST:$REPRO_SERVICE_PORT)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request deadline in seconds, enforced server-side",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="client socket timeout in seconds (default: none)",
    )
    sub = parser.add_subparsers(dest="command")
    sub.required = True

    sub.add_parser("health", help="liveness, queue depth, in-flight count")
    sub.add_parser(
        "stats", help="counters, cache and supervision statistics"
    )

    catalogue = sub.add_parser(
        "catalogue", help="stream per-test catalogue verdicts"
    )
    catalogue.add_argument(
        "names", nargs="*", help="catalogue test names (default: all)"
    )
    catalogue.add_argument(
        "--first",
        type=int,
        default=None,
        metavar="N",
        help="stop (and cancel server-side work) after N results",
    )

    outcome = sub.add_parser(
        "outcome", help="one outcome_allowed verdict for a catalogue test"
    )
    outcome.add_argument("test", help="catalogue test name")
    outcome.add_argument(
        "assignments",
        nargs="+",
        metavar="VAR=VALUE",
        help="the candidate outcome, e.g. r0=1 r1=0",
    )
    outcome.add_argument(
        "--model", default="final", help="model key (default: final)"
    )

    sweep = sub.add_parser(
        "sweep", help="stream a §5 sweep slice-by-slice, early exit on a hit"
    )
    sweep.add_argument("kind", choices=["sc-drf", "arm-compilation"])
    sweep.add_argument(
        "--bounds",
        default=None,
        help="JSON object of SearchBounds fields (default: paper bounds)",
    )
    sweep.add_argument(
        "--model", default="original", help="model key (default: original)"
    )
    sweep.add_argument("--start", type=int, default=0)
    sweep.add_argument("--stop", type=int, default=None)
    sweep.add_argument(
        "--chunk", type=int, default=None, help="programs per slice"
    )
    sweep.add_argument("--use-operational", action="store_true")

    corpus = sub.add_parser(
        "corpus", help="stream per-program compilation-correctness checks"
    )
    corpus.add_argument(
        "names", nargs="*", help="catalogue test names (default: all)"
    )
    corpus.add_argument(
        "--model", default="final", help="model key (default: final)"
    )
    corpus.add_argument("--use-operational", action="store_true")

    args = parser.parse_args(argv)

    try:
        address = _resolve_address(args.connect)
        with ServiceClient(address, timeout=args.timeout) as client:
            if args.command == "health":
                _emit(client.health())
                return 0
            if args.command == "stats":
                _emit(client.stats())
                return 0
            if args.command == "catalogue":
                request_args: Dict[str, Any] = {}
                if args.names:
                    request_args["names"] = args.names
                return _stream_command(
                    client,
                    "catalogue",
                    request_args,
                    args.deadline,
                    args.first,
                )
            if args.command == "outcome":
                spec = {}
                for assignment in args.assignments:
                    var, sep, value = assignment.partition("=")
                    if not sep or not var:
                        parser.error(
                            f"outcome assignment {assignment!r} is not "
                            "VAR=VALUE"
                        )
                    spec[var] = int(value)
                return _stream_command(
                    client,
                    "outcome",
                    {"test": args.test, "model": args.model, "spec": spec},
                    args.deadline,
                )
            if args.command == "sweep":
                request_args = {
                    "kind": args.kind,
                    "model": args.model,
                    "start": args.start,
                    "use_operational": args.use_operational,
                }
                if args.bounds is not None:
                    request_args["bounds"] = json.loads(args.bounds)
                if args.stop is not None:
                    request_args["stop"] = args.stop
                if args.chunk is not None:
                    request_args["chunk"] = args.chunk
                return _stream_command(
                    client, "sweep", request_args, args.deadline
                )
            if args.command == "corpus":
                request_args = {
                    "model": args.model,
                    "use_operational": args.use_operational,
                }
                if args.names:
                    request_args["names"] = args.names
                return _stream_command(
                    client, "corpus", request_args, args.deadline
                )
            parser.error(f"unknown command {args.command!r}")
    except ServiceRejected as exc:
        print(f"repro-query: {exc}", file=sys.stderr)
        return 3
    except (ServiceError, ProtocolError) as exc:
        print(f"repro-query: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"repro-query: cannot reach the service: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"repro-query: --bounds is not valid JSON: {exc}", file=sys.stderr)
        return 2
    return 0
