"""repro — a reproduction of "Repairing and Mechanising the JavaScript Relaxed Memory Model".

The package is organised as in DESIGN.md:

* :mod:`repro.core`    — the JavaScript axiomatic memory model (original,
  corrected, uni-size) and its meta-theory;
* :mod:`repro.lang`    — the litmus-program fragment, its thread-local
  semantics, candidate-execution enumeration and the SC oracle;
* :mod:`repro.armv8`   — the mixed-size ARMv8 axiomatic model and a
  Flat-style operational model used to validate it;
* :mod:`repro.compile` — the JS → ARMv8 compilation scheme, the translation
  relation on executions and the bounded correctness checker;
* :mod:`repro.search`  — the Alloy-substitute bounded counter-example search
  (ARMv8-compilation and SC-DRF violations, deadness);
* :mod:`repro.imm`     — the uni-size IMM-style intermediate model and the
  x86-TSO / POWER / RISC-V / ARMv7 / ARMv8 targets;
* :mod:`repro.litmus`  — the litmus-test catalogue, generator and runner;
* :mod:`repro.dispatch` — work sharding over multiprocessing workers and
  the persistent content-addressed verdict cache behind the batched /
  ``workers=N`` entry points.
"""

__version__ = "1.1.0"

from . import armv8, compile, core, dispatch, imm, lang, litmus, search

__all__ = [
    "armv8",
    "compile",
    "core",
    "dispatch",
    "imm",
    "lang",
    "litmus",
    "search",
    "__version__",
]
