"""Atomics.wait / Atomics.notify — the §7 thread-suspension semantics.

``Atomics.wait`` reads a location inside a wait-queue *critical section* and
suspends the agent if the value read equals the expected value;
``Atomics.notify`` wakes every agent suspended on the location and returns
the number woken.  The ES2019 specification interleaves these critical
sections in the thread-local semantics but never tells the axiomatic memory
model about that interleaving; the paper's correction is that **entering the
critical section synchronizes with all previous exits**, contributing
``additional-synchronizes-with`` edges to the candidate execution.

This module enumerates the wait/notify *scenarios* of a program (which
waiters suspend, in which order the critical sections are entered, who wakes
whom and what each notify returns), builds the corresponding candidate
pre-executions — with the corrective ``asw`` edges (``corrected=True``) or
without them (``corrected=False``, the uncorrected specification) — and
hands them to the usual candidate-execution enumeration.

The two Fig. 13 executions are the acceptance tests: both are allowed by
the uncorrected model and forbidden once the critical-section edges are
added.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.execution import CandidateExecution
from ..core.js_model import FINAL_MODEL, JsModel, exists_valid_total_order
from ..core.relations import Relation
from .ast import Outcome, Program, outcome_matches
from .enumeration import (
    GroundExecution,
    build_pre_execution,
    ground_candidates,
    program_init_events,
)
from .thread_semantics import (
    EventTemplate,
    LocalPath,
    PathConstraint,
    TemplateKey,
    program_paths,
)


@dataclass(frozen=True)
class CsOp:
    """One critical-section operation: a wait entry or a notify."""

    kind: str  # "wait" | "notify"
    key: TemplateKey
    template: EventTemplate

    @property
    def tid(self) -> int:
        return self.key[0]

    @property
    def position(self) -> int:
        return self.key[1]

    def location(self) -> Tuple[str, int, int]:
        rng = self.template.byte_range()
        return (self.template.block, rng.start, rng.stop)


@dataclass(frozen=True)
class Scenario:
    """One fully resolved wait/notify scenario for a path combination.

    ``suspends``      — which waits observed their expected value and slept;
    ``stuck``         — wait operations that were never notified (their
                        thread suspends forever);
    ``notify_counts`` — the value returned by each notify;
    ``cs_sync``       — ordered pairs of (exit op, entry op) of the
                        critical-section order, used to generate ``asw``.
    """

    suspends: Tuple[Tuple[TemplateKey, bool], ...]
    stuck: Tuple[TemplateKey, ...]
    notify_counts: Tuple[Tuple[TemplateKey, int], ...]
    cs_sync: Tuple[Tuple[CsOp, str, CsOp, str], ...]
    wake_sync: Tuple[Tuple[CsOp, TemplateKey], ...]


def _cs_ops(paths: Sequence[LocalPath]) -> List[CsOp]:
    """The critical-section operations of a path combination, per thread order."""
    ops: List[CsOp] = []
    for path in paths:
        for template in path.templates:
            if template.wait_expected is not None:
                ops.append(CsOp(kind="wait", key=template.key, template=template))
            elif template.kind == "notify":
                ops.append(CsOp(kind="notify", key=template.key, template=template))
    return ops


def _interleavings(ops: Sequence[CsOp]) -> Iterator[Tuple[CsOp, ...]]:
    """All interleavings of the critical-section operations respecting program order."""
    by_thread: Dict[int, List[CsOp]] = {}
    for op in ops:
        by_thread.setdefault(op.tid, []).append(op)
    for thread_ops in by_thread.values():
        thread_ops.sort(key=lambda op: op.position)

    def backtrack(state: Dict[int, int], acc: List[CsOp]):
        if all(state[tid] == len(thread_ops) for tid, thread_ops in by_thread.items()):
            yield tuple(acc)
            return
        for tid, thread_ops in by_thread.items():
            idx = state[tid]
            if idx < len(thread_ops):
                state[tid] += 1
                acc.append(thread_ops[idx])
                yield from backtrack(state, acc)
                acc.pop()
                state[tid] -= 1

    yield from backtrack({tid: 0 for tid in by_thread}, [])


def _scenarios(paths: Sequence[LocalPath]) -> Iterator[Scenario]:
    """Enumerate the wait/notify scenarios of one path combination."""
    ops = _cs_ops(paths)
    waits = [op for op in ops if op.kind == "wait"]
    if not ops:
        yield Scenario(
            suspends=(), stuck=(), notify_counts=(), cs_sync=(), wake_sync=()
        )
        return

    for suspend_choice in itertools.product([False, True], repeat=len(waits)):
        suspends = {op.key: choice for op, choice in zip(waits, suspend_choice)}
        for order in _interleavings(ops):
            scenario = _simulate(order, suspends)
            if scenario is not None:
                yield scenario


def _simulate(
    order: Sequence[CsOp], suspends: Dict[TemplateKey, bool]
) -> Optional[Scenario]:
    """Replay one critical-section order; ``None`` if it is not realisable."""
    queue: Dict[Tuple[str, int, int], List[CsOp]] = {}
    waiting: Set[int] = set()
    skipped: Set[int] = set()
    notify_counts: Dict[TemplateKey, int] = {}
    # The effective sequence of (exit-providing op, entry-providing op) info:
    # each element is (op, entry_key) where entry_key is the template key at
    # which the op's thread (re-)enters the critical section.
    happenings: List[Tuple[CsOp, str]] = []  # (op, "entry" | "wake")
    wake_sync: List[Tuple[CsOp, TemplateKey]] = []

    for op in order:
        if op.tid in waiting:
            # The thread is suspended: this operation can only happen after a
            # wake, which another interleaving covers — unless the thread is
            # never woken, in which case the operation simply never happens.
            skipped.add(op.tid)
            continue
        if op.kind == "wait":
            happenings.append((op, "entry"))
            if suspends[op.key]:
                queue.setdefault(op.location(), []).append(op)
                waiting.add(op.tid)
        else:  # notify
            happenings.append((op, "entry"))
            woken = queue.pop(op.location(), [])
            notify_counts[op.key] = len(woken)
            for waiter in woken:
                if waiter.tid in skipped:
                    # A skipped operation would have had to run before this
                    # wake; that behaviour belongs to another interleaving.
                    return None
                waiting.discard(waiter.tid)
                happenings.append((waiter, "wake"))
                wake_sync.append((op, waiter.key))

    stuck = tuple(
        sorted(waiter.key for waiters in queue.values() for waiter in waiters)
    )

    # Synchronisation pairs: every critical-section entry (or wake re-entry)
    # synchronises with all previous exits by other threads.  The kind of
    # each happening ("entry" vs "wake") is kept so the asw anchors can
    # distinguish a wait's initial entry (the wait read itself) from its
    # wake re-entry (the events after the wait).
    cs_sync: List[Tuple[CsOp, str, CsOp, str]] = []
    for i, (later_op, later_kind) in enumerate(happenings):
        for (earlier_op, earlier_kind) in happenings[:i]:
            if earlier_op.tid != later_op.tid:
                cs_sync.append((earlier_op, earlier_kind, later_op, later_kind))

    return Scenario(
        suspends=tuple(sorted(suspends.items())),
        stuck=stuck,
        notify_counts=tuple(sorted(notify_counts.items())),
        cs_sync=tuple(cs_sync),
        wake_sync=tuple(wake_sync),
    )


def _truncate_path(path: LocalPath, stuck: Set[TemplateKey]) -> LocalPath:
    """Drop the statements a permanently suspended thread never executes."""
    stuck_here = [key for key in stuck if key[0] == path.tid]
    if not stuck_here:
        return path
    cutoff = min(position for (_tid, position) in stuck_here)
    kept: List[EventTemplate] = [
        template for template in path.templates if template.key[1] <= cutoff
    ]
    kept_keys = {t.key for t in kept}
    registers = tuple(
        (name, binding)
        for name, binding in path.registers
        if binding[0] == "const" or binding[1] in kept_keys
    )
    constraints = tuple(c for c in path.constraints if c.source in kept_keys)
    return LocalPath(
        tid=path.tid,
        templates=tuple(kept),
        constraints=constraints,
        registers=registers,
    )


def _apply_scenario(
    paths: Sequence[LocalPath], scenario: Scenario
) -> Tuple[LocalPath, ...]:
    """Specialise the paths to one scenario: truncation, constraints, counts."""
    stuck = set(scenario.stuck)
    suspends = dict(scenario.suspends)
    notify_counts = dict(scenario.notify_counts)

    new_paths: List[LocalPath] = []
    for path in paths:
        path = _truncate_path(path, stuck)
        extra_constraints: List[PathConstraint] = []
        registers = dict(path.registers)
        for template in path.templates:
            if template.wait_expected is not None and template.key in suspends:
                extra_constraints.append(
                    PathConstraint(
                        source=template.key,
                        equal=suspends[template.key],
                        constant=template.wait_expected,
                    )
                )
            if template.kind == "notify" and template.dest is not None:
                count = notify_counts.get(template.key)
                if count is not None:
                    registers[template.dest] = ("const", count)
        new_paths.append(
            LocalPath(
                tid=path.tid,
                templates=path.templates,
                constraints=path.constraints + tuple(extra_constraints),
                registers=tuple(sorted(registers.items())),
            )
        )
    return tuple(new_paths)


def _anchor_eids(
    pre_eids: Dict[TemplateKey, int],
    paths: Sequence[LocalPath],
) -> Tuple[Dict[int, List[Tuple[int, int]]], Dict[TemplateKey, int]]:
    """Per-thread (position, eid) lists of memory events, plus key → eid."""
    per_thread: Dict[int, List[Tuple[int, int]]] = {}
    for path in paths:
        events = [
            (template.key[1], pre_eids[template.key])
            for template in path.templates
            if template.is_memory_event and template.key in pre_eids
        ]
        per_thread[path.tid] = sorted(events)
    return per_thread, dict(pre_eids)


def _asw_edges(
    scenario: Scenario,
    pre_eids: Dict[TemplateKey, int],
    paths: Sequence[LocalPath],
) -> List[Tuple[int, int]]:
    """The additional-synchronizes-with edges of the corrected §7 semantics."""
    per_thread, _ = _anchor_eids(pre_eids, paths)

    def last_event_at_or_before(tid: int, position: int) -> Optional[int]:
        candidates = [eid for pos, eid in per_thread.get(tid, []) if pos <= position]
        return candidates[-1] if candidates else None

    def first_event_at_or_after(tid: int, position: int) -> Optional[int]:
        candidates = [eid for pos, eid in per_thread.get(tid, []) if pos >= position]
        return candidates[0] if candidates else None

    def exit_anchor(op: CsOp, kind: str) -> Optional[int]:
        if op.kind == "wait":
            return pre_eids.get(op.key)
        return last_event_at_or_before(op.tid, op.position)

    def entry_anchor(op: CsOp, kind: str) -> Optional[int]:
        if op.kind == "wait":
            if kind == "wake":
                # The wake re-entry happens after the wait read: it orders
                # previous exits before the thread's subsequent events only.
                return first_event_at_or_after(op.tid, op.position + 1)
            return pre_eids.get(op.key)
        return first_event_at_or_after(op.tid, op.position)

    edges: List[Tuple[int, int]] = []
    for earlier, earlier_kind, later, later_kind in scenario.cs_sync:
        src = exit_anchor(earlier, earlier_kind)
        dst = entry_anchor(later, later_kind)
        if src is not None and dst is not None and src != dst:
            edges.append((src, dst))
    # A notify's wake synchronises the notifier with everything the woken
    # thread does after its wait.
    for notifier, wait_key in scenario.wake_sync:
        src = exit_anchor(notifier, "entry")
        wait_tid, wait_pos = wait_key
        dst = first_event_at_or_after(wait_tid, wait_pos + 1)
        if src is not None and dst is not None and src != dst:
            edges.append((src, dst))
    return edges


def wait_notify_ground_executions(
    program: Program,
    corrected: bool = True,
    collapse_value_profiles: bool = False,
) -> Iterator[GroundExecution]:
    """Concrete candidate executions of a wait/notify program.

    With ``corrected=True`` the critical-section ordering contributes
    ``additional-synchronizes-with`` edges; with ``corrected=False`` it does
    not (the uncorrected ES2019 reading).  ``collapse_value_profiles``
    behaves as in :func:`repro.lang.enumeration.ground_candidates`.
    """
    init_events = program_init_events(program)
    for paths in program_paths(program):
        for scenario in _scenarios(paths):
            specialised = _apply_scenario(paths, scenario)
            pre = build_pre_execution(program, specialised, init_events=init_events)
            if corrected:
                edges = _asw_edges(scenario, pre.eid_of, specialised)
                if edges:
                    # Only the asw component differs; reuse everything else
                    # (eid assignment, sb, templates) from the first build.
                    pre = replace(pre, asw=Relation(edges))
            yield from ground_candidates(
                pre, collapse_value_profiles=collapse_value_profiles
            )


def wait_notify_allowed_outcomes(
    program: Program,
    corrected: bool = True,
    model: JsModel = FINAL_MODEL,
) -> List[Outcome]:
    """The outcomes allowed by ``model`` under the chosen §7 semantics."""
    found: List[Outcome] = []
    seen = set()
    for ground in wait_notify_ground_executions(
        program, corrected=corrected, collapse_value_profiles=True
    ):
        key = tuple(sorted(ground.outcome.items()))
        if key in seen:
            continue
        if exists_valid_total_order(ground.execution, model) is not None:
            seen.add(key)
            found.append(ground.outcome)
    return found


def wait_notify_outcome_allowed(
    program: Program,
    spec: Outcome,
    corrected: bool = True,
    model: JsModel = FINAL_MODEL,
) -> bool:
    """Is an outcome matching ``spec`` observable under the chosen semantics?"""
    for ground in wait_notify_ground_executions(
        program, corrected=corrected, collapse_value_profiles=True
    ):
        if not outcome_matches(ground.outcome, spec):
            continue
        if exists_valid_total_order(ground.execution, model) is not None:
            return True
    return False
