"""Abstract syntax of the JavaScript litmus-test fragment.

The paper works with a restricted fragment of JavaScript (§3): a fixed
number of threads, each performing shared-memory accesses and simple
control flow over an already-initialised SharedArrayBuffer.  The AST here
covers exactly that fragment:

* non-atomic loads and stores through typed arrays (``x[i]``, ``x[i] = v``),
* SeqCst atomics (``Atomics.load``, ``Atomics.store``),
* read-modify-writes (``Atomics.exchange``, ``Atomics.add``),
* unaligned non-atomic DataView accesses,
* equality-guarded conditionals (``if (r == c) { … }``),
* thread-suspension (``Atomics.wait`` / ``Atomics.notify``, §7).

Statements are immutable so thread continuations can be hashed by the
interpreter and enumerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

from .memory import DataViewAccessor, SharedArrayBuffer, TypedArrayView


@dataclass(frozen=True)
class Register:
    """A thread-local register (``r0``, ``r1``, …)."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Register({self.name!r})"


Value = Union[int, Register]
"""A source operand: a literal or the current value of a register."""


@dataclass(frozen=True)
class TypedAccess:
    """An access of one element of a typed array: ``view[index]``."""

    view: TypedArrayView
    index: int

    @property
    def block(self) -> str:
        return self.view.block

    def byte_range(self) -> range:
        return self.view.byte_range(self.index)

    @property
    def width(self) -> int:
        return self.view.width

    @property
    def tearfree(self) -> bool:
        return self.view.tearfree

    @property
    def supports_atomics(self) -> bool:
        return self.view.supports_atomics

    def encode(self, value: int) -> Tuple[int, ...]:
        return self.view.encode(value)

    def decode(self, data: Tuple[int, ...]) -> int:
        return self.view.decode(data)

    def describe(self) -> str:
        return f"{self.view.name}[{self.index}]"


@dataclass(frozen=True)
class DataViewAccess:
    """An unaligned DataView access of ``width`` bytes at ``byte_offset``."""

    view: DataViewAccessor
    byte_offset: int
    width: int

    @property
    def block(self) -> str:
        return self.view.block

    def byte_range(self) -> range:
        return self.view.byte_range(self.byte_offset, self.width)

    @property
    def tearfree(self) -> bool:
        return False

    @property
    def supports_atomics(self) -> bool:
        return False

    def encode(self, value: int) -> Tuple[int, ...]:
        return self.view.encode(value, self.width)

    def decode(self, data: Tuple[int, ...]) -> int:
        return self.view.decode(data)

    def describe(self) -> str:
        hi = self.byte_offset + self.width - 1
        return f"{self.view.name}.bytes[{self.byte_offset}..{hi}]"


Access = Union[TypedAccess, DataViewAccess]


class Statement:
    """Base class of all litmus-fragment statements."""

    __slots__ = ()


@dataclass(frozen=True)
class Store(Statement):
    """``access = value`` or ``Atomics.store(access, value)``."""

    access: Access
    value: Value
    atomic: bool = False

    def __post_init__(self) -> None:
        if self.atomic and not self.access.supports_atomics:
            raise ValueError("atomic store through a non-atomic view")

    def describe(self) -> str:
        value = self.value.name if isinstance(self.value, Register) else self.value
        if self.atomic:
            return f"Atomics.store({self.access.describe()}, {value})"
        return f"{self.access.describe()} = {value}"


@dataclass(frozen=True)
class Load(Statement):
    """``dest = access`` or ``dest = Atomics.load(access)``."""

    dest: Register
    access: Access
    atomic: bool = False

    def __post_init__(self) -> None:
        if self.atomic and not self.access.supports_atomics:
            raise ValueError("atomic load through a non-atomic view")

    def describe(self) -> str:
        if self.atomic:
            return f"{self.dest.name} = Atomics.load({self.access.describe()})"
        return f"{self.dest.name} = {self.access.describe()}"


@dataclass(frozen=True)
class Exchange(Statement):
    """``dest = Atomics.exchange(access, value)`` — a SeqCst read-modify-write."""

    dest: Register
    access: Access
    value: Value

    def __post_init__(self) -> None:
        if not self.access.supports_atomics:
            raise ValueError("Atomics.exchange through a non-atomic view")

    def describe(self) -> str:
        value = self.value.name if isinstance(self.value, Register) else self.value
        return f"{self.dest.name} = Atomics.exchange({self.access.describe()}, {value})"


@dataclass(frozen=True)
class AtomicAdd(Statement):
    """``dest = Atomics.add(access, value)`` — a SeqCst fetch-and-add."""

    dest: Register
    access: Access
    value: int

    def __post_init__(self) -> None:
        if not self.access.supports_atomics:
            raise ValueError("Atomics.add through a non-atomic view")

    def describe(self) -> str:
        return f"{self.dest.name} = Atomics.add({self.access.describe()}, {self.value})"


@dataclass(frozen=True)
class IfEq(Statement):
    """``if (register == constant) { then } else { otherwise }``."""

    register: Register
    constant: int
    then: Tuple[Statement, ...] = ()
    otherwise: Tuple[Statement, ...] = ()

    def describe(self) -> str:
        return f"if ({self.register.name} == {self.constant}) {{ … }}"


@dataclass(frozen=True)
class Wait(Statement):
    """``Atomics.wait(access, expected)`` — §7 thread suspension.

    Performs a SeqCst read of the location inside the wait-queue critical
    section; suspends the agent if the value read equals ``expected``.  The
    (string) result of the real API is ignored in this fragment.
    """

    access: Access
    expected: int

    def __post_init__(self) -> None:
        if not self.access.supports_atomics:
            raise ValueError("Atomics.wait through a non-atomic view")

    def describe(self) -> str:
        return f"Atomics.wait({self.access.describe()}, {self.expected})"


@dataclass(frozen=True)
class Notify(Statement):
    """``dest = Atomics.notify(access)`` — wake all waiters on the location."""

    access: Access
    dest: Optional[Register] = None

    def __post_init__(self) -> None:
        if not self.access.supports_atomics:
            raise ValueError("Atomics.notify through a non-atomic view")

    def describe(self) -> str:
        prefix = f"{self.dest.name} = " if self.dest else ""
        return f"{prefix}Atomics.notify({self.access.describe()})"


@dataclass(frozen=True)
class Thread:
    """One Web Worker of a litmus test: a straight-line statement list."""

    statements: Tuple[Statement, ...]
    name: Optional[str] = None

    def describe(self) -> str:
        return "; ".join(s.describe() for s in self.statements)


@dataclass(frozen=True)
class Program:
    """A complete litmus program of the restricted fragment.

    ``buffers`` are the SharedArrayBuffers (each contributes one ``Init``
    event ranging over the whole buffer); ``threads`` are the agents.
    Register names are qualified per thread in outcomes: ``"0:r0"`` is
    register ``r0`` of thread 0 (the litmus-tool convention).
    """

    name: str
    buffers: Tuple[SharedArrayBuffer, ...]
    threads: Tuple[Thread, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.buffers:
            raise ValueError("a program needs at least one SharedArrayBuffer")
        if not self.threads:
            raise ValueError("a program needs at least one thread")
        names = [b.name for b in self.buffers]
        if len(names) != len(set(names)):
            raise ValueError("duplicate buffer names")

    @property
    def thread_count(self) -> int:
        return len(self.threads)

    def qualified(self, tid: int, register: Register) -> str:
        """The outcome key for ``register`` of thread ``tid``."""
        return f"{tid}:{register.name}"

    def describe(self) -> str:
        lines = [f"program {self.name}"]
        for buffer in self.buffers:
            lines.append(f"  {buffer.name} = new SharedArrayBuffer({buffer.byte_length})")
        for tid, thread in enumerate(self.threads):
            title = thread.name or f"Thread {tid}"
            lines.append(f"  {title}: {thread.describe()}")
        return "\n".join(lines)

    def uses_wait_notify(self) -> bool:
        """True iff any thread suspends or notifies (needs the §7 semantics)."""

        def scan(statements: Sequence[Statement]) -> bool:
            for stmt in statements:
                if isinstance(stmt, (Wait, Notify)):
                    return True
                if isinstance(stmt, IfEq) and (
                    scan(stmt.then) or scan(stmt.otherwise)
                ):
                    return True
            return False

        return any(scan(thread.statements) for thread in self.threads)


Outcome = Dict[str, int]
"""A program outcome: the final value of each assigned, qualified register."""


def outcome_matches(outcome: Outcome, spec: Outcome) -> bool:
    """True iff ``spec`` is a sub-assignment of ``outcome``."""
    return all(outcome.get(key) == value for key, value in spec.items())
