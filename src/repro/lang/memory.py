"""SharedArrayBuffers, typed arrays and DataViews.

JavaScript programs never access a SharedArrayBuffer directly: they go
through a *typed array* (a fixed element width, aligned, tear-free for the
integer widths up to 32 bits) or a *DataView* (byte-addressed, possibly
unaligned, never tear-free, non-atomic only).  §2 of the paper describes
both; this module models exactly the part of their semantics the memory
model sees — how an access maps to a block, a starting byte index, a byte
width and a tear-free flag, and how element values convert to and from
little-endian bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class SharedArrayBuffer:
    """A zero-initialised linear buffer of bytes shared between agents."""

    name: str
    byte_length: int

    def __post_init__(self) -> None:
        if self.byte_length <= 0:
            raise ValueError("SharedArrayBuffer length must be positive")

    @property
    def block(self) -> str:
        """The abstract block address used by memory-model events."""
        return self.name


@dataclass(frozen=True)
class ElementType:
    """An element type of a typed array (Int8, Uint16, Int32, …)."""

    name: str
    width: int
    signed: bool

    def to_bytes(self, value: int) -> Tuple[int, ...]:
        """Encode ``value`` as little-endian bytes, wrapping modulo 2^(8·width)."""
        mask = (1 << (8 * self.width)) - 1
        return tuple((value & mask).to_bytes(self.width, "little"))

    def from_bytes(self, data: Tuple[int, ...]) -> int:
        """Decode little-endian bytes into an element value."""
        if len(data) != self.width:
            raise ValueError(
                f"{self.name}: expected {self.width} bytes, got {len(data)}"
            )
        return int.from_bytes(bytes(data), "little", signed=self.signed)


INT8 = ElementType("Int8", 1, signed=True)
UINT8 = ElementType("Uint8", 1, signed=False)
INT16 = ElementType("Int16", 2, signed=True)
UINT16 = ElementType("Uint16", 2, signed=False)
INT32 = ElementType("Int32", 4, signed=True)
UINT32 = ElementType("Uint32", 4, signed=False)
BIGINT64 = ElementType("BigInt64", 8, signed=True)
BIGUINT64 = ElementType("BigUint64", 8, signed=False)

# lint: allow(mutable-state) — read-only name table of the eight element
# types above, never mutated after import.
ELEMENT_TYPES = {
    t.name: t
    for t in (INT8, UINT8, INT16, UINT16, INT32, UINT32, BIGINT64, BIGUINT64)
}

# Integer typed arrays of width ≤ 4 bytes are guaranteed tear-free by the
# JavaScript sequential semantics (§6.4); 64-bit accesses may tear.
_TEARFREE_MAX_WIDTH = 4


@dataclass(frozen=True)
class TypedArrayView:
    """A typed-array wrapper around a SharedArrayBuffer.

    ``name`` identifies the view in programs (``x``, ``b``, …);
    ``byte_offset`` allows several views with different alignment over the
    same buffer, which is how mixed-size and partially overlapping accesses
    arise.
    """

    name: str
    buffer: SharedArrayBuffer
    element: ElementType
    byte_offset: int = 0

    def __post_init__(self) -> None:
        if self.byte_offset < 0:
            raise ValueError("byte offset must be non-negative")
        if self.byte_offset % self.element.width != 0:
            raise ValueError(
                "typed array byte offset must be element-aligned "
                f"({self.byte_offset} % {self.element.width} != 0)"
            )
        if self.byte_offset >= self.buffer.byte_length:
            raise ValueError("typed array byte offset beyond buffer end")

    @property
    def block(self) -> str:
        """The block accessed by this view."""
        return self.buffer.block

    @property
    def width(self) -> int:
        """The byte width of one element."""
        return self.element.width

    @property
    def length(self) -> int:
        """The number of whole elements addressable through this view."""
        return (self.buffer.byte_length - self.byte_offset) // self.element.width

    @property
    def tearfree(self) -> bool:
        """Whether accesses through this view are guaranteed tear-free."""
        return self.element.width <= _TEARFREE_MAX_WIDTH

    @property
    def supports_atomics(self) -> bool:
        """Atomics operations require an integer typed array."""
        return True

    def byte_index(self, index: int) -> int:
        """The absolute starting byte of element ``index`` within the block."""
        if not 0 <= index < self.length:
            raise IndexError(
                f"index {index} out of bounds for view {self.name!r} "
                f"of length {self.length}"
            )
        return self.byte_offset + index * self.element.width

    def byte_range(self, index: int) -> range:
        """The byte footprint of element ``index``."""
        start = self.byte_index(index)
        return range(start, start + self.element.width)

    def encode(self, value: int) -> Tuple[int, ...]:
        """Encode an element value as bytes."""
        return self.element.to_bytes(value)

    def decode(self, data: Tuple[int, ...]) -> int:
        """Decode bytes into an element value."""
        return self.element.from_bytes(data)


@dataclass(frozen=True)
class DataViewAccessor:
    """A DataView over a SharedArrayBuffer: unaligned, non-atomic, tearing.

    DataView accesses specify an explicit byte offset and width per access;
    they are the only way JavaScript produces unaligned shared-memory
    accesses (§2), and they are never tear-free.
    """

    name: str
    buffer: SharedArrayBuffer

    @property
    def block(self) -> str:
        """The block accessed by this view."""
        return self.buffer.block

    @property
    def tearfree(self) -> bool:
        """DataView accesses are never tear-free."""
        return False

    @property
    def supports_atomics(self) -> bool:
        """DataViews offer no atomic operations."""
        return False

    def byte_range(self, byte_offset: int, width: int) -> range:
        """The footprint of an access of ``width`` bytes at ``byte_offset``."""
        if width <= 0:
            raise ValueError("access width must be positive")
        if byte_offset < 0 or byte_offset + width > self.buffer.byte_length:
            raise IndexError(
                f"DataView access [{byte_offset}, {byte_offset + width}) out of "
                f"bounds for buffer of {self.buffer.byte_length} bytes"
            )
        return range(byte_offset, byte_offset + width)

    def encode(self, value: int, width: int) -> Tuple[int, ...]:
        """Encode an unsigned value as ``width`` little-endian bytes."""
        mask = (1 << (8 * width)) - 1
        return tuple((value & mask).to_bytes(width, "little"))

    def decode(self, data: Tuple[int, ...]) -> int:
        """Decode little-endian bytes as an unsigned value."""
        return int.from_bytes(bytes(data), "little", signed=False)


def new_shared_array_buffer(name: str, byte_length: int) -> SharedArrayBuffer:
    """``new SharedArrayBuffer(byte_length)``."""
    return SharedArrayBuffer(name=name, byte_length=byte_length)


def new_typed_array(
    name: str,
    buffer: SharedArrayBuffer,
    element: ElementType = INT32,
    byte_offset: int = 0,
) -> TypedArrayView:
    """``new Int32Array(buffer)`` and friends."""
    return TypedArrayView(
        name=name, buffer=buffer, element=element, byte_offset=byte_offset
    )


def new_data_view(name: str, buffer: SharedArrayBuffer) -> DataViewAccessor:
    """``new DataView(buffer)``."""
    return DataViewAccessor(name=name, buffer=buffer)
