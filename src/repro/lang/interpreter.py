"""A sequentially consistent reference interpreter (the SC oracle).

SC-DRF (§3.2) compares the outcomes the memory model allows against the
outcomes obtainable from "a sequential interleaving of the program's
accesses".  This module provides that oracle: it exhaustively interleaves
whole statements of the litmus fragment against a concrete, strongly
consistent memory and collects every reachable final register assignment.

``Atomics.wait`` / ``Atomics.notify`` are interpreted with a per-location
wait queue, which also makes this interpreter the reference for the
intuitive behaviour of the §7 examples (Fig. 13): interleavings in which a
waiter suspends and is never notified are reported as *stuck*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .ast import (
    AtomicAdd,
    Exchange,
    IfEq,
    Load,
    Notify,
    Outcome,
    Program,
    Register,
    Statement,
    Store,
    Wait,
)

_Memory = Tuple[Tuple[str, Tuple[int, ...]], ...]
_Registers = Tuple[Tuple[str, int], ...]
_Continuation = Tuple[Statement, ...]
_WaitKey = Tuple[str, int, int]


@dataclass(frozen=True)
class _State:
    """One interpreter state: memory, per-thread continuations, registers, waiters."""

    memory: _Memory
    continuations: Tuple[_Continuation, ...]
    registers: Tuple[_Registers, ...]
    waiting: Tuple[Optional[_WaitKey], ...]


@dataclass(frozen=True)
class InterpreterResult:
    """The outcomes of exhaustive SC interpretation of a program."""

    outcomes: Tuple[Outcome, ...]
    stuck_outcomes: Tuple[Outcome, ...]

    def all_outcomes(self) -> Tuple[Outcome, ...]:
        """Terminated and stuck outcomes together."""
        return self.outcomes + self.stuck_outcomes


def _initial_state(program: Program) -> _State:
    memory = tuple(
        (buffer.block, (0,) * buffer.byte_length) for buffer in program.buffers
    )
    continuations = tuple(tuple(t.statements) for t in program.threads)
    registers = tuple(() for _ in program.threads)
    waiting = tuple(None for _ in program.threads)
    return _State(memory, continuations, registers, waiting)


def _memory_dict(memory: _Memory) -> Dict[str, List[int]]:
    return {block: list(data) for block, data in memory}


def _memory_tuple(memory: Dict[str, List[int]]) -> _Memory:
    return tuple(sorted((block, tuple(data)) for block, data in memory.items()))


def _registers_dict(registers: _Registers) -> Dict[str, int]:
    return dict(registers)


def _registers_tuple(registers: Dict[str, int]) -> _Registers:
    return tuple(sorted(registers.items()))


def _read(memory: Dict[str, List[int]], block: str, rng: range) -> Tuple[int, ...]:
    return tuple(memory[block][k] for k in rng)


def _write(
    memory: Dict[str, List[int]], block: str, rng: range, data: Tuple[int, ...]
) -> None:
    for k, byte in zip(rng, data):
        memory[block][k] = byte


def _operand_value(value, registers: Dict[str, int]) -> int:
    if isinstance(value, Register):
        if value.name not in registers:
            raise KeyError(f"register {value.name!r} used before assignment")
        return registers[value.name]
    return int(value)


def _step_thread(
    program: Program, state: _State, tid: int
) -> _State:
    """Execute the next statement of thread ``tid`` atomically."""
    memory = _memory_dict(state.memory)
    registers = [_registers_dict(r) for r in state.registers]
    continuations = [list(c) for c in state.continuations]
    waiting = list(state.waiting)

    stmt = continuations[tid].pop(0)
    regs = registers[tid]

    if isinstance(stmt, Store):
        rng = stmt.access.byte_range()
        value = _operand_value(stmt.value, regs)
        _write(memory, stmt.access.block, rng, stmt.access.encode(value))
    elif isinstance(stmt, Load):
        rng = stmt.access.byte_range()
        data = _read(memory, stmt.access.block, rng)
        regs[stmt.dest.name] = stmt.access.decode(data)
    elif isinstance(stmt, Exchange):
        rng = stmt.access.byte_range()
        # The operand is evaluated before the register is overwritten.
        value = _operand_value(stmt.value, regs)
        data = _read(memory, stmt.access.block, rng)
        regs[stmt.dest.name] = stmt.access.decode(data)
        _write(memory, stmt.access.block, rng, stmt.access.encode(value))
    elif isinstance(stmt, AtomicAdd):
        rng = stmt.access.byte_range()
        data = _read(memory, stmt.access.block, rng)
        old = stmt.access.decode(data)
        regs[stmt.dest.name] = old
        _write(memory, stmt.access.block, rng, stmt.access.encode(old + stmt.value))
    elif isinstance(stmt, IfEq):
        if stmt.register.name not in regs:
            raise KeyError(
                f"thread {tid}: branch on unassigned register {stmt.register.name!r}"
            )
        branch = stmt.then if regs[stmt.register.name] == stmt.constant else stmt.otherwise
        continuations[tid] = list(branch) + continuations[tid]
    elif isinstance(stmt, Wait):
        rng = stmt.access.byte_range()
        data = _read(memory, stmt.access.block, rng)
        if stmt.access.decode(data) == stmt.expected:
            waiting[tid] = (stmt.access.block, rng.start, rng.stop)
    elif isinstance(stmt, Notify):
        rng = stmt.access.byte_range()
        key = (stmt.access.block, rng.start, rng.stop)
        woken = 0
        for other in range(len(waiting)):
            if waiting[other] == key:
                waiting[other] = None
                woken += 1
        if stmt.dest is not None:
            regs[stmt.dest.name] = woken
    else:  # pragma: no cover - defensive
        raise ValueError(f"unsupported statement {stmt!r}")

    return _State(
        memory=_memory_tuple(memory),
        continuations=tuple(tuple(c) for c in continuations),
        registers=tuple(_registers_tuple(r) for r in registers),
        waiting=tuple(waiting),
    )


def _qualified_outcome(program: Program, state: _State) -> Outcome:
    outcome: Outcome = {}
    for tid in range(program.thread_count):
        for name, value in state.registers[tid]:
            outcome[f"{tid}:{name}"] = value
    return outcome


def interpret(program: Program) -> InterpreterResult:
    """Exhaustively enumerate sequentially consistent behaviours of ``program``."""
    initial = _initial_state(program)
    seen: Set[_State] = set()
    outcomes: Dict[Tuple[Tuple[str, int], ...], Outcome] = {}
    stuck: Dict[Tuple[Tuple[str, int], ...], Outcome] = {}

    stack = [initial]
    while stack:
        state = stack.pop()
        if state in seen:
            continue
        seen.add(state)
        runnable = [
            tid
            for tid in range(program.thread_count)
            if state.continuations[tid] and state.waiting[tid] is None
        ]
        if not runnable:
            outcome = _qualified_outcome(program, state)
            key = tuple(sorted(outcome.items()))
            if any(state.continuations[t] for t in range(program.thread_count)):
                stuck[key] = outcome
            else:
                outcomes[key] = outcome
            continue
        for tid in runnable:
            stack.append(_step_thread(program, state, tid))

    return InterpreterResult(
        outcomes=tuple(outcomes.values()), stuck_outcomes=tuple(stuck.values())
    )


def sc_outcomes(program: Program) -> Tuple[Outcome, ...]:
    """The terminated outcomes of every sequential interleaving of ``program``."""
    return interpret(program).outcomes
