"""Enumerating candidate executions and allowed behaviours of litmus programs.

Given a :class:`~repro.lang.ast.Program`, this module ties the two layers of
§2.1 together:

1. the thread-local semantics (:mod:`repro.lang.thread_semantics`) provides
   the control-flow paths and symbolic events;
2. for every path combination we enumerate the ``reads-byte-from``
   justifications (each byte of each read is assigned a covering write),
   resolve the symbolic values, discard assignments that contradict the
   branch conditions actually taken, and
3. ask the axiomatic model (:mod:`repro.core.js_model`) whether some
   ``total-order`` witness makes the resulting candidate execution valid.

An *outcome* (final register values) is **allowed** when at least one valid
candidate execution produces it — exactly the observability criterion of the
specification.  The same machinery supports the program-level notions used
by §3.2: data-race freedom and the SC-DRF comparison against the sequential
interleaving oracle of :mod:`repro.lang.interpreter`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..analyze import races as analyze
from ..analyze import symmetry as _symmetry
from ..core.events import Event, EventSet, make_init_event
from ..core.execution import CandidateExecution, RbfTriple
from ..core.groundcore import (
    ReadGroup,
    SignatureInterner,
    enumerate_assignments,
    restrict_choices,
)
from ..core.js_model import FINAL_MODEL, JsModel, exists_valid_total_order
from ..core.data_race import data_races
from ..core.relations import Relation
from .ast import Outcome, Program, outcome_matches
from .interpreter import sc_outcomes
from .thread_semantics import (
    EventTemplate,
    LocalPath,
    TemplateKey,
    program_paths,
)


_MISSING = object()


class EnumerationBudgetExceeded(RuntimeError):
    """Raised when a program's candidate-execution space exceeds the budget."""


@dataclass(frozen=True)
class PreExecution:
    """A path combination with event identifiers assigned, values still symbolic.

    The helper indexes (templates by key, branch constraints by source,
    statically-known write values) are computed lazily and cached on the
    instance: they are shared by every ``reads-byte-from`` assignment tried
    for this path combination instead of being rebuilt per candidate.
    """

    program: Program
    paths: Tuple[LocalPath, ...]
    init_events: Tuple[Event, ...]
    templates: Tuple[EventTemplate, ...]
    eid_of: Dict[TemplateKey, int]
    sb: Relation
    asw: Relation

    def _lazy(self, attr: str, compute):
        cached = getattr(self, attr, _MISSING)
        if cached is _MISSING:
            cached = compute()
            object.__setattr__(self, attr, cached)
        return cached

    def memory_templates(self) -> Tuple[EventTemplate, ...]:
        return self._lazy(
            "_memory_templates",
            lambda: tuple(t for t in self.templates if t.is_memory_event),
        )

    def templates_by_key(self) -> Dict[TemplateKey, EventTemplate]:
        """Every template (memory or not) keyed by template key."""
        return self._lazy(
            "_templates_by_key", lambda: {t.key: t for t in self.templates}
        )

    def memory_templates_by_key(self) -> Dict[TemplateKey, EventTemplate]:
        """The memory-event templates keyed by template key."""
        return self._lazy(
            "_memory_templates_by_key",
            lambda: {t.key: t for t in self.memory_templates()},
        )

    def constraints_by_source(self) -> Dict[TemplateKey, Tuple]:
        """The branch constraints of every path, grouped by source template."""

        def compute():
            grouped: Dict[TemplateKey, List] = {}
            for path in self.paths:
                for constraint in path.constraints:
                    grouped.setdefault(constraint.source, []).append(constraint)
            return {key: tuple(cs) for key, cs in grouped.items()}

        return self._lazy("_constraints_by_source", compute)

    def sb_asw_sound(self) -> bool:
        """The witness-independent well-formedness conditions, once per pre.

        ``sb`` must relate same-thread events and be acyclic; ``asw`` must
        mention only known events.  Every *other* well-formedness condition
        concerns the ``rbf`` witness, which :func:`ground_candidates`
        guarantees by construction (each read byte is justified exactly
        once, by a covering same-block writer other than the reader, with
        the value copied from the writer), so executions built here are
        well-formed exactly when this pre-level check passes.
        """

        def compute():
            eids = {init.eid for init in self.init_events}
            eids.update(self.eid_of.values())
            tid_of = {
                self.eid_of[t.key]: t.tid for t in self.memory_templates()
            }
            for (a, b) in self.sb:
                if a not in eids or b not in eids:
                    return False
                if tid_of.get(a) != tid_of.get(b):
                    return False
            if not self.sb.is_acyclic():
                return False
            for (a, b) in self.asw:
                if a not in eids or b not in eids:
                    return False
            return True

        return self._lazy("_sb_asw_sound", compute)

    def init_overlap_relation(self) -> Relation:
        """The ``init-overlap`` relation, shared by every candidate.

        Event footprints are fixed by the templates (grounding only changes
        byte values), and every access lies inside its buffer, so each Init
        event overlaps exactly the memory events of its block.
        """

        def compute():
            pairs = []
            for init in self.init_events:
                for template in self.memory_templates():
                    if template.block == init.block:
                        pairs.append((init.eid, self.eid_of[template.key]))
            return Relation(pairs)

        return self._lazy("_init_overlap", compute)

    def static_write_state(self) -> Tuple[Dict[int, Tuple[int, ...]], Dict[int, int]]:
        """Byte values (and start offsets) of writes known before grounding.

        Init events and ``const``-valued stores have fixed byte values no
        matter which ``reads-byte-from`` assignment is chosen; they seed the
        incremental value resolution that prunes assignments against branch
        constraints during enumeration.
        """

        def compute():
            known_bytes = {init.eid: init.writes for init in self.init_events}
            known_start = {init.eid: init.index for init in self.init_events}
            for template in self.memory_templates():
                if not template.writes_memory:
                    continue
                spec = template.write_value
                if spec is not None and spec.kind == "const":
                    eid = self.eid_of[template.key]
                    known_bytes[eid] = template.encode(spec.payload)
                    known_start[eid] = template.byte_range().start
            return known_bytes, known_start

        return self._lazy("_static_write_state", compute)


@dataclass(frozen=True)
class GroundExecution:
    """A fully concrete candidate execution (no ``tot`` yet) plus its outcome.

    ``multiplicity`` counts how many ``reads-byte-from`` assignments this
    execution stands for.  It is 1 unless the enumeration ran with
    ``collapse_value_profiles=True``, in which case assignments that are
    *verdict-equivalent* — identical byte values and event-level rf
    signature, differing only in which writer of an interchangeable byte
    class justified a byte (see :func:`_byte_writer_classes`) — collapse
    onto their first member, whose multiplicity is bumped **as the later
    duplicates are enumerated**: the count is only final once the
    pre-execution's enumeration has been consumed past them.
    """

    execution: CandidateExecution
    outcome: Outcome
    pre: PreExecution
    # Excluded from the generated __eq__/__hash__: the count is bumped in
    # place on the (already-yielded) representative as later duplicates are
    # enumerated, and identity-changing mutation must not reach equality.
    multiplicity: int = field(default=1, compare=False)


def program_init_events(program: Program) -> Tuple[Event, ...]:
    """The per-buffer ``Init`` events (eids ``0..len(buffers)-1``).

    These depend only on the program's buffers, never on the chosen paths,
    so they are built once and shared across every path combination.
    """
    return tuple(
        make_init_event(buffer.block, buffer.byte_length, eid=eid)
        for eid, buffer in enumerate(program.buffers)
    )


def build_pre_execution(
    program: Program,
    paths: Sequence[LocalPath],
    extra_asw: Sequence[Tuple[int, int]] = (),
    init_events: Optional[Tuple[Event, ...]] = None,
) -> PreExecution:
    """Assign event identifiers to one combination of per-thread paths.

    ``extra_asw`` gives additional-synchronizes-with edges *by event
    identifier*; event identifiers are assigned deterministically (Init
    events of the buffers first, then each thread's memory events in
    program order), so callers such as the wait/notify semantics can
    compute them with :func:`eid_assignment`.  ``init_events`` may pass a
    precomputed :func:`program_init_events` tuple to share across path
    combinations.
    """
    if init_events is None:
        init_events = program_init_events(program)
    next_eid = len(init_events)

    eid_of: Dict[TemplateKey, int] = {}
    templates: List[EventTemplate] = []
    sb_pairs: List[Tuple[int, int]] = []
    for path in paths:
        thread_eids: List[int] = []
        for template in path.templates:
            templates.append(template)
            if not template.is_memory_event:
                continue
            eid_of[template.key] = next_eid
            thread_eids.append(next_eid)
            next_eid += 1
        for i, a in enumerate(thread_eids):
            for b in thread_eids[i + 1:]:
                sb_pairs.append((a, b))

    return PreExecution(
        program=program,
        paths=tuple(paths),
        init_events=init_events,
        templates=tuple(templates),
        eid_of=eid_of,
        sb=Relation(sb_pairs),
        asw=Relation(extra_asw),
    )


def pre_executions(
    program: Program, extra_asw: Sequence[Tuple[int, int]] = ()
) -> Iterator[PreExecution]:
    """One :class:`PreExecution` per combination of per-thread control-flow paths."""
    init_events = program_init_events(program)
    for paths in program_paths(program):
        yield build_pre_execution(
            program, paths, extra_asw=extra_asw, init_events=init_events
        )


# ---------------------------------------------------------------------------
# grounding: reads-byte-from enumeration and value resolution
# ---------------------------------------------------------------------------


def _writers_by_byte(pre: PreExecution) -> Dict[Tuple[str, int], List[int]]:
    """Map each (block, byte location) to the eids of the events writing it."""
    writers: Dict[Tuple[str, int], List[int]] = {}
    for init in pre.init_events:
        for k in init.range_w:
            writers.setdefault((init.block, k), []).append(init.eid)
    for template in pre.memory_templates():
        if not template.writes_memory:
            continue
        eid = pre.eid_of[template.key]
        for k in template.byte_range():
            writers.setdefault((template.block, k), []).append(eid)
    return writers


def _resolve_values(
    pre: PreExecution, assignment: Dict[Tuple[str, int, int], int]
) -> Optional[Tuple[Dict[TemplateKey, Tuple[int, ...]], Dict[TemplateKey, Tuple[int, ...]]]]:
    """Resolve read and write byte values under a writer assignment.

    ``assignment`` maps ``(block, byte location, reader eid)`` to the writer
    eid chosen for that byte.  Returns ``(read_bytes, write_bytes)`` keyed by
    template key, or ``None`` if the value dependencies are cyclic (a store
    whose value depends on a load that reads from it — the out-of-thin-air
    corner we simply refuse to ground, mirroring §1.3).
    """
    write_bytes: Dict[int, Tuple[int, ...]] = {
        init.eid: init.writes for init in pre.init_events
    }
    write_start: Dict[int, int] = {init.eid: init.index for init in pre.init_events}
    read_bytes: Dict[TemplateKey, Tuple[int, ...]] = {}
    read_values: Dict[TemplateKey, int] = {}
    template_write_bytes: Dict[TemplateKey, Tuple[int, ...]] = {}

    templates = pre.memory_templates_by_key()
    for template in templates.values():
        if template.writes_memory:
            eid = pre.eid_of[template.key]
            write_start[eid] = template.byte_range().start

    pending = set(templates)
    progress = True
    while pending and progress:
        progress = False
        for key in list(pending):
            template = templates[key]
            eid = pre.eid_of[key]

            # Resolve this template's read value if possible.
            if template.reads_memory and key not in read_bytes:
                data: List[Optional[int]] = []
                complete = True
                for k in template.byte_range():
                    writer_eid = assignment[(template.block, k, eid)]
                    if writer_eid not in write_bytes:
                        complete = False
                        break
                    writer_data = write_bytes[writer_eid]
                    data.append(writer_data[k - write_start[writer_eid]])
                if complete:
                    resolved = tuple(int(b) for b in data)  # type: ignore[arg-type]
                    read_bytes[key] = resolved
                    read_values[key] = template.decode(resolved)
                    progress = True

            # Resolve this template's written bytes if possible.
            if template.writes_memory and key not in template_write_bytes:
                spec = template.write_value
                assert spec is not None
                resolved_bytes: Optional[Tuple[int, ...]] = None
                if spec.kind == "const":
                    resolved_bytes = template.encode(spec.payload)
                elif spec.kind == "copy":
                    assert spec.source is not None
                    if spec.source in read_values:
                        resolved_bytes = template.encode(read_values[spec.source])
                elif spec.kind == "add-read":
                    if key in read_values:
                        resolved_bytes = template.encode(
                            read_values[key] + spec.payload
                        )
                else:  # pragma: no cover - defensive
                    raise ValueError(f"unknown write value kind {spec.kind!r}")
                if resolved_bytes is not None:
                    template_write_bytes[key] = resolved_bytes
                    write_bytes[eid] = resolved_bytes
                    progress = True

            reads_done = (not template.reads_memory) or key in read_bytes
            writes_done = (not template.writes_memory) or key in template_write_bytes
            if reads_done and writes_done:
                pending.discard(key)

    if pending:
        return None
    return read_bytes, template_write_bytes


def _constraints_satisfied(
    pre: PreExecution, read_bytes: Dict[TemplateKey, Tuple[int, ...]]
) -> bool:
    """Check every branch condition of every chosen path."""
    templates = pre.templates_by_key()
    for path in pre.paths:
        for constraint in path.constraints:
            template = templates[constraint.source]
            value = template.decode(read_bytes[constraint.source])
            if constraint.equal and value != constraint.constant:
                return False
            if not constraint.equal and value == constraint.constant:
                return False
    return True


def _build_outcome(
    pre: PreExecution, read_bytes: Dict[TemplateKey, Tuple[int, ...]]
) -> Outcome:
    """The final register values along the chosen paths."""
    templates = pre.templates_by_key()
    outcome: Outcome = {}
    for path in pre.paths:
        for register, binding in path.registers:
            tag, payload = binding
            key = f"{path.tid}:{register}"
            if tag == "const":
                outcome[key] = payload  # type: ignore[assignment]
            else:
                template = templates[payload]  # type: ignore[index]
                outcome[key] = template.decode(read_bytes[payload])  # type: ignore[index]
    return outcome


def _build_execution(
    pre: PreExecution,
    assignment: Dict[Tuple[str, int, int], int],
    read_bytes: Dict[TemplateKey, Tuple[int, ...]],
    write_bytes: Dict[TemplateKey, Tuple[int, ...]],
) -> CandidateExecution:
    """Assemble the concrete candidate execution (without a ``tot`` witness)."""
    values_key = []
    rbf: Set[RbfTriple] = set()
    for template in pre.memory_templates():
        eid = pre.eid_of[template.key]
        reads = read_bytes.get(template.key, ()) if template.reads_memory else ()
        writes = write_bytes.get(template.key, ()) if template.writes_memory else ()
        values_key.append((tuple(reads), tuple(writes)))
        if template.reads_memory:
            block = template.block
            for k in template.byte_range():
                rbf.add((k, assignment[(block, k, eid)], eid))
    # Different writer assignments often resolve to the same byte values;
    # the (immutable) EventSet is deduplicated per pre-execution so repeated
    # value profiles share one set of Event objects and its eid index.
    eventset_memo: Dict = pre._lazy("_eventset_memo", dict)
    events_set = eventset_memo.get(tuple(values_key))
    if events_set is None:
        events: List[Event] = list(pre.init_events)
        for template, (reads, writes) in zip(pre.memory_templates(), values_key):
            byte_range = template.byte_range()
            events.append(
                Event(
                    eid=pre.eid_of[template.key],
                    tid=template.tid,
                    ord=template.mode,
                    block=template.block,
                    index=byte_range.start,
                    reads=reads,
                    writes=writes,
                    tearfree=template.tearfree,
                )
            )
        events_set = EventSet(tuple(events))
        eventset_memo[tuple(values_key)] = events_set
    # Shape-quotient sharing: all executions of this pre with the same
    # event-level rf signature share ONE derived-relation cache.  Every
    # entry that lands in it is a function of the rf signature alone
    # (sw/hb/init-overlap/unisize relations and the tot-independent shape
    # verdicts: footprints, modes and sb are template-fixed, byte values
    # never enter), keyed by the tot it was computed for, or keyed by the
    # full rbf (the per-witness verdict, whose HB-Consistency (3) clause
    # reads the byte-wise triples).  ``wf_structure`` is constant per pre:
    # the rbf built here satisfies the witness-dependent conditions by
    # construction, so only the pre-level sb/asw soundness can fail — and
    # it fails for every assignment alike.
    rbf_frozen = frozenset(rbf)
    rf_signature = frozenset((w, r) for (_k, w, r) in rbf_frozen)
    shape_caches: SignatureInterner = pre._lazy(
        "_shape_cache_memo", SignatureInterner
    )

    def build_shape_cache() -> Dict:
        shared = {"init_overlap": pre.init_overlap_relation()}
        if pre.sb_asw_sound():
            shared["wf_structure"] = True
        return shared

    shared_cache = shape_caches.intern(rf_signature, build_shape_cache)
    # Reuse the pre-execution's sb/asw Relation objects directly: they are
    # immutable and shared across every candidate of this path combination
    # (so their kernel caches are shared too).
    return CandidateExecution(
        events=events_set,
        sb=pre.sb,
        asw=pre.asw,
        rbf=rbf_frozen,
        _cache=shared_cache,
    )


def _propagate_writes(
    pre: PreExecution,
    known_bytes: Dict[int, Tuple[int, ...]],
    known_start: Dict[int, int],
    read_values: Dict[TemplateKey, int],
) -> Tuple[Dict[int, Tuple[int, ...]], Dict[int, int]]:
    """Extend the known write values with stores whose value just resolved.

    A ``copy`` store becomes known when its source read resolves; an
    ``add-read`` store (RMW) becomes known when its own read resolves.
    The input dicts are not mutated (the enumeration backtracks over them).
    """
    known_bytes = dict(known_bytes)
    known_start = dict(known_start)
    progress = True
    while progress:
        progress = False
        for template in pre.memory_templates():
            if not template.writes_memory:
                continue
            eid = pre.eid_of[template.key]
            if eid in known_bytes:
                continue
            spec = template.write_value
            assert spec is not None
            value: Optional[int] = None
            if spec.kind == "copy":
                if spec.source in read_values:
                    value = read_values[spec.source]
            elif spec.kind == "add-read":
                if template.key in read_values:
                    value = read_values[template.key] + spec.payload
            if value is not None:
                known_bytes[eid] = template.encode(value)
                known_start[eid] = template.byte_range().start
                progress = True
    return known_bytes, known_start


def _all_block_writers_by_byte(pre: PreExecution) -> Dict[int, Tuple[int, ...]]:
    """For each byte *index*, every event (any block) writing it.

    This is the candidate set the HB-Consistency (3) rule quantifies over
    (:meth:`EventSet.writers_of_location` deliberately ignores blocks, like
    the specification text), so it — not the per-block covering set — is
    what decides whether two bytes of a read are interchangeable for the
    value-profile collapse below.
    """
    writers: Dict[int, List[int]] = {}
    for init in pre.init_events:
        for k in init.range_w:
            writers.setdefault(k, []).append(init.eid)
    for template in pre.memory_templates():
        if not template.writes_memory:
            continue
        eid = pre.eid_of[template.key]
        for k in template.byte_range():
            writers.setdefault(k, []).append(eid)
    return {k: tuple(ws) for k, ws in writers.items()}


def _byte_writer_classes(
    group: ReadGroup, location_writers: Dict[int, Tuple[int, ...]]
) -> Tuple[Tuple[int, ...], ...]:
    """Slot indices of one read, grouped into interchangeable byte classes.

    Two bytes of a read are in one class when they have the same candidate
    writers *and* the same all-block writer set at their byte index.  For
    such bytes, permuting which chosen writer justifies which byte changes
    no validity verdict under *any* model:

    * every rule except HB-Consistency (3) is a function of the event-level
      rf signature (plus the value profile and template-fixed attributes),
      and the signature is the union of the per-class chosen-writer sets;
    * HB-Consistency (3) decomposes per ``rbf`` triple ``(k, w, r)``: it
      fails iff some event ``c`` writing byte ``k`` has ``w hb c hb r``.
      Whether that holds depends on ``k`` only through the set of events
      writing ``k`` — equal within a class by construction — so the rule's
      verdict is a function of the *set* of writers chosen per class, not
      of which byte each one justified.

    The collapse key in :func:`ground_candidates` is therefore (value
    profile, per-class chosen-writer sets): members sharing it are
    verdict-equivalent, which is what keeps collapsed verdicts bit-identical
    to the uncollapsed enumeration.
    """
    by_class: Dict[Tuple, List[int]] = {}
    for i, (k, choices) in enumerate(zip(group.locations, group.choices)):
        by_class.setdefault((choices, location_writers.get(k, ())), []).append(i)
    return tuple(tuple(indices) for indices in by_class.values())


def ground_candidates(
    pre: PreExecution,
    max_assignments: Optional[int] = None,
    collapse_value_profiles: bool = False,
    prune_rf: bool = False,
) -> Iterator[GroundExecution]:
    """Ground one :class:`PreExecution`: enumerate ``reads-byte-from`` choices.

    Every assignment of a covering write to each byte of each read is tried;
    assignments whose resolved values contradict the branch conditions taken
    are discarded.  The enumeration is a backtracking search over the reads
    (in program order): as soon as a read's byte writers are all chosen and
    their values are already known (Init events, ``const`` stores, and
    stores resolved transitively from earlier reads), the read's value is
    decoded and checked against the branch constraints of the chosen paths —
    pruning the whole subtree of assignments for the remaining reads instead
    of materialising and rejecting each one individually.

    ``max_assignments`` bounds the number of assignments *examined*, with a
    pruned subtree charged for every assignment it contains — exactly the
    combinations the unpruned product would have enumerated — so the budget
    trips for precisely the same programs as the pre-pruning implementation
    and still guards against combinatorial blow-up.

    ``collapse_value_profiles`` deduplicates verdict-equivalent assignments:
    members resolving to identical byte values and event-level rf signature
    that differ only in which writer of an interchangeable byte class
    justified a byte (see :func:`_byte_writer_classes` for why that is
    verdict-preserving) are collapsed onto their first member, whose
    ``multiplicity`` counts the whole class.  The yielded stream is the
    first-occurrence subsequence of the uncollapsed stream — dedup-before-
    search consumers see the same executions in the same order — and the
    enumeration budget is charged identically (duplicates are still
    enumerated and charged; only their per-member assembly and downstream
    validity work is skipped).

    ``prune_rf`` applies the static analyzer's per-read writer may-sets
    (:mod:`repro.analyze`): a candidate writer *sequenced after* its read is
    dropped before the product enumeration, because HB-Consistency 2
    (``sb ⊆ hb`` in every model) rejects any execution reading from it.
    Only verdict-level entry points pass it — the raw grounding stream stays
    complete for consumers that count candidates or multiplicities — and it
    is ignored whenever a budget is set, so ``EnumerationBudgetExceeded``
    trips for exactly the same programs either way.  Init covers every byte
    and is never sequenced after a read, so no choice list ever empties.

    The backtracking itself lives in
    :func:`repro.core.groundcore.enumerate_assignments`, shared with the
    ARMv8 grounding; this function contributes the JavaScript-specific
    pieces (writer candidates, value decoding, store propagation, the
    enumeration budget, and ground-execution assembly).
    """
    prune_rf = prune_rf and max_assignments is None
    sb = pre.sb
    writers = _writers_by_byte(pre)
    constraints = pre.constraints_by_source()
    read_groups: List[ReadGroup] = []
    for template in pre.memory_templates():
        if not template.reads_memory:
            continue
        eid = pre.eid_of[template.key]
        slots: List[Tuple[str, int, int]] = []
        locations: List[int] = []
        choices: List[Tuple[int, ...]] = []
        for k in template.byte_range():
            candidates = [
                w for w in writers.get((template.block, k), []) if w != eid
            ]
            if prune_rf:
                kept, pruned = restrict_choices(
                    candidates, lambda w: (eid, w) not in sb
                )
                if pruned:
                    analyze.count_pruned_rf_edges(pruned)
                    candidates = list(kept)
            if not candidates:
                # Some read byte has no possible writer: the path is infeasible.
                return
            slots.append((template.block, k, eid))
            locations.append(k)
            choices.append(tuple(candidates))
        read_groups.append(
            ReadGroup(
                key=template.key,
                slots=tuple(slots),
                locations=tuple(locations),
                choices=tuple(choices),
                constraints=tuple(
                    (c.equal, c.constant)
                    for c in constraints.get(template.key, ())
                ),
                decode=template.decode,
            )
        )

    static_bytes, static_start = pre.static_write_state()
    write_template_keys = [
        (t.key, pre.eid_of[t.key])
        for t in pre.memory_templates()
        if t.writes_memory
    ]
    n_groups = len(read_groups)
    assignment: Dict[Tuple[str, int, int], int] = {}

    collapse_memo: Optional[Dict] = None
    group_value_classes: List[Tuple[Tuple[int, ...], ...]] = []
    if collapse_value_profiles:
        collapse_memo = {}
        location_writers = _all_block_writers_by_byte(pre)
        group_value_classes = [
            _byte_writer_classes(group, location_writers)
            for group in read_groups
        ]

    produced = 0

    def charge(count: int) -> None:
        nonlocal produced
        produced += count
        if max_assignments is not None and produced > max_assignments:
            raise EnumerationBudgetExceeded(
                f"program {pre.program.name!r} exceeded the assignment budget "
                f"of {max_assignments}"
            )

    def propagate(known_bytes, known_start, read_values):
        return _propagate_writes(pre, known_bytes, known_start, read_values)

    def finish(resolved_reads, known_bytes) -> Iterator[GroundExecution]:
        if len(resolved_reads) == n_groups and all(
            eid in known_bytes for (_key, eid) in write_template_keys
        ):
            # Every read (and hence every store) was resolved — and its
            # branch constraints checked — incrementally on the way down;
            # skip the from-scratch fixpoint.
            read_bytes = resolved_reads
            write_bytes = {
                key: known_bytes[eid] for (key, eid) in write_template_keys
            }
        else:
            resolved = _resolve_values(pre, assignment)
            if resolved is None:
                return
            read_bytes, write_bytes = resolved
            if not _constraints_satisfied(pre, read_bytes):
                return
        member_key = None
        if collapse_memo is not None:
            values_key = tuple(
                (
                    tuple(read_bytes.get(t.key, ())) if t.reads_memory else (),
                    tuple(write_bytes.get(t.key, ())) if t.writes_memory else (),
                )
                for t in pre.memory_templates()
            )
            profile = tuple(
                tuple(
                    frozenset(assignment[group.slots[i]] for i in indices)
                    for indices in value_classes
                )
                for group, value_classes in zip(read_groups, group_value_classes)
            )
            member_key = (values_key, profile)
            representative = collapse_memo.get(member_key, _MISSING)
            if representative is not _MISSING:
                # A verdict-equivalent member was already produced (or, for
                # None, silently dropped as ill-formed): account for this
                # one on its class and skip the per-member assembly.
                if representative is not None:
                    object.__setattr__(
                        representative,
                        "multiplicity",
                        representative.multiplicity + 1,
                    )
                return
        execution = _build_execution(pre, assignment, read_bytes, write_bytes)
        if not execution.is_well_formed(require_tot=False):
            if collapse_memo is not None:
                collapse_memo[member_key] = None
            return
        outcome = _build_outcome(pre, read_bytes)
        ground = GroundExecution(execution=execution, outcome=outcome, pre=pre)
        if collapse_memo is not None:
            collapse_memo[member_key] = ground
        yield ground

    yield from enumerate_assignments(
        read_groups,
        assignment,
        static_bytes,
        static_start,
        propagate,
        finish,
        charge=charge,
    )


def ground_executions(
    program: Program,
    extra_asw: Sequence[Tuple[int, int]] = (),
    max_assignments: Optional[int] = None,
    collapse_value_profiles: bool = False,
    prune_rf: bool = False,
) -> Iterator[GroundExecution]:
    """Every concrete candidate execution (without ``tot``) of the program.

    ``prune_rf`` (verdict-level callers only) drops statically impossible
    reads-byte-from candidates; see :func:`ground_candidates`.
    """
    for pre in pre_executions(program, extra_asw=extra_asw):
        yield from ground_candidates(
            pre,
            max_assignments=max_assignments,
            collapse_value_profiles=collapse_value_profiles,
            prune_rf=prune_rf,
        )


# ---------------------------------------------------------------------------
# allowed behaviours
# ---------------------------------------------------------------------------


def allowed_executions(
    program: Program,
    model: JsModel = FINAL_MODEL,
    extra_asw: Sequence[Tuple[int, int]] = (),
    max_assignments: Optional[int] = None,
    collapse_value_profiles: bool = True,
) -> Iterator[Tuple[CandidateExecution, Outcome]]:
    """Every model-allowed execution (with a ``tot`` witness) and its outcome.

    With ``collapse_value_profiles`` (the default) verdict-equivalent
    ``reads-byte-from`` assignments are represented by their first member
    only — the witness search, the outcome and every downstream verdict are
    identical for all of them, so consumers of *verdicts* (outcome sets,
    race freedom, SC-DRF) see exactly the uncollapsed answers while paying
    one validity search per class instead of one per member.  Pass
    ``False`` to enumerate every assignment's execution individually.

    Static rf pruning (:mod:`repro.analyze`) is applied here: the pruned
    candidates are invalid under *every* model (HB-Consistency 2), so the
    yielded stream of valid executions is bit-identical with and without it.
    """
    for ground in ground_executions(
        program,
        extra_asw=extra_asw,
        max_assignments=max_assignments,
        collapse_value_profiles=collapse_value_profiles,
        prune_rf=analyze.rf_pruning_enabled(max_assignments),
    ):
        tot = exists_valid_total_order(ground.execution, model)
        if tot is not None:
            yield ground.execution.with_witness(tot=tot), ground.outcome


def allowed_outcomes(
    program: Program,
    model: JsModel = FINAL_MODEL,
    extra_asw: Sequence[Tuple[int, int]] = (),
    max_assignments: Optional[int] = None,
    collapse_value_profiles: bool = True,
) -> List[Outcome]:
    """The set of outcomes observable under ``model`` (deduplicated).

    Executions whose outcome has already been shown allowed are skipped
    without a validity search, which keeps the enumeration tractable.  The
    value-profile collapse (on by default) drops only verdict-equivalent
    duplicates *before* the per-outcome dedup, preserving the dedup-before-
    search order: the first execution searched for each outcome — and hence
    the outcome set — is identical with and without it.
    """
    found: List[Outcome] = []
    seen: Set[Tuple[Tuple[str, int], ...]] = set()
    for ground in ground_executions(
        program,
        extra_asw=extra_asw,
        max_assignments=max_assignments,
        collapse_value_profiles=collapse_value_profiles,
        prune_rf=analyze.rf_pruning_enabled(max_assignments),
    ):
        key = tuple(sorted(ground.outcome.items()))
        if key in seen:
            continue
        tot = exists_valid_total_order(ground.execution, model)
        if tot is not None:
            seen.add(key)
            found.append(ground.outcome)
    return found


def outcome_allowed(
    program: Program,
    spec: Outcome,
    model: JsModel = FINAL_MODEL,
    extra_asw: Sequence[Tuple[int, int]] = (),
    max_assignments: Optional[int] = None,
    collapse_value_profiles: bool = True,
) -> bool:
    """Is some allowed execution's outcome consistent with ``spec``?

    ``spec`` is a partial assignment of qualified registers (``"1:r0": 5``);
    it matches any outcome extending it.

    Two static short-circuits (:mod:`repro.analyze`, ``REPRO_ANALYZE``)
    answer without enumerating, both bit-identical to the full path:

    * statically race-free programs under the final models have allowed
      outcomes *equal* to the SC-interpreter outcomes (Theorem 6.1 and its
      converse), so the spec is checked against those;
    * a spec no static write/binding can produce is dead under any model.

    A third (:mod:`repro.analyze.symmetry`, ``REPRO_SYMMETRY``) factors the
    query when threads decompose into groups with disjoint byte footprints:
    no relation of the model crosses components, so the spec is allowed iff
    each component's projection is — single-thread components through the
    SC interpreter (they are trivially race-free), multi-thread ones
    recursively, each over exponentially fewer interleavings.
    """
    if analyze.sc_fast_path_applies(
        program, model, extra_asw=extra_asw, max_assignments=max_assignments
    ):
        return any(outcome_matches(o, spec) for o in sc_outcomes(program))
    if analyze.outcome_statically_dead(
        program, spec, max_assignments=max_assignments
    ):
        return False
    if _symmetry.independence_applies(
        program, model, extra_asw=extra_asw, max_assignments=max_assignments
    ):
        split = _symmetry.independence_split(program, spec)
        if split is not None:
            _symmetry.count_independent_split()
            for _tids, sub, subspec in split:
                if len(sub.threads) == 1:
                    ok = any(outcome_matches(o, subspec) for o in sc_outcomes(sub))
                else:
                    ok = outcome_allowed(
                        sub,
                        subspec,
                        model,
                        collapse_value_profiles=collapse_value_profiles,
                    )
                if not ok:
                    return False
            return True
    for ground in ground_executions(
        program,
        extra_asw=extra_asw,
        max_assignments=max_assignments,
        collapse_value_profiles=collapse_value_profiles,
        prune_rf=analyze.rf_pruning_enabled(max_assignments),
    ):
        if not outcome_matches(ground.outcome, spec):
            continue
        if exists_valid_total_order(ground.execution, model) is not None:
            return True
    return False


def outcome_forbidden(
    program: Program,
    spec: Outcome,
    model: JsModel = FINAL_MODEL,
    **kwargs,
) -> bool:
    """Convenience negation of :func:`outcome_allowed`."""
    return not outcome_allowed(program, spec, model, **kwargs)


# ---------------------------------------------------------------------------
# program-level properties (§3.2)
# ---------------------------------------------------------------------------


def program_is_data_race_free(
    program: Program,
    model: JsModel = FINAL_MODEL,
    max_assignments: Optional[int] = None,
) -> bool:
    """Is the program data-race-free (no allowed execution has a race)?

    This is JavaScript's (model-internal) notion of DRF: quantification over
    *every* execution allowed by the model, not only the SC ones.

    Statically race-free programs short-circuit to ``True`` under *any*
    model — the static verdict covers all executions, allowed or not.
    """
    if analyze.drf_fast_path(program, max_assignments=max_assignments):
        return True
    for execution, _outcome in allowed_executions(
        program, model, max_assignments=max_assignments
    ):
        if data_races(execution, model):
            return False
    return True


def non_sc_outcomes(
    program: Program,
    model: JsModel = FINAL_MODEL,
    max_assignments: Optional[int] = None,
) -> List[Outcome]:
    """Allowed outcomes that no sequential interleaving of the program explains."""
    sc = {tuple(sorted(o.items())) for o in sc_outcomes(program)}
    weird = []
    for outcome in allowed_outcomes(program, model, max_assignments=max_assignments):
        if tuple(sorted(outcome.items())) not in sc:
            weird.append(outcome)
    return weird


def program_satisfies_sc_drf(
    program: Program,
    model: JsModel = FINAL_MODEL,
    max_assignments: Optional[int] = None,
) -> bool:
    """The SC-DRF guarantee for one program: DRF ⟹ only SC outcomes.

    Returns ``True`` either when the program has a data race (the guarantee
    is vacuous) or when all allowed outcomes are sequentially consistent.
    """
    if not program_is_data_race_free(program, model, max_assignments=max_assignments):
        return True
    return not non_sc_outcomes(program, model, max_assignments=max_assignments)
