"""Enumerating candidate executions and allowed behaviours of litmus programs.

Given a :class:`~repro.lang.ast.Program`, this module ties the two layers of
§2.1 together:

1. the thread-local semantics (:mod:`repro.lang.thread_semantics`) provides
   the control-flow paths and symbolic events;
2. for every path combination we enumerate the ``reads-byte-from``
   justifications (each byte of each read is assigned a covering write),
   resolve the symbolic values, discard assignments that contradict the
   branch conditions actually taken, and
3. ask the axiomatic model (:mod:`repro.core.js_model`) whether some
   ``total-order`` witness makes the resulting candidate execution valid.

An *outcome* (final register values) is **allowed** when at least one valid
candidate execution produces it — exactly the observability criterion of the
specification.  The same machinery supports the program-level notions used
by §3.2: data-race freedom and the SC-DRF comparison against the sequential
interleaving oracle of :mod:`repro.lang.interpreter`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.events import Event, make_init_event
from ..core.execution import CandidateExecution, RbfTriple
from ..core.js_model import FINAL_MODEL, JsModel, exists_valid_total_order
from ..core.data_race import data_races
from ..core.relations import Relation
from .ast import Outcome, Program, outcome_matches
from .interpreter import sc_outcomes
from .thread_semantics import (
    EventTemplate,
    LocalPath,
    TemplateKey,
    program_paths,
)


class EnumerationBudgetExceeded(RuntimeError):
    """Raised when a program's candidate-execution space exceeds the budget."""


@dataclass(frozen=True)
class PreExecution:
    """A path combination with event identifiers assigned, values still symbolic."""

    program: Program
    paths: Tuple[LocalPath, ...]
    init_events: Tuple[Event, ...]
    templates: Tuple[EventTemplate, ...]
    eid_of: Dict[TemplateKey, int]
    sb: Relation
    asw: Relation

    def memory_templates(self) -> Tuple[EventTemplate, ...]:
        return tuple(t for t in self.templates if t.is_memory_event)


@dataclass(frozen=True)
class GroundExecution:
    """A fully concrete candidate execution (no ``tot`` yet) plus its outcome."""

    execution: CandidateExecution
    outcome: Outcome
    pre: PreExecution


def build_pre_execution(
    program: Program,
    paths: Sequence[LocalPath],
    extra_asw: Sequence[Tuple[int, int]] = (),
) -> PreExecution:
    """Assign event identifiers to one combination of per-thread paths.

    ``extra_asw`` gives additional-synchronizes-with edges *by event
    identifier*; event identifiers are assigned deterministically (Init
    events of the buffers first, then each thread's memory events in
    program order), so callers such as the wait/notify semantics can
    compute them with :func:`eid_assignment`.
    """
    init_events = []
    next_eid = 0
    for buffer in program.buffers:
        init_events.append(
            make_init_event(buffer.block, buffer.byte_length, eid=next_eid)
        )
        next_eid += 1

    eid_of: Dict[TemplateKey, int] = {}
    templates: List[EventTemplate] = []
    sb_pairs: List[Tuple[int, int]] = []
    for path in paths:
        thread_eids: List[int] = []
        for template in path.templates:
            templates.append(template)
            if not template.is_memory_event:
                continue
            eid_of[template.key] = next_eid
            thread_eids.append(next_eid)
            next_eid += 1
        for i, a in enumerate(thread_eids):
            for b in thread_eids[i + 1:]:
                sb_pairs.append((a, b))

    return PreExecution(
        program=program,
        paths=tuple(paths),
        init_events=tuple(init_events),
        templates=tuple(templates),
        eid_of=eid_of,
        sb=Relation(sb_pairs),
        asw=Relation(extra_asw),
    )


def pre_executions(
    program: Program, extra_asw: Sequence[Tuple[int, int]] = ()
) -> Iterator[PreExecution]:
    """One :class:`PreExecution` per combination of per-thread control-flow paths."""
    for paths in program_paths(program):
        yield build_pre_execution(program, paths, extra_asw=extra_asw)


# ---------------------------------------------------------------------------
# grounding: reads-byte-from enumeration and value resolution
# ---------------------------------------------------------------------------


def _writers_by_byte(pre: PreExecution) -> Dict[Tuple[str, int], List[int]]:
    """Map each (block, byte location) to the eids of the events writing it."""
    writers: Dict[Tuple[str, int], List[int]] = {}
    for init in pre.init_events:
        for k in init.range_w:
            writers.setdefault((init.block, k), []).append(init.eid)
    for template in pre.memory_templates():
        if not template.writes_memory:
            continue
        eid = pre.eid_of[template.key]
        for k in template.byte_range():
            writers.setdefault((template.block, k), []).append(eid)
    return writers


def _resolve_values(
    pre: PreExecution, assignment: Dict[Tuple[str, int, int], int]
) -> Optional[Tuple[Dict[TemplateKey, Tuple[int, ...]], Dict[TemplateKey, Tuple[int, ...]]]]:
    """Resolve read and write byte values under a writer assignment.

    ``assignment`` maps ``(block, byte location, reader eid)`` to the writer
    eid chosen for that byte.  Returns ``(read_bytes, write_bytes)`` keyed by
    template key, or ``None`` if the value dependencies are cyclic (a store
    whose value depends on a load that reads from it — the out-of-thin-air
    corner we simply refuse to ground, mirroring §1.3).
    """
    write_bytes: Dict[int, Tuple[int, ...]] = {
        init.eid: init.writes for init in pre.init_events
    }
    write_start: Dict[int, int] = {init.eid: init.index for init in pre.init_events}
    read_bytes: Dict[TemplateKey, Tuple[int, ...]] = {}
    read_values: Dict[TemplateKey, int] = {}
    template_write_bytes: Dict[TemplateKey, Tuple[int, ...]] = {}

    templates = {t.key: t for t in pre.memory_templates()}
    for template in templates.values():
        if template.writes_memory:
            eid = pre.eid_of[template.key]
            write_start[eid] = template.byte_range().start

    pending = set(templates)
    progress = True
    while pending and progress:
        progress = False
        for key in list(pending):
            template = templates[key]
            eid = pre.eid_of[key]

            # Resolve this template's read value if possible.
            if template.reads_memory and key not in read_bytes:
                data: List[Optional[int]] = []
                complete = True
                for k in template.byte_range():
                    writer_eid = assignment[(template.block, k, eid)]
                    if writer_eid not in write_bytes:
                        complete = False
                        break
                    writer_data = write_bytes[writer_eid]
                    data.append(writer_data[k - write_start[writer_eid]])
                if complete:
                    resolved = tuple(int(b) for b in data)  # type: ignore[arg-type]
                    read_bytes[key] = resolved
                    read_values[key] = template.decode(resolved)
                    progress = True

            # Resolve this template's written bytes if possible.
            if template.writes_memory and key not in template_write_bytes:
                spec = template.write_value
                assert spec is not None
                resolved_bytes: Optional[Tuple[int, ...]] = None
                if spec.kind == "const":
                    resolved_bytes = template.encode(spec.payload)
                elif spec.kind == "copy":
                    assert spec.source is not None
                    if spec.source in read_values:
                        resolved_bytes = template.encode(read_values[spec.source])
                elif spec.kind == "add-read":
                    if key in read_values:
                        resolved_bytes = template.encode(
                            read_values[key] + spec.payload
                        )
                else:  # pragma: no cover - defensive
                    raise ValueError(f"unknown write value kind {spec.kind!r}")
                if resolved_bytes is not None:
                    template_write_bytes[key] = resolved_bytes
                    write_bytes[eid] = resolved_bytes
                    progress = True

            reads_done = (not template.reads_memory) or key in read_bytes
            writes_done = (not template.writes_memory) or key in template_write_bytes
            if reads_done and writes_done:
                pending.discard(key)

    if pending:
        return None
    return read_bytes, template_write_bytes


def _constraints_satisfied(
    pre: PreExecution, read_bytes: Dict[TemplateKey, Tuple[int, ...]]
) -> bool:
    """Check every branch condition of every chosen path."""
    templates = {t.key: t for t in pre.templates}
    for path in pre.paths:
        for constraint in path.constraints:
            template = templates[constraint.source]
            value = template.decode(read_bytes[constraint.source])
            if constraint.equal and value != constraint.constant:
                return False
            if not constraint.equal and value == constraint.constant:
                return False
    return True


def _build_outcome(
    pre: PreExecution, read_bytes: Dict[TemplateKey, Tuple[int, ...]]
) -> Outcome:
    """The final register values along the chosen paths."""
    templates = {t.key: t for t in pre.templates}
    outcome: Outcome = {}
    for path in pre.paths:
        for register, binding in path.registers:
            tag, payload = binding
            key = f"{path.tid}:{register}"
            if tag == "const":
                outcome[key] = payload  # type: ignore[assignment]
            else:
                template = templates[payload]  # type: ignore[index]
                outcome[key] = template.decode(read_bytes[payload])  # type: ignore[index]
    return outcome


def _build_execution(
    pre: PreExecution,
    assignment: Dict[Tuple[str, int, int], int],
    read_bytes: Dict[TemplateKey, Tuple[int, ...]],
    write_bytes: Dict[TemplateKey, Tuple[int, ...]],
) -> CandidateExecution:
    """Assemble the concrete candidate execution (without a ``tot`` witness)."""
    events: List[Event] = list(pre.init_events)
    rbf: Set[RbfTriple] = set()
    for template in pre.memory_templates():
        eid = pre.eid_of[template.key]
        byte_range = template.byte_range()
        reads = read_bytes.get(template.key, ()) if template.reads_memory else ()
        writes = write_bytes.get(template.key, ()) if template.writes_memory else ()
        events.append(
            Event(
                eid=eid,
                tid=template.tid,
                ord=template.mode,
                block=template.block,
                index=byte_range.start,
                reads=tuple(reads),
                writes=tuple(writes),
                tearfree=template.tearfree,
            )
        )
        if template.reads_memory:
            for k in byte_range:
                rbf.add((k, assignment[(template.block, k, eid)], eid))
    return CandidateExecution.build(
        events=events, sb=pre.sb.pairs, asw=pre.asw.pairs, rbf=rbf
    )


def ground_candidates(
    pre: PreExecution,
    max_assignments: Optional[int] = None,
) -> Iterator[GroundExecution]:
    """Ground one :class:`PreExecution`: enumerate ``reads-byte-from`` choices.

    Every assignment of a covering write to each byte of each read is tried;
    assignments whose resolved values contradict the branch conditions taken
    are discarded.
    """
    writers = _writers_by_byte(pre)
    read_slots: List[Tuple[str, int, int]] = []
    slot_choices: List[List[int]] = []
    for template in pre.memory_templates():
        if not template.reads_memory:
            continue
        eid = pre.eid_of[template.key]
        for k in template.byte_range():
            candidates = [
                w for w in writers.get((template.block, k), []) if w != eid
            ]
            read_slots.append((template.block, k, eid))
            slot_choices.append(candidates)

    if any(not choices for choices in slot_choices):
        # Some read byte has no possible writer: the path is infeasible.
        return

    produced = 0
    for combo in itertools.product(*slot_choices):
        produced += 1
        if max_assignments is not None and produced > max_assignments:
            raise EnumerationBudgetExceeded(
                f"program {pre.program.name!r} exceeded the assignment budget "
                f"of {max_assignments}"
            )
        assignment = dict(zip(read_slots, combo))
        resolved = _resolve_values(pre, assignment)
        if resolved is None:
            continue
        read_bytes, write_bytes = resolved
        if not _constraints_satisfied(pre, read_bytes):
            continue
        execution = _build_execution(pre, assignment, read_bytes, write_bytes)
        if not execution.is_well_formed(require_tot=False):
            continue
        outcome = _build_outcome(pre, read_bytes)
        yield GroundExecution(execution=execution, outcome=outcome, pre=pre)


def ground_executions(
    program: Program,
    extra_asw: Sequence[Tuple[int, int]] = (),
    max_assignments: Optional[int] = None,
) -> Iterator[GroundExecution]:
    """Every concrete candidate execution (without ``tot``) of the program."""
    for pre in pre_executions(program, extra_asw=extra_asw):
        yield from ground_candidates(pre, max_assignments=max_assignments)


# ---------------------------------------------------------------------------
# allowed behaviours
# ---------------------------------------------------------------------------


def allowed_executions(
    program: Program,
    model: JsModel = FINAL_MODEL,
    extra_asw: Sequence[Tuple[int, int]] = (),
    max_assignments: Optional[int] = None,
) -> Iterator[Tuple[CandidateExecution, Outcome]]:
    """Every model-allowed execution (with a ``tot`` witness) and its outcome."""
    for ground in ground_executions(
        program, extra_asw=extra_asw, max_assignments=max_assignments
    ):
        tot = exists_valid_total_order(ground.execution, model)
        if tot is not None:
            yield ground.execution.with_witness(tot=tot), ground.outcome


def allowed_outcomes(
    program: Program,
    model: JsModel = FINAL_MODEL,
    extra_asw: Sequence[Tuple[int, int]] = (),
    max_assignments: Optional[int] = None,
) -> List[Outcome]:
    """The set of outcomes observable under ``model`` (deduplicated).

    Executions whose outcome has already been shown allowed are skipped
    without a validity search, which keeps the enumeration tractable.
    """
    found: List[Outcome] = []
    seen: Set[Tuple[Tuple[str, int], ...]] = set()
    for ground in ground_executions(
        program, extra_asw=extra_asw, max_assignments=max_assignments
    ):
        key = tuple(sorted(ground.outcome.items()))
        if key in seen:
            continue
        tot = exists_valid_total_order(ground.execution, model)
        if tot is not None:
            seen.add(key)
            found.append(ground.outcome)
    return found


def outcome_allowed(
    program: Program,
    spec: Outcome,
    model: JsModel = FINAL_MODEL,
    extra_asw: Sequence[Tuple[int, int]] = (),
    max_assignments: Optional[int] = None,
) -> bool:
    """Is some allowed execution's outcome consistent with ``spec``?

    ``spec`` is a partial assignment of qualified registers (``"1:r0": 5``);
    it matches any outcome extending it.
    """
    for ground in ground_executions(
        program, extra_asw=extra_asw, max_assignments=max_assignments
    ):
        if not outcome_matches(ground.outcome, spec):
            continue
        if exists_valid_total_order(ground.execution, model) is not None:
            return True
    return False


def outcome_forbidden(
    program: Program,
    spec: Outcome,
    model: JsModel = FINAL_MODEL,
    **kwargs,
) -> bool:
    """Convenience negation of :func:`outcome_allowed`."""
    return not outcome_allowed(program, spec, model, **kwargs)


# ---------------------------------------------------------------------------
# program-level properties (§3.2)
# ---------------------------------------------------------------------------


def program_is_data_race_free(
    program: Program,
    model: JsModel = FINAL_MODEL,
    max_assignments: Optional[int] = None,
) -> bool:
    """Is the program data-race-free (no allowed execution has a race)?

    This is JavaScript's (model-internal) notion of DRF: quantification over
    *every* execution allowed by the model, not only the SC ones.
    """
    for execution, _outcome in allowed_executions(
        program, model, max_assignments=max_assignments
    ):
        if data_races(execution, model):
            return False
    return True


def non_sc_outcomes(
    program: Program,
    model: JsModel = FINAL_MODEL,
    max_assignments: Optional[int] = None,
) -> List[Outcome]:
    """Allowed outcomes that no sequential interleaving of the program explains."""
    sc = {tuple(sorted(o.items())) for o in sc_outcomes(program)}
    weird = []
    for outcome in allowed_outcomes(program, model, max_assignments=max_assignments):
        if tuple(sorted(outcome.items())) not in sc:
            weird.append(outcome)
    return weird


def program_satisfies_sc_drf(
    program: Program,
    model: JsModel = FINAL_MODEL,
    max_assignments: Optional[int] = None,
) -> bool:
    """The SC-DRF guarantee for one program: DRF ⟹ only SC outcomes.

    Returns ``True`` either when the program has a data race (the guarantee
    is vacuous) or when all allowed outcomes are sequentially consistent.
    """
    if not program_is_data_race_free(program, model, max_assignments=max_assignments):
        return True
    return not non_sc_outcomes(program, model, max_assignments=max_assignments)
