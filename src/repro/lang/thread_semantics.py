"""The thread-local semantics of the litmus fragment.

§2.1 of the paper: a JavaScript program's semantics is defined in two
layers.  The *thread-local semantics* runs each agent, choosing read values
arbitrarily and emitting an event for every shared-memory access; the
axiomatic memory model then decides which of the resulting candidate
executions are valid.

This module implements the first layer symbolically.  For each thread it
enumerates the *control-flow paths* the thread can take.  Each path yields

* an ordered list of :class:`EventTemplate` — the accesses performed, with
  read values left symbolic,
* *path constraints* — equalities/disequalities on the (symbolic) values
  read, arising from ``if (r == c)`` branches, and
* final register bindings — either literals or references to read events.

:mod:`repro.lang.enumeration` later grounds the symbolic read values by
choosing a ``reads-byte-from`` relation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.events import AccessMode, SEQCST, UNORDERED
from .ast import (
    Access,
    AtomicAdd,
    Exchange,
    IfEq,
    Load,
    Notify,
    Program,
    Register,
    Statement,
    Store,
    Thread,
    Wait,
)

TemplateKey = Tuple[int, int]
"""Identifies an event template: ``(thread id, position within the path)``."""


@dataclass(frozen=True)
class WriteValue:
    """How the bytes written by a template are computed.

    ``kind`` is one of:

    * ``"const"``    — a literal (``payload`` is the value);
    * ``"copy"``     — the value read by another template (``source`` key),
      e.g. ``y[0] = r`` where ``r`` was loaded;
    * ``"add-read"`` — this template's own read value plus ``payload``
      (``Atomics.add``).
    """

    kind: str
    payload: int = 0
    source: Optional[TemplateKey] = None


@dataclass(frozen=True)
class EventTemplate:
    """A shared-memory access of one control-flow path, values still symbolic."""

    key: TemplateKey
    kind: str  # "read" | "write" | "rmw" | "notify"
    mode: AccessMode
    access: Optional[Access]
    dest: Optional[str] = None
    write_value: Optional[WriteValue] = None
    wait_expected: Optional[int] = None

    @property
    def tid(self) -> int:
        return self.key[0]

    @property
    def is_memory_event(self) -> bool:
        """Notify markers produce no memory event."""
        return self.kind != "notify"

    @property
    def reads_memory(self) -> bool:
        return self.kind in ("read", "rmw")

    @property
    def writes_memory(self) -> bool:
        return self.kind in ("write", "rmw")

    @property
    def block(self) -> str:
        # Memoised: resolved once per template instead of chasing the
        # access → typed-array → buffer chain on every hot-loop access.
        cached = getattr(self, "_block", None)
        if cached is None:
            assert self.access is not None
            cached = self.access.block
            object.__setattr__(self, "_block", cached)
        return cached

    def byte_range(self) -> range:
        cached = getattr(self, "_byte_range", None)
        if cached is None:
            assert self.access is not None
            cached = self.access.byte_range()
            object.__setattr__(self, "_byte_range", cached)
        return cached

    @property
    def tearfree(self) -> bool:
        assert self.access is not None
        return self.access.tearfree

    def decode(self, data: Tuple[int, ...]) -> int:
        assert self.access is not None
        return self.access.decode(data)

    def encode(self, value: int) -> Tuple[int, ...]:
        assert self.access is not None
        return self.access.encode(value)


@dataclass(frozen=True)
class PathConstraint:
    """A branch condition: the value read by ``source`` compared to ``constant``."""

    source: TemplateKey
    equal: bool
    constant: int


RegisterBinding = Union[Tuple[str, int], Tuple[str, TemplateKey]]
"""Either ``("const", value)`` or ``("event", template key)``."""


@dataclass(frozen=True)
class LocalPath:
    """One control-flow path of one thread."""

    tid: int
    templates: Tuple[EventTemplate, ...]
    constraints: Tuple[PathConstraint, ...]
    registers: Tuple[Tuple[str, RegisterBinding], ...]

    def register_map(self) -> Dict[str, RegisterBinding]:
        return dict(self.registers)


class _PathBuilder:
    """Mutable state while exploring one thread's control flow."""

    def __init__(self, tid: int):
        self.tid = tid
        self.templates: List[EventTemplate] = []
        self.constraints: List[PathConstraint] = []
        self.registers: Dict[str, RegisterBinding] = {}

    def snapshot(self) -> "_PathBuilder":
        clone = _PathBuilder(self.tid)
        clone.templates = list(self.templates)
        clone.constraints = list(self.constraints)
        clone.registers = dict(self.registers)
        return clone

    def next_key(self) -> TemplateKey:
        return (self.tid, len(self.templates))

    def finish(self) -> LocalPath:
        return LocalPath(
            tid=self.tid,
            templates=tuple(self.templates),
            constraints=tuple(self.constraints),
            registers=tuple(sorted(self.registers.items())),
        )


class ThreadSemanticsError(ValueError):
    """Raised when a program steps outside the supported fragment."""


def _resolve_operand(
    builder: _PathBuilder, value: Union[int, Register]
) -> WriteValue:
    """Turn a source operand into a :class:`WriteValue`."""
    if isinstance(value, int):
        return WriteValue(kind="const", payload=value)
    binding = builder.registers.get(value.name)
    if binding is None:
        raise ThreadSemanticsError(
            f"thread {builder.tid}: register {value.name!r} used before assignment"
        )
    tag, payload = binding
    if tag == "const":
        return WriteValue(kind="const", payload=payload)  # type: ignore[arg-type]
    return WriteValue(kind="copy", source=payload)  # type: ignore[arg-type]


def _explore(
    builder: _PathBuilder, statements: Sequence[Statement]
) -> Iterator[_PathBuilder]:
    """Explore the statements, yielding a builder per complete path."""
    if not statements:
        yield builder
        return
    stmt, rest = statements[0], statements[1:]

    if isinstance(stmt, Store):
        write_value = _resolve_operand(builder, stmt.value)
        builder.templates.append(
            EventTemplate(
                key=builder.next_key(),
                kind="write",
                mode=SEQCST if stmt.atomic else UNORDERED,
                access=stmt.access,
                write_value=write_value,
            )
        )
        yield from _explore(builder, rest)
        return

    if isinstance(stmt, Load):
        key = builder.next_key()
        builder.templates.append(
            EventTemplate(
                key=key,
                kind="read",
                mode=SEQCST if stmt.atomic else UNORDERED,
                access=stmt.access,
                dest=stmt.dest.name,
            )
        )
        builder.registers[stmt.dest.name] = ("event", key)
        yield from _explore(builder, rest)
        return

    if isinstance(stmt, Exchange):
        key = builder.next_key()
        write_value = _resolve_operand(builder, stmt.value)
        builder.templates.append(
            EventTemplate(
                key=key,
                kind="rmw",
                mode=SEQCST,
                access=stmt.access,
                dest=stmt.dest.name,
                write_value=write_value,
            )
        )
        builder.registers[stmt.dest.name] = ("event", key)
        yield from _explore(builder, rest)
        return

    if isinstance(stmt, AtomicAdd):
        key = builder.next_key()
        builder.templates.append(
            EventTemplate(
                key=key,
                kind="rmw",
                mode=SEQCST,
                access=stmt.access,
                dest=stmt.dest.name,
                write_value=WriteValue(kind="add-read", payload=stmt.value),
            )
        )
        builder.registers[stmt.dest.name] = ("event", key)
        yield from _explore(builder, rest)
        return

    if isinstance(stmt, IfEq):
        binding = builder.registers.get(stmt.register.name)
        if binding is None:
            raise ThreadSemanticsError(
                f"thread {builder.tid}: branch on unassigned register "
                f"{stmt.register.name!r}"
            )
        tag, payload = binding
        if tag == "const":
            branch = stmt.then if payload == stmt.constant else stmt.otherwise
            yield from _explore(builder, tuple(branch) + tuple(rest))
            return
        # Symbolic: fork on the comparison outcome.
        taken = builder.snapshot()
        taken.constraints.append(
            PathConstraint(source=payload, equal=True, constant=stmt.constant)
        )
        yield from _explore(taken, tuple(stmt.then) + tuple(rest))
        builder.constraints.append(
            PathConstraint(source=payload, equal=False, constant=stmt.constant)
        )
        yield from _explore(builder, tuple(stmt.otherwise) + tuple(rest))
        return

    if isinstance(stmt, Wait):
        key = builder.next_key()
        builder.templates.append(
            EventTemplate(
                key=key,
                kind="read",
                mode=SEQCST,
                access=stmt.access,
                wait_expected=stmt.expected,
            )
        )
        yield from _explore(builder, rest)
        return

    if isinstance(stmt, Notify):
        key = builder.next_key()
        builder.templates.append(
            EventTemplate(
                key=key,
                kind="notify",
                mode=SEQCST,
                access=stmt.access,
                dest=stmt.dest.name if stmt.dest else None,
            )
        )
        yield from _explore(builder, rest)
        return

    raise ThreadSemanticsError(f"unsupported statement: {stmt!r}")


def thread_paths(thread: Thread, tid: int) -> List[LocalPath]:
    """All control-flow paths of one thread."""
    builders = _explore(_PathBuilder(tid), thread.statements)
    return [b.finish() for b in builders]


def program_paths(program: Program) -> Iterator[Tuple[LocalPath, ...]]:
    """All combinations of per-thread control-flow paths of a program."""
    per_thread = [
        thread_paths(thread, tid) for tid, thread in enumerate(program.threads)
    ]
    yield from itertools.product(*per_thread)
