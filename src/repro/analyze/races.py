"""Static conflict/race analysis over litmus programs.

The dynamic notion of a data race (Fig. 7 of the paper, implemented in
:mod:`repro.core.data_race`) quantifies over *executions*: two events race
when they overlap, at least one writes, they are not both SC accesses of the
same range, and neither happens-before the other.  This module lifts that
predicate to the *program text*: every thread contributes a finite set of
static access events — one per memory-event template of any control-flow
path, with its byte footprint and ordering mode — and a pair of static
accesses *may race* exactly when the execution-level predicate could hold
for some pair of dynamic events they describe.

The static happens-before under-approximation behind the lift:

* **program order**: two events of the same thread are always ``sb``- and
  hence ``hb``-ordered (in every model), so same-thread static pairs never
  race — and templates from *different* paths of one thread never co-occur
  in an execution at all;
* **SC-atomic synchronisation**: the Fig.-7 predicate itself exempts pairs
  of seq-cst accesses of the *same* range (their synchronises-with edge is
  what the model's DRF guarantee is built from), so equal-footprint SC
  static pairs are discarded;
* **init events**: ``init-overlap`` puts the Init write happens-before
  every overlapping event in every model, so init never contributes a race
  and needs no static counterpart.

Everything else is conservatively a *may-race* pair.  ``definitely_race_free``
(no may-race pairs) is therefore **sound**: every dynamic event of every
execution instantiates some static access of the same thread with the same
mode and footprint, so a race-free static verdict transfers to every
execution — which is what licenses the SC fast path (Theorem 6.1 plus its
converse for the final, simplified-sw models) and the program-level DRF
short-circuit in :mod:`repro.lang.enumeration`.

The same per-path template walk also yields two *pruning* fact families:

* per-read writer **may-sets** — rf edges statically killed by ordering
  (a write sequenced after a read can never justify it: HB-Consistency 2
  rejects such an execution under every model), applied inside
  :func:`repro.core.groundcore.restrict_choices`;
* **dead outcomes** — register values no write of any path can produce
  (checked against per-byte possible-value sets and the access codecs),
  letting ``outcome_allowed`` answer ``False`` without grounding anything.

All interventions are toggled by ``REPRO_ANALYZE`` (default on) and select
between *bit-identical* verdict paths, so the flag is deliberately not part
of any verdict-cache key and ``SEMANTICS_REVISION`` is untouched.

This module must not import :mod:`repro.lang.enumeration` (or anything that
does) at module level: the enumeration imports us for the fast path, and
the thread-semantics import is deferred for the same reason.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.events import AccessMode, ranges_equal, ranges_intersect
from ..core.js_model import JsModel, ScAtomicsRule
from ..dispatch.cache import DISABLED_ENV_VALUES

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids the import cycle
    from ..lang.ast import Outcome, Program

ANALYZE_ENV = "REPRO_ANALYZE"


def analyze_enabled() -> bool:
    """Is the static analyzer on (the default) or disabled via the environment?

    ``REPRO_ANALYZE=off`` (or ``0``/``no``/``none``/``disabled``) turns every
    analyzer intervention off; unset or any other value leaves it on.
    """
    # lint: allow(env-read) — REPRO_ANALYZE is a registered knob selecting
    # between bit-identical verdict paths; it never changes an answer.
    raw = os.environ.get(ANALYZE_ENV, "").strip().lower()
    return not raw or raw not in DISABLED_ENV_VALUES


# ---------------------------------------------------------------------------
# analyzer counters
# ---------------------------------------------------------------------------


@dataclass
class AnalyzeStats:
    """Process-wide analyzer counters (mirrors the verdict-cache stats).

    ``fast_path_hits``/``fast_path_misses`` count verdict queries answered by
    the SC interpreter vs. sent to the weak-memory enumeration;
    ``pruned_rf_edges`` counts statically killed reads-byte-from candidate
    edges; ``race_pairs`` accumulates may-race pairs over analyzed programs;
    ``dead_outcomes`` counts specs rejected without grounding.  Multi-worker
    sweeps count the *parent's* view only, exactly like ``cache_stats``.
    """

    programs_analyzed: int = 0
    race_pairs: int = 0
    fast_path_hits: int = 0
    fast_path_misses: int = 0
    pruned_rf_edges: int = 0
    dead_outcomes: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def delta(self, before: Mapping[str, int]) -> Dict[str, int]:
        """Counter increments since a :meth:`snapshot` taken earlier."""
        return {name: value - before.get(name, 0) for name, value in self.snapshot().items()}

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)


STATS = AnalyzeStats()


def stats_snapshot() -> Dict[str, int]:
    return STATS.snapshot()


def stats_delta(before: Mapping[str, int]) -> Dict[str, int]:
    return STATS.delta(before)


# ---------------------------------------------------------------------------
# static accesses and the program analysis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StaticAccess:
    """One static memory access: a memory-event template's observable shape.

    Every dynamic event of every execution instantiates some static access
    of the same thread with the same kind, mode, and byte footprint — the
    soundness invariant all the analyzer's verdicts rest on.
    """

    tid: int
    kind: str  # "read" | "write" | "rmw"
    mode: AccessMode
    block: str
    start: int
    stop: int

    @property
    def reads(self) -> bool:
        return self.kind in ("read", "rmw")

    @property
    def writes(self) -> bool:
        return self.kind in ("write", "rmw")

    @property
    def footprint(self) -> range:
        return range(self.start, self.stop)

    def describe(self) -> str:
        mode = self.mode.name.lower()
        return (
            f"t{self.tid} {self.kind:5s} {self.block}"
            f"[{self.start}:{self.stop}] {mode}"
        )


RegisterFact = Tuple[str, object]  # ("const", value) | ("read", access)
ByteValues = Dict[Tuple[str, int], Optional[FrozenSet[int]]]


@dataclass(frozen=True)
class ProgramAnalysis:
    """Everything the static pass proves about one program.

    ``accesses`` are the deduplicated static accesses of all threads;
    ``race_pairs`` the cross-thread may-race pairs among them (empty ⟺
    ``definitely_race_free``).  ``register_bindings`` maps each qualified
    register (``"1:r0"``) to the ways any path can bind it; ``byte_values``
    maps each buffer byte to the set of values some write (or Init) can
    leave there — ``None`` meaning statically unbounded.
    """

    accesses: Tuple[StaticAccess, ...]
    race_pairs: Tuple[Tuple[StaticAccess, StaticAccess], ...]
    register_bindings: Mapping[str, Tuple[RegisterFact, ...]]
    byte_values: ByteValues
    uses_wait_notify: bool

    @property
    def definitely_race_free(self) -> bool:
        return not self.race_pairs

    def value_producible(self, register: str, want: int) -> bool:
        """Can *some* path leave ``want`` in the qualified register?

        A ``const`` binding produces exactly its constant.  A ``read``
        binding produces ``want`` only when the access codec round-trips it
        (``decode(encode(want)) == want`` — out-of-range values wrap exactly
        as the dynamic semantics wraps them) and every byte of its encoding
        is statically possible at the byte's location.
        """
        for tag, payload in self.register_bindings.get(register, ()):
            if tag == "const":
                if payload == want:
                    return True
                continue
            access = payload
            try:
                data = access.encode(want)
            except (ValueError, OverflowError):  # pragma: no cover - defensive
                continue
            if access.decode(data) != want:
                continue
            possible = True
            for loc, byte in zip(access.byte_range(), data):
                values = self.byte_values.get((access.block, loc))
                if values is not None and byte not in values:
                    possible = False
                    break
            if possible:
                return True
        return False

    def outcome_statically_dead(self, spec: "Outcome") -> bool:
        """Is the (partial) outcome spec unproducible by every path?

        Sound for wait/notify-free programs only: notify counts bind
        registers outside the path register maps this analysis walks.
        """
        return any(
            not self.value_producible(register, want)
            for register, want in spec.items()
        )

    def describe(self) -> str:
        lines = [f"static accesses: {len(self.accesses)}"]
        lines += [f"  {access.describe()}" for access in self.accesses]
        lines.append(
            "definitely race-free"
            if self.definitely_race_free
            else f"may-race pairs: {len(self.race_pairs)}"
        )
        lines += [
            f"  {a.describe()}  ×  {b.describe()}" for a, b in self.race_pairs
        ]
        return "\n".join(lines)


def _static_accesses_and_facts(
    program: "Program",
) -> Tuple[
    List[StaticAccess], Dict[str, List[RegisterFact]], ByteValues
]:
    """Walk every control-flow path of every thread once.

    Returns the deduplicated static accesses, the per-register binding
    facts, and the per-byte possible-value sets (seeded with Init's zeros).
    """
    # Deferred import: repro.lang.enumeration imports this module for the
    # fast path, and repro.lang's package init pulls in the enumeration.
    from ..lang.thread_semantics import thread_paths

    accesses: List[StaticAccess] = []
    seen_accesses = set()
    bindings: Dict[str, List[RegisterFact]] = {}
    seen_bindings = set()
    byte_values: ByteValues = {}
    for buffer in program.buffers:
        for k in range(buffer.byte_length):
            byte_values[(buffer.block, k)] = frozenset({0})

    def widen(block: str, loc: int, byte: Optional[int]) -> None:
        current = byte_values.get((block, loc))
        if current is None:
            return  # already unbounded (or out of range: never read back)
        if byte is None:
            byte_values[(block, loc)] = None
        else:
            byte_values[(block, loc)] = current | {byte}

    for tid, thread in enumerate(program.threads):
        for path in thread_paths(thread, tid):
            templates_by_key = {t.key: t for t in path.templates}
            for template in path.templates:
                if not template.is_memory_event:
                    continue
                rng = template.byte_range()
                static = StaticAccess(
                    tid=tid,
                    kind=template.kind,
                    mode=template.mode,
                    block=template.block,
                    start=rng.start,
                    stop=rng.stop,
                )
                if static not in seen_accesses:
                    seen_accesses.add(static)
                    accesses.append(static)
                if template.writes_memory:
                    write_value = template.write_value
                    if write_value is not None and write_value.kind == "const":
                        data = template.access.encode(write_value.payload)
                        for loc, byte in zip(rng, data):
                            widen(template.block, loc, byte)
                    else:
                        # copy / add-read stores: value depends on a read —
                        # statically unbounded.
                        for loc in rng:
                            widen(template.block, loc, None)
            for name, (tag, payload) in path.registers:
                qualified = f"{path.tid}:{name}"
                if tag == "const":
                    fact: RegisterFact = ("const", payload)
                else:
                    fact = ("read", templates_by_key[payload].access)
                if (qualified, fact) not in seen_bindings:
                    seen_bindings.add((qualified, fact))
                    bindings.setdefault(qualified, []).append(fact)
    return accesses, bindings, byte_values


def _may_race(a: StaticAccess, b: StaticAccess) -> bool:
    """The Fig.-7 race predicate lifted to a static pair (see module doc)."""
    if a.tid == b.tid:
        return False  # program order: sb ⊆ hb in every model
    if a.block != b.block:
        return False
    if not ranges_intersect(a.footprint, b.footprint):
        return False
    if not (a.writes or b.writes):
        return False
    if (
        a.mode is AccessMode.SEQCST
        and b.mode is AccessMode.SEQCST
        and ranges_equal(a.footprint, b.footprint)
    ):
        return False
    return True


def analyze_program(program: "Program") -> ProgramAnalysis:
    """The static analysis of one program (memoized on the instance).

    The memo lives in the instance ``__dict__`` (like the fingerprint memo),
    so structurally equal programs built separately each pay one analysis
    and frozen-dataclass semantics stay intact.
    """
    memo = program.__dict__.get("_analyze_memo")
    if memo is not None:
        return memo
    accesses, bindings, byte_values = _static_accesses_and_facts(program)
    pairs: List[Tuple[StaticAccess, StaticAccess]] = []
    for i, a in enumerate(accesses):
        for b in accesses[i + 1 :]:
            if _may_race(a, b):
                pairs.append((a, b))
    analysis = ProgramAnalysis(
        accesses=tuple(accesses),
        race_pairs=tuple(pairs),
        register_bindings={
            name: tuple(facts) for name, facts in bindings.items()
        },
        byte_values=byte_values,
        uses_wait_notify=program.uses_wait_notify(),
    )
    STATS.programs_analyzed += 1
    STATS.race_pairs += len(pairs)
    object.__setattr__(program, "_analyze_memo", analysis)
    return analysis


# ---------------------------------------------------------------------------
# verdict-path gates: fast paths, pruning, dead outcomes
# ---------------------------------------------------------------------------


def statically_race_free(program: "Program") -> bool:
    """Sound static race-freedom; ``False`` means *unknown*, never "racy"."""
    if not analyze_enabled():
        return False
    return analyze_program(program).definitely_race_free


def static_race_verdict(program: "Program") -> Optional[bool]:
    """``definitely_race_free`` as report metadata: ``None`` when disabled."""
    if not analyze_enabled():
        return None
    return analyze_program(program).definitely_race_free


def sc_fast_path_model(model: JsModel) -> bool:
    """Models whose allowed outcomes *equal* the SC outcomes on DRF programs.

    Theorem 6.1 gives allowed ⊆ SC for the final (simplified-sw, final
    SC-atomics) models; the converse holds because the latest-writer-per-byte
    execution of any SC interleaving satisfies HB-Consistency 1–3, both
    tear-free variants and the final SC-atomics rule.  The ORIGINAL and
    ARMV8_FIX models admit DRF programs with non-SC outcomes (Fig. 8), so
    the fast path must never answer for them.
    """
    return model.sc_atomics is ScAtomicsRule.FINAL and model.simplified_sw


def sc_fast_path_applies(
    program: "Program",
    model: JsModel,
    extra_asw: Sequence[Tuple[int, int]] = (),
    max_assignments: Optional[int] = None,
) -> bool:
    """May boolean outcome verdicts be answered by the SC interpreter?

    Counts a fast-path hit or miss; with a budget or extra ``asw`` edges the
    analyzer stands aside entirely (budget semantics are charged against the
    unpruned enumeration, and extra synchronisation is not in the program
    text), so neither counter moves.
    """
    if not analyze_enabled():
        return False
    if max_assignments is not None or tuple(extra_asw):
        return False
    if not sc_fast_path_model(model) or program.uses_wait_notify():
        STATS.fast_path_misses += 1
        return False
    if analyze_program(program).definitely_race_free:
        STATS.fast_path_hits += 1
        return True
    STATS.fast_path_misses += 1
    return False


def drf_fast_path(
    program: "Program", max_assignments: Optional[int] = None
) -> bool:
    """Static short-circuit for program-level DRF — sound under *any* model.

    Static race-freedom quantifies over every execution, allowed or not, so
    it answers the model-internal DRF question for every model at once.
    """
    if not analyze_enabled() or max_assignments is not None:
        return False
    if analyze_program(program).definitely_race_free:
        STATS.fast_path_hits += 1
        return True
    STATS.fast_path_misses += 1
    return False


def outcome_statically_dead(
    program: "Program",
    spec: "Outcome",
    max_assignments: Optional[int] = None,
) -> bool:
    """Can the spec be rejected without grounding a single execution?"""
    if not analyze_enabled() or max_assignments is not None:
        return False
    if not spec or program.uses_wait_notify():
        return False
    if analyze_program(program).outcome_statically_dead(spec):
        STATS.dead_outcomes += 1
        return True
    return False


def rf_pruning_enabled(max_assignments: Optional[int] = None) -> bool:
    """Is reads-byte-from candidate pruning active for this call?

    Never with a budget: ``enumerate_assignments`` charges pruned subtrees
    by the *unpruned* product sizes, so shrinking the choice lists would
    change exactly when ``EnumerationBudgetExceeded`` trips.
    """
    return max_assignments is None and analyze_enabled()


def count_pruned_rf_edges(count: int) -> None:
    """Account statically killed rf candidate edges (called by the grounding)."""
    STATS.pruned_rf_edges += count
