"""``repro-analyze``: static-analysis reports for litmus programs.

Prints, per catalogue test (all of them, or the names given on the command
line), what :mod:`repro.analyze.races` concluded statically: the per-thread
access summary, the may-race pairs, the race-freedom verdict, and which
models the SC fast path would answer for.  This is the human-readable
window onto the facts the enumeration layer consumes silently — use it to
understand why a program did (or did not) take the fast path.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..core.js_model import (
    ARMV8_FIX_MODEL,
    FINAL_MODEL,
    FINAL_MODEL_STRONG_TEAR,
    ORIGINAL_MODEL,
)
from .races import analyze_program, sc_fast_path_model

MODELS = (ORIGINAL_MODEL, ARMV8_FIX_MODEL, FINAL_MODEL, FINAL_MODEL_STRONG_TEAR)


def describe_program(name: str, program) -> str:
    """A multi-line static-analysis report for one named program."""
    analysis = analyze_program(program)
    lines = [f"{name}:"]
    lines.append(f"  accesses ({len(analysis.accesses)}):")
    for access in analysis.accesses:
        lines.append(f"    {access.describe()}")
    if analysis.race_pairs:
        lines.append(f"  may-race pairs ({len(analysis.race_pairs)}):")
        for a, b in analysis.race_pairs:
            lines.append(f"    {a.describe()}  x  {b.describe()}")
    else:
        lines.append("  may-race pairs: none")
    lines.append(
        "  definitely race-free: "
        + ("yes" if analysis.definitely_race_free else "no")
    )
    if analysis.uses_wait_notify:
        lines.append("  uses wait/notify: yes (SC fast path declines)")
    eligible = [
        model.name
        for model in MODELS
        if sc_fast_path_model(model)
        and analysis.definitely_race_free
        and not analysis.uses_wait_notify
    ]
    lines.append(
        "  SC fast path eligible under: " + (", ".join(eligible) or "no model")
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Static race/fast-path analysis of catalogue litmus tests.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="catalogue test names to analyze (default: the whole catalogue)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list catalogue test names and exit",
    )
    args = parser.parse_args(argv)

    from ..litmus.catalogue import all_tests, by_name

    if args.list:
        for test in all_tests():
            print(test.name)
        return 0
    if args.names:
        try:
            tests = [by_name(name) for name in args.names]
        except KeyError as exc:
            parser.error(f"unknown catalogue test: {exc}")
    else:
        tests = all_tests()
    race_free = 0
    for index, test in enumerate(tests):
        if index:
            print()
        print(describe_program(test.name, test.program))
        if analyze_program(test.program).definitely_race_free:
            race_free += 1
    print()
    print(
        f"repro-analyze: {race_free}/{len(tests)} program(s) statically "
        "race-free"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - console entry
    sys.exit(main())
