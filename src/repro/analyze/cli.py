"""``repro-analyze``: static-analysis reports for litmus programs.

Prints, per catalogue test (all of them, or the names given on the command
line), what :mod:`repro.analyze.races` concluded statically: the per-thread
access summary, the may-race pairs, the race-freedom verdict, and which
models the SC fast path would answer for.  This is the human-readable
window onto the facts the enumeration layer consumes silently — use it to
understand why a program did (or did not) take the fast path.

With ``--symmetry`` the report instead shows what
:mod:`repro.analyze.symmetry` computed: the canonical fingerprint, orbit
and group size of the relabeling pass, whether the program already is its
own canonical form, and the static independence partition.  ``--json``
emits the same facts machine-readably.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from ..core.js_model import (
    ARMV8_FIX_MODEL,
    FINAL_MODEL,
    FINAL_MODEL_STRONG_TEAR,
    ORIGINAL_MODEL,
)
from .races import analyze_program, sc_fast_path_model
from .symmetry import analyze_symmetry

MODELS = (ORIGINAL_MODEL, ARMV8_FIX_MODEL, FINAL_MODEL, FINAL_MODEL_STRONG_TEAR)


def describe_program(name: str, program) -> str:
    """A multi-line static-analysis report for one named program."""
    analysis = analyze_program(program)
    lines = [f"{name}:"]
    lines.append(f"  accesses ({len(analysis.accesses)}):")
    for access in analysis.accesses:
        lines.append(f"    {access.describe()}")
    if analysis.race_pairs:
        lines.append(f"  may-race pairs ({len(analysis.race_pairs)}):")
        for a, b in analysis.race_pairs:
            lines.append(f"    {a.describe()}  x  {b.describe()}")
    else:
        lines.append("  may-race pairs: none")
    lines.append(
        "  definitely race-free: "
        + ("yes" if analysis.definitely_race_free else "no")
    )
    if analysis.uses_wait_notify:
        lines.append("  uses wait/notify: yes (SC fast path declines)")
    eligible = [
        model.name
        for model in MODELS
        if sc_fast_path_model(model)
        and analysis.definitely_race_free
        and not analysis.uses_wait_notify
    ]
    lines.append(
        "  SC fast path eligible under: " + (", ".join(eligible) or "no model")
    )
    return "\n".join(lines)


def symmetry_facts(name: str, program) -> dict:
    """The symmetry engine's facts for one program, JSON-shaped."""
    analysis = analyze_symmetry(program)
    return {
        "name": name,
        "canonical_fingerprint": analysis.canonical_fingerprint,
        "orbit_size": analysis.orbit_size,
        "group_size": analysis.group_size,
        "group_capped": analysis.capped,
        "is_canonical_form": analysis.relabeling.is_identity,
        "independence_partition": [
            list(tids) for tids in analysis.components
        ],
    }


def describe_symmetry(name: str, program) -> str:
    """A multi-line symmetry report for one named program."""
    facts = symmetry_facts(name, program)
    lines = [f"{name}:"]
    lines.append(f"  canonical fingerprint: {facts['canonical_fingerprint'][:16]}")
    lines.append(
        f"  orbit size {facts['orbit_size']} of group size {facts['group_size']}"
        + (" (capped)" if facts["group_capped"] else "")
    )
    lines.append(
        "  canonical form: "
        + ("this program" if facts["is_canonical_form"] else "a relabeling")
    )
    lines.append(
        "  independence partition: "
        + " | ".join(
            "{" + ", ".join(f"t{t}" for t in tids) + "}"
            for tids in facts["independence_partition"]
        )
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Static race/fast-path analysis of catalogue litmus tests.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="catalogue test names to analyze (default: the whole catalogue)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list catalogue test names and exit",
    )
    parser.add_argument(
        "--symmetry",
        action="store_true",
        help="report canonical forms, orbit sizes and independence partitions",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="with --symmetry: emit the facts as a JSON array",
    )
    args = parser.parse_args(argv)
    if args.json and not args.symmetry:
        parser.error("--json requires --symmetry")

    from ..litmus.catalogue import all_tests, by_name

    if args.list:
        for test in all_tests():
            print(test.name)
        return 0
    if args.names:
        try:
            tests = [by_name(name) for name in args.names]
        except KeyError as exc:
            parser.error(f"unknown catalogue test: {exc}")
    else:
        tests = all_tests()
    if args.symmetry:
        if args.json:
            print(
                json.dumps(
                    [symmetry_facts(t.name, t.program) for t in tests], indent=2
                )
            )
            return 0
        canonical = 0
        for index, test in enumerate(tests):
            if index:
                print()
            print(describe_symmetry(test.name, test.program))
            if analyze_symmetry(test.program).relabeling.is_identity:
                canonical += 1
        print()
        print(
            f"repro-analyze: {canonical}/{len(tests)} program(s) already in "
            "canonical form"
        )
        return 0
    race_free = 0
    for index, test in enumerate(tests):
        if index:
            print()
        print(describe_program(test.name, test.program))
        if analyze_program(test.program).definitely_race_free:
            race_free += 1
    print()
    print(
        f"repro-analyze: {race_free}/{len(tests)} program(s) statically "
        "race-free"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - console entry
    sys.exit(main())
