"""Static analysis over litmus programs: race freedom, pruning facts, lint.

Three consumers, one pass (:func:`analyze_program` is memoized per program):

* the **SC fast path** — statically race-free programs answer boolean
  outcome/DRF queries through the SC interpreter under the final models
  (:func:`sc_fast_path_applies`, :func:`drf_fast_path`);
* **pruning facts** — per-read writer may-sets and dead-outcome rejection
  feeding :mod:`repro.lang.enumeration` / :mod:`repro.core.groundcore`;
* the **semantics-purity lint** (:mod:`repro.analyze.lint`, console script
  ``repro-lint``) and the analyzer CLI (:mod:`repro.analyze.cli`,
  ``repro-analyze``) — imported on demand, not here.

Everything is toggled by ``REPRO_ANALYZE`` (default on) and selects between
bit-identical verdict paths: cache keys and ``SEMANTICS_REVISION`` never see
the flag.
"""

from .races import (
    ANALYZE_ENV,
    STATS,
    AnalyzeStats,
    ProgramAnalysis,
    StaticAccess,
    analyze_enabled,
    analyze_program,
    count_pruned_rf_edges,
    drf_fast_path,
    outcome_statically_dead,
    rf_pruning_enabled,
    sc_fast_path_applies,
    sc_fast_path_model,
    static_race_verdict,
    statically_race_free,
    stats_delta,
    stats_snapshot,
)

__all__ = [
    "ANALYZE_ENV",
    "STATS",
    "AnalyzeStats",
    "ProgramAnalysis",
    "StaticAccess",
    "analyze_enabled",
    "analyze_program",
    "count_pruned_rf_edges",
    "drf_fast_path",
    "outcome_statically_dead",
    "rf_pruning_enabled",
    "sc_fast_path_applies",
    "sc_fast_path_model",
    "static_race_verdict",
    "statically_race_free",
    "stats_delta",
    "stats_snapshot",
]
