"""Static analysis over litmus programs: race freedom, pruning facts, lint.

Three consumers, one pass (:func:`analyze_program` is memoized per program):

* the **SC fast path** — statically race-free programs answer boolean
  outcome/DRF queries through the SC interpreter under the final models
  (:func:`sc_fast_path_applies`, :func:`drf_fast_path`);
* **pruning facts** — per-read writer may-sets and dead-outcome rejection
  feeding :mod:`repro.lang.enumeration` / :mod:`repro.core.groundcore`;
* the **semantics-purity lint** (:mod:`repro.analyze.lint`, console script
  ``repro-lint``) and the analyzer CLI (:mod:`repro.analyze.cli`,
  ``repro-analyze``) — imported on demand, not here.

Everything is toggled by ``REPRO_ANALYZE`` (default on) and selects between
bit-identical verdict paths: cache keys and ``SEMANTICS_REVISION`` never see
the flag.

The **symmetry engine** (:mod:`repro.analyze.symmetry`, toggled separately
by ``REPRO_SYMMETRY``) extends the layer from per-program facts to
cross-program structure: canonical forms under the verdict-preserving
relabeling group, orbit quotienting for the sweeps, the canonical cache
tier and the independence decomposition.
"""

from .races import (
    ANALYZE_ENV,
    STATS,
    AnalyzeStats,
    ProgramAnalysis,
    StaticAccess,
    analyze_enabled,
    analyze_program,
    count_pruned_rf_edges,
    drf_fast_path,
    outcome_statically_dead,
    rf_pruning_enabled,
    sc_fast_path_applies,
    sc_fast_path_model,
    static_race_verdict,
    statically_race_free,
    stats_delta,
    stats_snapshot,
)
from .symmetry import (
    SYMMETRY_ENV,
    Relabeling,
    SymmetryAnalysis,
    SymmetryStats,
    analyze_symmetry,
    independence_applies,
    independence_partition,
    independence_split,
    symmetry_enabled,
    symmetry_stats_delta,
    symmetry_stats_snapshot,
)
from .symmetry import STATS as SYMMETRY_STATS

__all__ = [
    "ANALYZE_ENV",
    "STATS",
    "AnalyzeStats",
    "ProgramAnalysis",
    "StaticAccess",
    "analyze_enabled",
    "analyze_program",
    "count_pruned_rf_edges",
    "drf_fast_path",
    "outcome_statically_dead",
    "rf_pruning_enabled",
    "sc_fast_path_applies",
    "sc_fast_path_model",
    "static_race_verdict",
    "statically_race_free",
    "stats_delta",
    "stats_snapshot",
    "SYMMETRY_ENV",
    "SYMMETRY_STATS",
    "Relabeling",
    "SymmetryAnalysis",
    "SymmetryStats",
    "analyze_symmetry",
    "independence_applies",
    "independence_partition",
    "independence_split",
    "symmetry_enabled",
    "symmetry_stats_delta",
    "symmetry_stats_snapshot",
]
