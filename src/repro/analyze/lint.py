"""Semantics-purity lint over the ``repro`` source tree (``repro-lint``).

Every verdict this project produces must be a pure function of (program,
model, spec) — that is what makes the verdict cache, the golden catalogue
regression and the bit-identity parity suites meaningful.  This module is
an AST pass enforcing the three ways that purity historically rots:

* **impure imports** (``impure-import``): wall-clock, randomness or locale
  modules imported inside a *verdict-path* package (the packages whose code
  can run between a query and its verdict).  Infrastructure packages
  (``dispatch``, ``service``) legitimately read clocks for retries and
  deadlines and are exempt from this rule.
* **environment reads** (``env-read`` / ``env-unregistered`` /
  ``env-dynamic``): every ``os.environ`` / ``os.getenv`` read must resolve
  to a knob declared in :data:`ENV_REGISTRY`; reads inside a verdict-path
  package additionally need an explicit pragma arguing why the knob cannot
  change a verdict, and reads whose variable name the resolver cannot
  trace to a string constant need a pragma wherever they live.
* **fingerprint drift** (``fingerprint-fields`` / ``registry-drift``): the
  dataclasses whose fields feed ``program_fingerprint`` and the cache-key
  preimages are pinned as a field digest per ``SEMANTICS_REVISION``.
  Adding, removing or retyping a field without bumping the revision would
  silently serve stale cached verdicts; the pin makes that a lint failure.
* **ambient mutable state** (``mutable-state``): module-level mutable
  containers (dict/list/set literals, comprehensions, or constructor
  calls) and mutable default arguments in verdict-path packages.  Ad-hoc
  module caches are how verdicts silently start depending on query order;
  shared memoization must go through the audited structures
  (``SignatureInterner``, ``_BoundedMemo`` — both exempt) or carry a
  justified pragma saying why the container cannot leak state between
  queries (e.g. a read-only registry).

Findings are suppressed line-by-line with a justified pragma::

    # lint: allow(env-read) — REPRO_ANALYZE only selects between
    # bit-identical verdict paths; it never changes an answer.

on the flagged line or within the two lines above it.  The justification
text after the rule name is mandatory — a bare ``allow`` is itself flagged.

Run as ``repro-lint`` (advisory, exit 0) or ``repro-lint --strict`` (CI
gate, exit 1 on any finding).
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Packages whose code can run between a query and its verdict.  ``dispatch``
#: and ``service`` are infrastructure: they schedule, persist and transport
#: verdicts but never compute one.
VERDICT_PATH_PACKAGES = frozenset(
    {"analyze", "armv8", "compile", "core", "imm", "lang", "litmus", "search"}
)

#: Modules whose import on the verdict path is a purity smell.
IMPURE_MODULES = frozenset({"time", "datetime", "random", "secrets", "locale"})

#: Every environment knob the project reads, with its one-line purpose.
#: ``repro-lint`` fails on reads of anything not listed here.
# lint: allow(mutable-state) — declarative knob registry, written only at
# import time; the lint reads it, no verdict code does.
ENV_REGISTRY: Dict[str, str] = {
    "REPRO_ANALYZE": "static analyzer on/off (bit-identical verdict paths)",
    "REPRO_SYMMETRY": "symmetry engine on/off (bit-identical verdict paths)",
    "REPRO_WORKERS": "dispatch pool width for sharded sweeps",
    "REPRO_SUPERVISE": "supervised dispatch engine on/off",
    "REPRO_RETRIES": "per-task retry budget under supervision",
    "REPRO_TASK_TIMEOUT": "per-task deadline under supervision (seconds)",
    "REPRO_RETRY_BACKOFF": "supervision retry backoff (seconds)",
    "REPRO_SHUTDOWN_GRACE": "pool shutdown grace period (seconds)",
    "REPRO_FAULT_PLAN": "deterministic fault-injection plan (testing)",
    "REPRO_VERDICT_CACHE": "verdict cache location (or off)",
    "REPRO_CACHE_QUOTA": "verdict cache size quota (bytes, K/M/G)",
    "REPRO_CACHE_BACKEND": "verdict cache backend (files/segments)",
    "REPRO_CORRUPT_TTL": "corrupt-entry quarantine TTL (seconds)",
    "REPRO_LRU_TIER": "in-process LRU tier capacity above the store",
    "REPRO_SEGMENT_BYTES": "segment-log store segment size",
    "REPRO_CHECKPOINT_DIR": "sweep checkpoint-journal directory",
    "REPRO_SERVICE_SOCKET": "verdict service unix socket path",
    "REPRO_SERVICE_HOST": "verdict service TCP host",
    "REPRO_SERVICE_PORT": "verdict service TCP port",
    "REPRO_SERVICE_QUEUE": "service admission queue depth",
    "REPRO_SERVICE_CONCURRENCY": "service concurrent request limit",
    "REPRO_SERVICE_DEADLINE": "service default per-request deadline",
    "REPRO_SERVICE_DRAIN": "service SIGTERM drain grace (seconds)",
    "REPRO_SERVICE_RETRY_AFTER": "service backpressure retry-after hint",
    "REPRO_SERVICE_BREAKER": "service circuit-breaker threshold",
    "REPRO_SERVICE_COOLDOWN": "service circuit-breaker cooldown",
    "REPRO_SERVICE_WORKERS": "service per-request dispatch pool width",
}

#: The dataclasses whose field lists feed ``program_fingerprint`` / the
#: cache-key preimages, per file (relative to the ``repro`` package root).
#: The lint digests their (name, annotation) field pairs in declaration
#: order; see :data:`PINNED_FIELD_DIGESTS`.
# lint: allow(mutable-state) — declarative pin registry, written only at
# import time; the lint reads it, no verdict code does.
FINGERPRINT_CLASS_REGISTRY: Dict[str, Tuple[str, ...]] = {
    "lang/ast.py": (
        "Register",
        "TypedAccess",
        "DataViewAccess",
        "Store",
        "Load",
        "Exchange",
        "AtomicAdd",
        "IfEq",
        "Wait",
        "Notify",
        "Thread",
        "Program",
    ),
    "lang/memory.py": (
        "SharedArrayBuffer",
        "ElementType",
        "TypedArrayView",
        "DataViewAccessor",
    ),
    "core/js_model.py": ("JsModel",),
}

#: Pinned fingerprint-field digests, keyed by ``SEMANTICS_REVISION``.  A
#: digest change means the structural fingerprint's input space changed:
#: either bump the revision (stale cache entries must die) and pin the new
#: digest under the new key, or revert the field change.
# lint: allow(mutable-state) — declarative pin registry, written only at
# import time; the lint reads it, no verdict code does.
PINNED_FIELD_DIGESTS: Dict[str, str] = {
    "2": "8c73cfd25f22eb17899bc7081d407865facc873cafe6ea6737299bdde2679822",
}

#: Constructor names whose module-level call builds a mutable container.
MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "OrderedDict", "defaultdict", "deque", "Counter"}
)

#: Memoization structures exempt from the mutable-state rule: both are
#: audited, bounded, and keyed so entries cannot alias across queries.
MEMO_STRUCTURES = frozenset({"SignatureInterner", "_BoundedMemo"})

_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow\(([a-z-]+)\)\s*(\S.*)?")
_PRAGMA_WINDOW = 2  # flagged line plus this many lines above


@dataclass(frozen=True)
class Finding:
    """One lint finding, formatted ``path:line: [rule] message``."""

    path: str
    line: int
    rule: str
    message: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _package_of(relpath: Path) -> str:
    """The top-level ``repro`` subpackage a file belongs to ("" at the root)."""
    return relpath.parts[0] if len(relpath.parts) > 1 else ""


def _is_verdict_path(relpath: Path) -> bool:
    package = _package_of(relpath)
    # Root-level modules sit above the packages; treat them as verdict-path
    # (conservative: nothing impure belongs there either).
    return package in VERDICT_PATH_PACKAGES or package == ""


def _pragma_allows(lines: Sequence[str], lineno: int, rule: str) -> Tuple[bool, bool]:
    """(suppressed, justified) for a finding at 1-based ``lineno``.

    A pragma suppresses only when it names the rule *and* carries a
    justification; a bare ``allow(rule)`` returns ``(True, False)`` so the
    caller can flag the missing justification instead.
    """
    for offset in range(0, _PRAGMA_WINDOW + 1):
        index = lineno - 1 - offset
        if index < 0:
            break
        match = _PRAGMA_RE.search(lines[index])
        if match and match.group(1) == rule:
            return True, bool(match.group(2))
    return False, False


def _module_env_constants(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "REPRO_..."`` string constants."""
    constants: Dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
            if isinstance(node.value.value, str):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        constants[target.id] = node.value.value
    return constants


def _env_read_sites(tree: ast.Module) -> List[Tuple[int, Optional[ast.expr]]]:
    """``(lineno, name expression)`` of every environment read in the module.

    Covers ``os.environ.get(...)``, ``os.environ[...]`` and
    ``os.getenv(...)`` (plus bare ``environ`` imported from ``os``).
    """

    def is_environ(node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute) and node.attr == "environ":
            return isinstance(node.value, ast.Name) and node.value.id == "os"
        return isinstance(node, ast.Name) and node.id == "environ"

    sites: List[Tuple[int, Optional[ast.expr]]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "get"
                and is_environ(func.value)
            ):
                sites.append((node.lineno, node.args[0] if node.args else None))
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "getenv"
                and isinstance(func.value, ast.Name)
                and func.value.id == "os"
            ):
                sites.append((node.lineno, node.args[0] if node.args else None))
        elif isinstance(node, ast.Subscript) and is_environ(node.value):
            slice_node = node.slice
            sites.append((node.lineno, slice_node))
    return sites


def _resolve_env_name(
    expr: Optional[ast.expr],
    local_constants: Dict[str, str],
    global_constants: Dict[str, Optional[str]],
) -> Optional[str]:
    """The environment-variable name an expression statically denotes."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.Name):
        if expr.id in local_constants:
            return local_constants[expr.id]
        # Cross-module constants (e.g. CACHE_ENV imported from .cache):
        # resolved through the tree-wide constant table, which maps a name
        # to None when two modules disagree on its value.
        return global_constants.get(expr.id)
    return None


def _check_imports(
    relpath: Path, tree: ast.Module, lines: Sequence[str]
) -> Iterable[Finding]:
    if not _is_verdict_path(relpath):
        return
    for node in ast.walk(tree):
        names: List[Tuple[int, str]] = []
        if isinstance(node, ast.Import):
            names = [(node.lineno, alias.name.split(".")[0]) for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            names = [(node.lineno, node.module.split(".")[0])]
        for lineno, module in names:
            if module not in IMPURE_MODULES:
                continue
            suppressed, justified = _pragma_allows(lines, lineno, "impure-import")
            if suppressed and justified:
                continue
            message = (
                f"verdict-path module imports {module!r} (wall-clock/"
                "randomness/locale state must not reach a verdict)"
            )
            if suppressed and not justified:
                message += "; pragma present but missing a justification"
            yield Finding(str(relpath), lineno, "impure-import", message)


def _check_env_reads(
    relpath: Path,
    tree: ast.Module,
    lines: Sequence[str],
    global_constants: Dict[str, Optional[str]],
) -> Iterable[Finding]:
    local_constants = _module_env_constants(tree)
    verdict_path = _is_verdict_path(relpath)
    for lineno, expr in _env_read_sites(tree):
        name = _resolve_env_name(expr, local_constants, global_constants)
        if name is None:
            rule, message = "env-dynamic", (
                "environment read through a dynamic variable name; the "
                "registry cannot vouch for it"
            )
        elif name not in ENV_REGISTRY:
            rule, message = "env-unregistered", (
                f"environment variable {name!r} is not in the declared "
                "registry (repro.analyze.lint.ENV_REGISTRY)"
            )
        elif verdict_path:
            rule, message = "env-read", (
                f"environment read of {name!r} inside a verdict-path "
                "package; justify why it cannot change a verdict"
            )
        else:
            continue
        suppressed, justified = _pragma_allows(lines, lineno, rule)
        if suppressed and justified:
            continue
        if suppressed and not justified:
            message += "; pragma present but missing a justification"
        yield Finding(str(relpath), lineno, rule, message)


def _mutable_value_kind(node: Optional[ast.expr]) -> Optional[str]:
    """How an expression builds a mutable container, or ``None``."""
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in MEMO_STRUCTURES:
            return None
        if name in MUTABLE_CONSTRUCTORS:
            return f"{name}()"
    return None


def _check_mutable_state(
    relpath: Path, tree: ast.Module, lines: Sequence[str]
) -> Iterable[Finding]:
    if not _is_verdict_path(relpath):
        return

    def emit(lineno: int, message: str) -> Iterable[Finding]:
        suppressed, justified = _pragma_allows(lines, lineno, "mutable-state")
        if suppressed and justified:
            return
        if suppressed and not justified:
            message += "; pragma present but missing a justification"
        yield Finding(str(relpath), lineno, "mutable-state", message)

    for node in tree.body:
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign):
            value, targets = node.value, [node.target]
        else:
            continue
        kind = _mutable_value_kind(value)
        if kind is None:
            continue
        plain = [t.id for t in targets if isinstance(t, ast.Name)]
        # Dunder module metadata (__all__ and friends) is read only by the
        # import system, never by verdict code.
        if plain and all(n.startswith("__") and n.endswith("__") for n in plain):
            continue
        names = ", ".join(plain) or "<target>"
        yield from emit(
            node.lineno,
            f"module-level mutable {kind} {names!r} on the verdict path; "
            "memoize through SignatureInterner/_BoundedMemo or justify "
            "why it cannot leak state between queries",
        )
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            kind = _mutable_value_kind(default)
            if kind is None:
                continue
            yield from emit(
                default.lineno,
                f"mutable {kind} default argument in {node.name!r}; a "
                "shared default accumulates state across calls — default "
                "to None (or a tuple) instead",
            )


def _class_fields(tree: ast.Module, class_name: str) -> Optional[List[Tuple[str, str]]]:
    """(name, annotation) of a class's annotated fields, declaration order."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields: List[Tuple[str, str]] = []
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    fields.append((stmt.target.id, ast.unparse(stmt.annotation)))
            return fields
    return None


def fingerprint_field_digest(package_root: Path) -> Tuple[str, List[Finding]]:
    """The current field digest of the fingerprint-relevant dataclasses.

    Returns the digest plus any ``registry-drift`` findings (a registered
    file or class that no longer exists — the registry itself went stale).
    """
    findings: List[Finding] = []
    table: Dict[str, Dict[str, List[Tuple[str, str]]]] = {}
    for relname, class_names in sorted(FINGERPRINT_CLASS_REGISTRY.items()):
        path = package_root / relname
        if not path.is_file():
            findings.append(
                Finding(
                    relname,
                    1,
                    "registry-drift",
                    "file named in FINGERPRINT_CLASS_REGISTRY does not exist",
                )
            )
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"))
        table[relname] = {}
        for class_name in class_names:
            fields = _class_fields(tree, class_name)
            if fields is None:
                findings.append(
                    Finding(
                        relname,
                        1,
                        "registry-drift",
                        f"class {class_name!r} named in "
                        "FINGERPRINT_CLASS_REGISTRY does not exist",
                    )
                )
                continue
            table[relname][class_name] = fields
    payload = json.dumps(table, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest(), findings


def _check_fingerprint_pin(package_root: Path) -> Iterable[Finding]:
    from ..dispatch.cache import SEMANTICS_REVISION

    digest, findings = fingerprint_field_digest(package_root)
    yield from findings
    pinned = PINNED_FIELD_DIGESTS.get(SEMANTICS_REVISION)
    if pinned is None:
        yield Finding(
            "analyze/lint.py",
            1,
            "fingerprint-fields",
            f"no pinned field digest for SEMANTICS_REVISION="
            f"{SEMANTICS_REVISION!r}; pin {digest!r} in PINNED_FIELD_DIGESTS",
        )
    elif pinned != digest:
        yield Finding(
            "analyze/lint.py",
            1,
            "fingerprint-fields",
            "fingerprint-relevant dataclass fields changed without a "
            f"SEMANTICS_REVISION bump (digest {digest!r}, pinned {pinned!r}); "
            "bump the revision and pin the new digest, or revert the field "
            "change",
        )


def _collect_global_constants(files: Sequence[Path], package_root: Path) -> Dict[str, Optional[str]]:
    """Tree-wide ``NAME -> "REPRO_*"`` constant table for import resolution.

    Names bound to different strings in different modules map to ``None``
    (ambiguous — the reader must use a pragma or a local constant).
    """
    table: Dict[str, Optional[str]] = {}
    for path in files:
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for name, value in _module_env_constants(tree).items():
            if name in table and table[name] != value:
                table[name] = None
            else:
                table[name] = value
    return table


def run_lint(package_root: Path) -> List[Finding]:
    """All findings over the ``repro`` package rooted at ``package_root``."""
    files = sorted(package_root.rglob("*.py"))
    global_constants = _collect_global_constants(files, package_root)
    findings: List[Finding] = []
    for path in files:
        relpath = path.relative_to(package_root)
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source)
        lines = source.splitlines()
        findings.extend(_check_imports(relpath, tree, lines))
        findings.extend(
            _check_env_reads(relpath, tree, lines, global_constants)
        )
        findings.extend(_check_mutable_state(relpath, tree, lines))
    findings.extend(_check_fingerprint_pin(package_root))
    return findings


def default_package_root() -> Path:
    """The installed ``repro`` package this lint module belongs to."""
    return Path(__file__).resolve().parents[1]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Semantics-purity lint over the repro source tree.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repro package root to lint (default: the installed package)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on any finding (the CI gate)",
    )
    parser.add_argument(
        "--print-digest",
        action="store_true",
        help="print the current fingerprint-field digest and exit",
    )
    args = parser.parse_args(argv)
    package_root = args.root if args.root is not None else default_package_root()
    if args.print_digest:
        digest, _findings = fingerprint_field_digest(package_root)
        print(digest)
        return 0
    findings = run_lint(package_root)
    for finding in findings:
        print(finding.describe())
    print(
        f"repro-lint: {len(findings)} finding(s) over {package_root}"
        + (" [strict]" if args.strict else "")
    )
    return 1 if (args.strict and findings) else 0


if __name__ == "__main__":  # pragma: no cover - console entry
    sys.exit(main())
