"""Static symmetry analysis: canonical program forms and orbit quotienting.

The §5 sweeps and the litmus catalogue evaluate large families of programs
that differ only by *sound relabelings* — permuting threads, renaming
memory locations, renaming registers.  Every verdict this project produces
(outcome allowed, DRF, SC-DRF hit, compilation hit) is invariant under
those relabelings, so evaluating more than one member of an isomorphism
class is wasted enumeration.  This module computes, per
:class:`~repro.lang.ast.Program`, a **canonical form** under the
verdict-preserving symmetry group together with the relabeling that
produced it, so that:

* the sweeps evaluate one representative per orbit and replay its verdict
  onto the members (:mod:`repro.search.counterexamples`);
* the verdict cache gains a secondary index keyed by the canonical
  fingerprint, so isomorphic programs hit warm verdicts across sweeps and
  corpora (:func:`repro.dispatch.cache.get_or_compute_aliased`);
* boolean outcome queries over threads with disjoint byte footprints
  factor into independent per-component queries
  (:func:`independence_split`, consumed by
  :func:`repro.lang.enumeration.outcome_allowed`).

The symmetry group
------------------

* **Thread permutation** — agents are anonymous: every relation of the
  model (sb, asw, sw, hb, tot) is defined per event, never per thread
  index, so permuting the thread tuple permutes outcomes by the same map
  and preserves every verdict.
* **Location renaming** — for a buffer whose every access is a
  :class:`~repro.lang.ast.TypedAccess` through one view shape (same
  element type and byte offset), any bijection of the *used* element
  indices onto ``0..k-1`` preserves byte-range equality, disjointness,
  width, alignment and tear-freedom (distinct elements never overlap, and
  Init zero-fills uniformly).  Buffers accessed through mixed view shapes
  or DataViews keep their indices (the renaming would change overlap
  structure).  Buffer and view *names* are normalised positionally — they
  never reach a memory-model event.
* **Register renaming** — registers are thread-local; outcomes rename by
  the same per-thread map.

**Value renaming is deliberately excluded**: stored values pass through
byte encode/decode (wrapping, per-byte rf choices, tearing), so permuting
the value alphabet is *not* verdict-preserving in general.

Everything is toggled by ``REPRO_SYMMETRY`` (default on) and — like
``REPRO_ANALYZE`` — only ever selects between bit-identical verdict
paths: the flag is not part of any primary cache key and
``SEMANTICS_REVISION`` is untouched.  The canonical *alias* keys the
cache tier writes are sound on their own terms: a single alias key is
only ever shared by (program, query) pairs whose verdicts are provably
equal under the group above, and every alias hit re-checks the inverse
relabeling's parity before the verdict is replayed.

This module must not import :mod:`repro.lang.enumeration` (or anything
that does) at module level — the enumeration imports us for the
independence decomposition — so all ``repro.lang`` imports are deferred
exactly like :mod:`repro.analyze.races` defers ``thread_paths``.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field as dataclasses_field, fields
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..dispatch.cache import DISABLED_ENV_VALUES, fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids the import cycle
    from ..core.js_model import JsModel
    from ..lang.ast import Outcome, Program

SYMMETRY_ENV = "REPRO_SYMMETRY"

GROUP_CAP = 720
"""Most candidate relabelings enumerated per program.

Past the cap the pass degrades gracefully (thread permutations only, then
the identity), counting :attr:`SymmetryStats.group_capped` — a capped
canonical form is still a *valid* relabeling, it just quotients less.
"""


def symmetry_enabled() -> bool:
    """Is the symmetry engine on (the default) or disabled via the environment?

    ``REPRO_SYMMETRY=off`` (or ``0``/``no``/``none``/``disabled``) turns the
    orbit quotient, the canonical cache tier and the independence
    decomposition off; unset or any other value leaves them on.
    """
    # lint: allow(env-read) — REPRO_SYMMETRY is a registered knob selecting
    # between bit-identical verdict paths; it never changes an answer.
    raw = os.environ.get(SYMMETRY_ENV, "").strip().lower()
    return not raw or raw not in DISABLED_ENV_VALUES


# ---------------------------------------------------------------------------
# symmetry counters
# ---------------------------------------------------------------------------


@dataclass
class SymmetryStats:
    """Process-wide symmetry counters (mirrors :class:`AnalyzeStats`).

    ``orbits_seen``/``members_skipped`` count sweep-side quotienting (one
    representative evaluated per orbit, members replayed);
    ``canonical_cache_hits`` counts verdicts served through the canonical
    alias key of the verdict cache; ``parity_failures`` counts alias hits
    rejected by the read-back relabeling parity check (each one recomputes
    instead of replaying); ``independent_splits`` counts boolean queries
    factored over disjoint thread components.  Multi-worker sweeps count
    the *parent's* view only, exactly like ``cache_stats``.
    """

    programs_canonicalized: int = 0
    orbits_seen: int = 0
    members_skipped: int = 0
    canonical_cache_hits: int = 0
    parity_failures: int = 0
    independent_splits: int = 0
    group_capped: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def delta(self, before: Mapping[str, int]) -> Dict[str, int]:
        """Counter increments since a :meth:`snapshot` taken earlier."""
        return {name: value - before.get(name, 0) for name, value in self.snapshot().items()}

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)


STATS = SymmetryStats()


def symmetry_stats_snapshot() -> Dict[str, int]:
    return STATS.snapshot()


def symmetry_stats_delta(before: Mapping[str, int]) -> Dict[str, int]:
    return STATS.delta(before)


def count_canonical_hit() -> None:
    """Account one verdict served through the canonical cache tier."""
    STATS.canonical_cache_hits += 1


# ---------------------------------------------------------------------------
# relabelings
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Relabeling:
    """The renaming taking an original program to its canonical form.

    ``thread_order[i]`` is the *original* tid standing at canonical
    position ``i``; ``register_maps[t]`` maps original thread ``t``'s
    register names to their canonical names.  Outcomes map both ways:
    :meth:`map_outcome` takes original outcome keys (``"1:r0"``) to
    canonical ones, :meth:`unmap_outcome` inverts it.
    """

    thread_order: Tuple[int, ...]
    register_maps: Tuple[Tuple[Tuple[str, str], ...], ...]

    @property
    def is_identity(self) -> bool:
        return self.thread_order == tuple(range(len(self.thread_order))) and all(
            old == new for per_thread in self.register_maps for old, new in per_thread
        )

    def _canonical_tid(self, original_tid: int) -> int:
        return self.thread_order.index(original_tid)

    def map_outcome(self, outcome: Mapping[str, int]) -> Optional[Dict[str, int]]:
        """Original outcome keys to canonical ones; ``None`` when unmappable.

        A key is unmappable when its thread index does not parse or its
        register never occurs in that thread — the caller then stands
        aside instead of guessing.
        """
        mapped: Dict[str, int] = {}
        for key, value in outcome.items():
            tid_text, sep, register = key.partition(":")
            if not sep or not tid_text.isdigit():
                return None
            tid = int(tid_text)
            if not 0 <= tid < len(self.register_maps):
                return None
            renamed = dict(self.register_maps[tid]).get(register)
            if renamed is None:
                return None
            mapped[f"{self._canonical_tid(tid)}:{renamed}"] = value
        return mapped

    def unmap_outcome(self, outcome: Mapping[str, int]) -> Optional[Dict[str, int]]:
        """Canonical outcome keys back to the original labeling."""
        unmapped: Dict[str, int] = {}
        for key, value in outcome.items():
            tid_text, sep, register = key.partition(":")
            if not sep or not tid_text.isdigit():
                return None
            position = int(tid_text)
            if not 0 <= position < len(self.thread_order):
                return None
            original_tid = self.thread_order[position]
            inverse = {new: old for old, new in self.register_maps[original_tid]}
            original_register = inverse.get(register)
            if original_register is None:
                return None
            unmapped[f"{original_tid}:{original_register}"] = value
        return unmapped

    def parity_ok(self) -> bool:
        """Is the relabeling a structural bijection that round-trips?

        Checked on every canonical cache hit before a verdict is replayed:
        the thread order must be a permutation, every register map must be
        injective both ways, and mapping then unmapping a probe outcome
        over every register must reproduce it exactly.
        """
        if sorted(self.thread_order) != list(range(len(self.thread_order))):
            return False
        for per_thread in self.register_maps:
            olds = [old for old, _new in per_thread]
            news = [new for _old, new in per_thread]
            if len(set(olds)) != len(olds) or len(set(news)) != len(news):
                return False
        probe = {
            f"{tid}:{old}": 0
            for tid, per_thread in enumerate(self.register_maps)
            for old, _new in per_thread
        }
        mapped = self.map_outcome(probe)
        return mapped is not None and self.unmap_outcome(mapped) == probe


def alias_parity(
    analysis: "SymmetryAnalysis", spec: Optional[Mapping[str, int]] = None
) -> Callable[[Any], bool]:
    """The read-back parity predicate for one canonical-alias lookup.

    Returns a callable the cache tier invokes with the alias-hit verdict;
    a failed check counts :attr:`SymmetryStats.parity_failures` and forces
    a recompute instead of replaying the verdict.
    """

    def check(_verdict: Any) -> bool:
        ok = analysis.relabeling.parity_ok()
        if ok and spec is not None:
            mapped = analysis.relabeling.map_outcome(spec)
            ok = (
                mapped is not None
                and analysis.relabeling.unmap_outcome(mapped) == dict(spec)
            )
        if not ok:
            STATS.parity_failures += 1
        return ok

    return check


# ---------------------------------------------------------------------------
# the canonical-form pass
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SymmetryAnalysis:
    """Everything the canonical-form pass proves about one program.

    ``canonical_program`` is the lexicographically minimal relabeled form,
    ``relabeling`` the group element that produced it (original →
    canonical), ``orbit_size`` the number of *distinct* programs among the
    enumerated candidate relabelings (1 means the program is orbit-trivial
    under the group), and ``components`` the independence partition of the
    thread indices by byte-footprint overlap.
    """

    canonical_key: Tuple
    orbit_size: int
    group_size: int
    capped: bool
    thread_order: Tuple[int, ...] = dataclasses_field(
        repr=False, compare=False, default=()
    )
    register_numberings: Any = dataclasses_field(
        repr=False, compare=False, default=None
    )
    source_program: "Program" = dataclasses_field(repr=False, compare=False, default=None)
    index_maps: Any = dataclasses_field(repr=False, compare=False, default=None)

    def _memo(self, name: str, compute) -> Any:
        cached = self.__dict__.get(name)
        if cached is None:
            cached = compute()
            object.__setattr__(self, name, cached)
        return cached

    @property
    def relabeling(self) -> Relabeling:
        """The original → canonical group element (built lazily).

        Uncached sweeps deduplicate orbits on :attr:`canonical_key` alone;
        the :class:`Relabeling` (and its per-thread sorted register maps)
        is only paid for when a cache alias, a parity check or an outcome
        mapping actually needs it.
        """
        return self._memo(
            "_relabeling_memo",
            lambda: Relabeling(
                thread_order=self.thread_order,
                register_maps=tuple(
                    tuple(
                        sorted(
                            (name, f"r{number}")
                            for name, number in numbering.items()
                        )
                    )
                    for numbering in self.register_numberings
                ),
            ),
        )

    @property
    def canonical_fingerprint(self) -> str:
        """The content-addressed name of the canonical form (lazy).

        Deterministic across processes and runs — it feeds the canonical
        alias keys of the verdict cache — but only computed when someone
        actually needs it: the quotiented sweeps deduplicate orbits on the
        raw :attr:`canonical_key` tuple and never pay the hash unless a
        cache is attached.
        """
        return self._memo(
            "_canonical_fingerprint_memo",
            lambda: fingerprint(
                "symmetry-canonical",
                tuple(buffer.byte_length for buffer in self.source_program.buffers),
                self.canonical_key,
            ),
        )

    @property
    def canonical_program(self) -> "Program":
        """The canonical form as a real :class:`Program` (built lazily).

        Sweep quotienting and the cache tier only need the key and the
        fingerprint; the AST rebuild is paid on first use (CLI reports,
        parity tests).
        """
        return self._memo(
            "_canonical_program_memo",
            lambda: _relabel_program(
                self.source_program, self.thread_order, self.index_maps
            )[0],
        )

    @property
    def components(self) -> Tuple[Tuple[int, ...], ...]:
        """The independence partition of the thread indices (lazy)."""
        return self._memo(
            "_components_memo", lambda: independence_partition(self.source_program)
        )

    def describe(self) -> str:
        lines = [
            f"canonical fingerprint: {self.canonical_fingerprint[:16]}…",
            f"orbit size: {self.orbit_size} "
            f"(group of {self.group_size} candidate relabeling(s)"
            + (", capped)" if self.capped else ")"),
            "relabeling: "
            + ("identity" if self.relabeling.is_identity else "non-trivial"),
            "independence partition: "
            + " | ".join(
                "{" + ", ".join(f"t{t}" for t in tids) + "}"
                for tids in self.components
            ),
        ]
        return "\n".join(lines)


def _iter_statements(statements) -> Any:
    """Every statement, recursing into conditional branches, in walk order."""
    for stmt in statements:
        yield stmt
        for attr in ("then", "otherwise"):
            yield from _iter_statements(getattr(stmt, attr, ()))


# Lazily-bound lang.ast module: layering bars a module-level lang import
# here (lang imports analyze.races), and a per-call deferred import is
# import-machinery overhead in the per-program hot path.
_LANG_AST = None


def _lang_ast():
    global _LANG_AST
    if _LANG_AST is None:
        from ..lang import ast as lang_ast

        _LANG_AST = lang_ast
    return _LANG_AST


def _buffer_renaming_slots(program: "Program") -> Dict[str, Tuple[int, ...]]:
    """Per buffer: the sorted used element indices, when renaming is sound.

    A buffer is *renameable* when every access to it is a ``TypedAccess``
    through one view shape — the same element type and byte offset — so a
    bijection of the used indices preserves all overlap structure.  Buffers
    touched through DataViews or mixed view shapes are omitted (identity).
    """
    TypedAccess = _lang_ast().TypedAccess

    used: Dict[str, set] = {}
    shapes: Dict[str, set] = {}
    tainted: set = set()
    # Explicit work stack, direct ``view.buffer.name`` chain: this runs
    # once per program inside sweeps, so the recursive-generator resume
    # and the three chained ``.block`` properties are worth avoiding.
    stack: list = [
        stmt for thread in program.threads for stmt in thread.statements
    ]
    while stack:
        stmt = stack.pop()
        then = getattr(stmt, "then", None)
        if then is not None:
            stack.extend(then)
            stack.extend(stmt.otherwise)
        access = getattr(stmt, "access", None)
        if access is None:
            continue
        view = access.view
        block = view.buffer.name
        if not isinstance(access, TypedAccess):
            tainted.add(block)
            continue
        element = view.element
        shapes.setdefault(block, set()).add(
            (element.name, element.width, element.signed, view.byte_offset)
        )
        used.setdefault(block, set()).add(access.index)
    slots: Dict[str, Tuple[int, ...]] = {}
    for block, indices in used.items():
        if block in tainted or len(shapes.get(block, ())) != 1:
            continue
        slots[block] = tuple(sorted(indices))
    return slots


def _relabel_program(
    program: "Program",
    thread_order: Sequence[int],
    index_maps: Mapping[str, Mapping[int, int]],
) -> Tuple["Program", Relabeling]:
    """Rebuild ``program`` under one candidate relabeling.

    ``thread_order[i]`` is the original tid placed at canonical position
    ``i``; ``index_maps`` renames element indices per renameable buffer.
    Buffers are renamed positionally (``b0``, ``b1``, …), views get
    structural names, thread names are dropped, and each thread's
    registers are renamed ``r0``, ``r1``, … in first-occurrence order.
    """
    from ..lang.ast import (
        AtomicAdd,
        DataViewAccess,
        Exchange,
        IfEq,
        Load,
        Notify,
        Program,
        Register,
        Store,
        Thread,
        TypedAccess,
        Wait,
    )
    from ..lang.memory import DataViewAccessor, SharedArrayBuffer, TypedArrayView

    buffer_by_name = {}
    for position, buffer in enumerate(program.buffers):
        buffer_by_name[buffer.name] = SharedArrayBuffer(
            name=f"b{position}", byte_length=buffer.byte_length
        )
    view_memo: Dict[Tuple, Any] = {}

    def relabel_view(view) -> Any:
        new_buffer = buffer_by_name[view.buffer.name]
        if isinstance(view, TypedArrayView):
            key = ("typed", view.buffer.name, view.element.name, view.byte_offset)
            if key not in view_memo:
                view_memo[key] = TypedArrayView(
                    name=f"{new_buffer.name}.{view.element.name}@{view.byte_offset}",
                    buffer=new_buffer,
                    element=view.element,
                    byte_offset=view.byte_offset,
                )
        else:
            key = ("dataview", view.buffer.name)
            if key not in view_memo:
                view_memo[key] = DataViewAccessor(
                    name=f"{new_buffer.name}.dv", buffer=new_buffer
                )
        return view_memo[key]

    def relabel_access(access):
        if isinstance(access, TypedAccess):
            renamed = index_maps.get(access.block, {})
            return TypedAccess(
                view=relabel_view(access.view),
                index=renamed.get(access.index, access.index),
            )
        return DataViewAccess(
            view=relabel_view(access.view),
            byte_offset=access.byte_offset,
            width=access.width,
        )

    register_maps: List[Dict[str, str]] = [dict() for _ in program.threads]

    def relabel_register(tid: int, register) -> Any:
        names = register_maps[tid]
        if register.name not in names:
            names[register.name] = f"r{len(names)}"
        return Register(names[register.name])

    def relabel_statement(tid: int, stmt):
        if isinstance(stmt, Store):
            value = stmt.value
            if isinstance(value, Register):
                value = relabel_register(tid, value)
            return Store(relabel_access(stmt.access), value, atomic=stmt.atomic)
        if isinstance(stmt, Load):
            return Load(
                relabel_register(tid, stmt.dest),
                relabel_access(stmt.access),
                atomic=stmt.atomic,
            )
        if isinstance(stmt, Exchange):
            value = stmt.value
            if isinstance(value, Register):
                value = relabel_register(tid, value)
            return Exchange(relabel_register(tid, stmt.dest), relabel_access(stmt.access), value)
        if isinstance(stmt, AtomicAdd):
            return AtomicAdd(
                relabel_register(tid, stmt.dest), relabel_access(stmt.access), stmt.value
            )
        if isinstance(stmt, IfEq):
            register = relabel_register(tid, stmt.register)
            then = tuple(relabel_statement(tid, s) for s in stmt.then)
            otherwise = tuple(relabel_statement(tid, s) for s in stmt.otherwise)
            return IfEq(register, stmt.constant, then=then, otherwise=otherwise)
        if isinstance(stmt, Wait):
            return Wait(relabel_access(stmt.access), stmt.expected)
        if isinstance(stmt, Notify):
            dest = stmt.dest
            if dest is not None:
                dest = relabel_register(tid, dest)
            return Notify(relabel_access(stmt.access), dest=dest)
        raise TypeError(  # pragma: no cover - the AST is closed
            f"cannot relabel statement of type {type(stmt).__name__}"
        )

    threads = tuple(
        Thread(
            tuple(
                relabel_statement(original_tid, stmt)
                for stmt in program.threads[original_tid].statements
            )
        )
        for original_tid in thread_order
    )
    relabeled = Program(
        name="canonical",
        buffers=tuple(buffer_by_name[b.name] for b in program.buffers),
        threads=threads,
        description="",
    )
    relabeling = Relabeling(
        thread_order=tuple(thread_order),
        register_maps=tuple(
            tuple(sorted(names.items())) for names in register_maps
        ),
    )
    return relabeled, relabeling


def _encode_thread(
    thread,
    buffer_positions: Mapping[str, int],
    index_maps: Mapping[str, Mapping[int, int]],
) -> Tuple[Tuple, Dict[str, int]]:
    """Encode one thread under one index renaming as a comparable tuple.

    The encoding is a *flat* token stream — a pure structural image of the
    thread with every name normalised away: buffers by position, views by
    shape, registers by first-occurrence number (the same walk order
    :func:`_relabel_program` uses, so the returned ``{original name:
    number}`` map *is* that candidate's register relabeling).  Each opcode
    fixes the arity of its payload and branch bodies are bracketed, so the
    stream parses back uniquely; element-wise tuple comparison stays
    well-typed because at any first-differing offset both streams hold the
    same scalar kind (opcodes and brackets are strings, payload slots line
    up by opcode).  One tuple per thread — no AST rebuild, no nested
    allocations — keeps the pass cheap enough to run per program inside a
    sweep.
    """
    ast = _lang_ast()
    AtomicAdd, Exchange, IfEq, Load = ast.AtomicAdd, ast.Exchange, ast.IfEq, ast.Load
    Notify, Register, Store = ast.Notify, ast.Register, ast.Store
    TypedAccess, Wait = ast.TypedAccess, ast.Wait

    registers: Dict[str, int] = {}
    out: list = []
    emit = out.append

    def reg(register) -> int:
        number = registers.get(register.name)
        if number is None:
            number = registers[register.name] = len(registers)
        return number

    def emit_value(value) -> None:
        if isinstance(value, Register):
            emit("r")
            emit(reg(value))
        else:
            emit("v")
            emit(value)

    def emit_access(access) -> None:
        # ``view.buffer.name`` is ``access.block`` without the three
        # chained property calls — this is the hottest line of the pass.
        view = access.view
        block = view.buffer.name
        if isinstance(access, TypedAccess):
            renamed = index_maps.get(block)
            emit("t")
            emit(buffer_positions[block])
            emit(view.element.name)
            emit(view.byte_offset)
            emit(renamed[access.index] if renamed is not None else access.index)
        else:
            emit("d")
            emit(buffer_positions[block])
            emit(access.byte_offset)
            emit(access.width)

    def emit_stmt(stmt) -> None:
        # Register numbering must follow _relabel_program's occurrence
        # order, so the reg()/emit_value() call order below is load-bearing.
        if isinstance(stmt, Store):
            emit("st")
            emit_access(stmt.access)
            emit_value(stmt.value)
            emit(stmt.atomic)
        elif isinstance(stmt, Load):
            emit("ld")
            emit(reg(stmt.dest))
            emit_access(stmt.access)
            emit(stmt.atomic)
        elif isinstance(stmt, Exchange):
            emit("xc")
            emit_value(stmt.value)
            emit(reg(stmt.dest))
            emit_access(stmt.access)
        elif isinstance(stmt, AtomicAdd):
            emit("aa")
            emit(reg(stmt.dest))
            emit_access(stmt.access)
            emit(stmt.value)
        elif isinstance(stmt, IfEq):
            emit("if")
            emit(reg(stmt.register))
            emit(stmt.constant)
            emit("(")
            for s in stmt.then:
                emit_stmt(s)
            emit("|")
            for s in stmt.otherwise:
                emit_stmt(s)
            emit(")")
        elif isinstance(stmt, Wait):
            emit("wa")
            emit_access(stmt.access)
            emit(stmt.expected)
        elif isinstance(stmt, Notify):
            emit("no")
            emit_access(stmt.access)
            # -1, not None: tokens must stay totally ordered.
            emit(reg(stmt.dest) if stmt.dest is not None else -1)
        else:  # pragma: no cover - the AST is closed
            raise TypeError(
                f"cannot encode statement of type {type(stmt).__name__}"
            )

    for stmt in thread.statements:
        emit_stmt(stmt)
    return tuple(out), registers


def _factorial(n: int) -> int:
    result = 1
    for k in range(2, n + 1):
        result *= k
    return result


def analyze_symmetry(program: "Program") -> SymmetryAnalysis:
    """The canonical-form pass for one program (memoized on the instance).

    Enumerates the candidate relabelings — thread permutations crossed
    with per-buffer used-index bijections onto ``0..k-1`` — normalises
    each (names, registers), and keeps the lexicographically minimal
    encoding.  The memo lives in the instance ``__dict__`` exactly like
    ``_analyze_memo`` / ``_fingerprint_memo``.
    """
    memo = program.__dict__.get("_symmetry_memo")
    if memo is not None:
        return memo

    slots = _buffer_renaming_slots(program)
    thread_count = len(program.threads)

    # Thread permutations are never enumerated: the minimal candidate key
    # over all permutations of a fixed per-thread encoding multiset is its
    # sorted order, so the pass is linear in the number of index-renaming
    # combos and only those are capped.
    index_combo_count = 1
    for indices in slots.values():
        index_combo_count *= _factorial(len(indices))
    capped = index_combo_count > GROUP_CAP
    if capped:
        STATS.group_capped += 1
    if capped or index_combo_count == 1:
        # One candidate renaming only — map each block's sorted used
        # indices positionally onto 0..k-1.  Same dict the general path
        # would build, without the product/zip machinery; this is the
        # common case (every single-location sweep program lands here).
        combos = [
            {
                block: {index: position for position, index in enumerate(indices)}
                for block, indices in slots.items()
            }
        ]
    else:
        assignments = [
            list(itertools.permutations(range(len(indices))))
            for indices in slots.values()
        ]
        blocks = list(slots.keys())
        combos = [
            {
                block: dict(zip(slots[block], assignment))
                for block, assignment in zip(blocks, combo)
            }
            for combo in itertools.product(*assignments)
        ]
    buffer_positions = {
        buffer.name: position for position, buffer in enumerate(program.buffers)
    }

    encoded = [
        [
            _encode_thread(thread, buffer_positions, index_maps)
            for thread in program.threads
        ]
        for index_maps in combos
    ]

    thread_factorial = _factorial(thread_count)
    best_key: Optional[Tuple] = None
    best_combo = 0
    best_order: Tuple[int, ...] = tuple(range(thread_count))
    multiset_images: Dict[Tuple, int] = {}
    for combo_index, per_thread in enumerate(encoded):
        # Stable sort: equal encodings keep original thread order, so the
        # chosen relabeling is deterministic per program.
        order = tuple(
            sorted(range(thread_count), key=lambda tid: per_thread[tid][0])
        )
        key = tuple(per_thread[tid][0] for tid in order)
        if key not in multiset_images:
            # Distinct permutation images of this encoding multiset:
            # n! / prod(multiplicity!) per distinct multiset; different
            # multisets have disjoint image sets, so the sum is exact.
            images = thread_factorial
            run_length = 1
            for position in range(1, thread_count):
                if key[position] == key[position - 1]:
                    run_length += 1
                    images //= run_length
                else:
                    run_length = 1
            multiset_images[key] = images
        if best_key is None or key < best_key:
            best_key = key
            best_combo = combo_index
            best_order = order

    analysis = SymmetryAnalysis(
        canonical_key=best_key,
        orbit_size=sum(multiset_images.values()),
        group_size=thread_factorial * len(combos),
        capped=capped,
        thread_order=tuple(best_order),
        register_numberings=tuple(
            numbering for _encoding, numbering in encoded[best_combo]
        ),
        source_program=program,
        index_maps=combos[best_combo],
    )
    STATS.programs_canonicalized += 1
    object.__setattr__(program, "_symmetry_memo", analysis)
    return analysis


def sweep_canonical(program: "Program") -> Optional[SymmetryAnalysis]:
    """The symmetry analysis for quotiented sweeps, or ``None`` when off."""
    if not symmetry_enabled():
        return None
    return analyze_symmetry(program)


# ---------------------------------------------------------------------------
# independence decomposition
# ---------------------------------------------------------------------------


def _thread_footprints(program: "Program") -> List[set]:
    footprints: List[set] = []
    for thread in program.threads:
        bytes_touched: set = set()
        for stmt in _iter_statements(thread.statements):
            access = getattr(stmt, "access", None)
            if access is None:
                continue
            rng = access.byte_range()
            bytes_touched.update((access.block, loc) for loc in rng)
        footprints.append(bytes_touched)
    return footprints


def independence_partition(program: "Program") -> Tuple[Tuple[int, ...], ...]:
    """Thread indices grouped into byte-footprint-overlap components.

    Two threads land in one component when their byte footprints
    intersect (directly or transitively).  Threads in different
    components share no location, so no rf, sw, sc-order or race edge can
    ever connect their events — the static fact the boolean-query
    decomposition rests on.
    """
    footprints = _thread_footprints(program)
    parent = list(range(len(footprints)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i in range(len(footprints)):
        for j in range(i + 1, len(footprints)):
            if footprints[i] & footprints[j]:
                parent[find(i)] = find(j)
    components: Dict[int, List[int]] = {}
    for tid in range(len(footprints)):
        components.setdefault(find(tid), []).append(tid)
    return tuple(
        tuple(sorted(tids))
        for tids in sorted(components.values(), key=lambda tids: min(tids))
    )


def independence_applies(
    program: "Program",
    model: "JsModel",
    extra_asw: Sequence[Tuple[int, int]] = (),
    max_assignments: Optional[int] = None,
) -> bool:
    """May a boolean outcome query factor over disjoint thread components?

    Same restrictions as the PR 9 SC fast path: final (simplified-sw,
    final SC-atomics) models only — factored-out components are answered
    by the SC interpreter, which under-approximates the ORIGINAL /
    ARMV8_FIX models — no wait/notify (a blocked wait is invisible to the
    SC oracle), no budget (budget semantics are charged against the
    undecomposed assignment space) and no extra ``asw`` edges (they are
    not in the program text, so they could bridge components).
    """
    if not symmetry_enabled():
        return False
    if max_assignments is not None or tuple(extra_asw):
        return False
    from .races import sc_fast_path_model

    if not sc_fast_path_model(model):
        return False
    if program.thread_count < 2 or program.uses_wait_notify():
        return False
    return len(analyze_symmetry(program).components) >= 2


def independence_split(
    program: "Program", spec: "Outcome"
) -> Optional[List[Tuple[Tuple[int, ...], "Program", Dict[str, int]]]]:
    """Factor ``(program, spec)`` into per-component subqueries.

    Returns ``(component tids, subprogram, remapped spec)`` triples, or
    ``None`` when some spec key cannot be attributed to a thread (the
    caller then falls through to the undecomposed path).  The overall
    verdict is the conjunction of the per-component verdicts: events of
    different components share no byte, so rf/sw/hb/tot constraints and
    outcomes all factor, and ``tot`` witnesses interleave freely.
    """
    from ..lang.ast import Program

    by_tid: Dict[int, Dict[str, int]] = {}
    for key, value in spec.items():
        tid_text, sep, register = key.partition(":")
        if not sep or not tid_text.isdigit():
            return None
        tid = int(tid_text)
        if not 0 <= tid < program.thread_count:
            return None
        by_tid.setdefault(tid, {})[register] = value
    parts: List[Tuple[Tuple[int, ...], "Program", Dict[str, int]]] = []
    for tids in analyze_symmetry(program).components:
        subprogram = Program(
            name=f"{program.name}#part{tids[0]}",
            buffers=program.buffers,
            threads=tuple(program.threads[tid] for tid in tids),
            description=program.description,
        )
        subspec: Dict[str, int] = {}
        for position, tid in enumerate(tids):
            for register, value in by_tid.get(tid, {}).items():
                subspec[f"{position}:{register}"] = value
        parts.append((tids, subprogram, subspec))
    return parts


def count_independent_split() -> None:
    """Account one boolean query factored over independent components."""
    STATS.independent_splits += 1
