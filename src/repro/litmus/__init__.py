"""Litmus tests: the paper's figures, classic shapes, a diy-style generator and a runner."""

from .catalogue import (
    ARMV8_FIX,
    Expectation,
    FINAL,
    LitmusTest,
    ORIGINAL,
    SC,
    STRONG_TEAR,
    all_tests,
    by_name,
    classic_tests,
    mixed_size_tests,
    paper_tests,
)
from .generator import GeneratorConfig, generate_arm_corpus, generate_js_corpus
from .runner import (
    ExpectationResult,
    TestResult,
    check_expectation,
    outcomes_under,
    run_test,
    run_tests,
    spec_allowed,
)

__all__ = [
    "ARMV8_FIX",
    "Expectation",
    "FINAL",
    "LitmusTest",
    "ORIGINAL",
    "SC",
    "STRONG_TEAR",
    "all_tests",
    "by_name",
    "classic_tests",
    "mixed_size_tests",
    "paper_tests",
    "ExpectationResult",
    "TestResult",
    "check_expectation",
    "outcomes_under",
    "run_test",
    "run_tests",
    "spec_allowed",
    "GeneratorConfig",
    "generate_arm_corpus",
    "generate_js_corpus",
]
