"""A diy-style litmus-test generator (the §4.1 corpus substitute).

The paper's validation corpus (11,587 tests) was largely generated with
``diy``, which synthesises litmus tests from cycles of candidate
relaxations.  This module provides a laptop-scale substitute: a systematic
enumerator of two-threaded ARMv8 litmus tests over two 32-bit locations —
every combination of access direction (read/write), access ordering
attribute (plain, acquire/release) per slot — plus mixed-size variants in
which one thread accesses a location with two half-width accesses, the
shapes the mixed-size extension of the model is about.

The same shapes are also exposed as JavaScript programs (SeqCst /
Unordered accesses through 32- and 16-bit typed arrays) so the compilation
benchmarks can sweep over a uniform corpus.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from ..analyze import symmetry
from ..armv8.program import (
    ArmLoad,
    ArmProgram,
    ArmRegister,
    ArmStore,
    ArmThread,
)
from ..lang.ast import Load, Program, Register, Store, Thread, TypedAccess
from ..lang.memory import INT16, INT32, new_shared_array_buffer, new_typed_array


@dataclass(frozen=True)
class GeneratorConfig:
    """Bounds of the generated corpus."""

    locations: int = 2
    accesses_per_thread: int = 2
    include_mixed_size: bool = True
    max_tests: Optional[int] = None


@dataclass(frozen=True)
class OrbitClass:
    """One isomorphism class of a generated corpus.

    ``members`` keeps generation order (the representative is the first
    member), and every member is the *original* program — a consumer that
    evaluates the representative replays its verdict onto the members and
    reports them in their own labeling.
    """

    representative: Program
    members: Tuple[Program, ...]

    @property
    def multiplicity(self) -> int:
        return len(self.members)


def orbit_quotient(programs: Iterable[Program]) -> List[OrbitClass]:
    """Group a corpus by canonical form (``REPRO_SYMMETRY``).

    One :class:`OrbitClass` per isomorphism class, classes ordered by first
    appearance.  A boolean verdict of any member holds for every member —
    the canonical relabeling is verdict-preserving — so sweeping one
    representative per class covers the corpus.  With symmetry off every
    program is its own singleton class and the sweep is the identity.
    """
    if not symmetry.symmetry_enabled():
        return [OrbitClass(p, (p,)) for p in programs]
    grouped: dict = {}
    order: List = []
    for program in programs:
        key = symmetry.analyze_symmetry(program).canonical_key
        bucket = grouped.get(key)
        if bucket is None:
            grouped[key] = [program]
            order.append(key)
            symmetry.STATS.orbits_seen += 1
        else:
            bucket.append(program)
            symmetry.STATS.members_skipped += 1
    return [
        OrbitClass(grouped[key][0], tuple(grouped[key])) for key in order
    ]


_ARM_SLOT_KINDS = (
    ("load", False),
    ("load", True),   # acquire
    ("store", False),
    ("store", True),  # release
)


def _arm_slot(kind: Tuple[str, bool], location: int, register_index: int, value: int):
    direction, ordered = kind
    addr = 4 * location
    if direction == "load":
        return ArmLoad(ArmRegister(f"r{register_index}"), addr, 4, acquire=ordered)
    return ArmStore(value, addr, 4, release=ordered)


def generate_arm_corpus(config: GeneratorConfig = GeneratorConfig()) -> Iterator[ArmProgram]:
    """Enumerate two-threaded ARMv8 litmus tests within the configured bounds.

    Tests whose threads perform no inter-thread communication (e.g. all
    loads) are still generated — the §4.1 validation is about executions,
    not interesting outcomes — but single-location duplicates produced by
    symmetric thread swaps are removed.
    """
    memory_size = 4 * config.locations
    slot_options = []
    for kind in _ARM_SLOT_KINDS:
        for location in range(config.locations):
            slot_options.append((kind, location))

    def build_thread(slots, tid: int) -> ArmThread:
        instructions = []
        register_index = 0
        for value, (kind, location) in enumerate(slots, start=1):
            instructions.append(
                _arm_slot(kind, location, register_index, value + tid * 10)
            )
            if kind[0] == "load":
                register_index += 1
        return ArmThread(tuple(instructions))

    produced = 0
    seen = set()
    thread_shapes = list(
        itertools.product(slot_options, repeat=config.accesses_per_thread)
    )
    for index_pair in itertools.combinations_with_replacement(
        range(len(thread_shapes)), 2
    ):
        shapes = tuple(thread_shapes[i] for i in index_pair)
        key = tuple(sorted(shapes))
        if key in seen:
            continue
        seen.add(key)
        program = ArmProgram(
            name=f"gen-arm-{produced}",
            threads=tuple(build_thread(shape, tid) for tid, shape in enumerate(shapes)),
            memory_size=memory_size,
        )
        yield program
        produced += 1
        if config.max_tests is not None and produced >= config.max_tests:
            return

    if not config.include_mixed_size:
        return

    # Mixed-size variants: thread 0 works on location 0 with a 32-bit access,
    # thread 1 with two 16-bit halves, in every read/write combination.
    for wide_kind, half_kinds in itertools.product(
        _ARM_SLOT_KINDS, itertools.product(_ARM_SLOT_KINDS, repeat=2)
    ):
        wide_direction, wide_ordered = wide_kind
        wide = (
            ArmLoad(ArmRegister("r0"), 0, 4, acquire=wide_ordered)
            if wide_direction == "load"
            else ArmStore(0x01020304, 0, 4, release=wide_ordered)
        )
        halves = []
        register_index = 0
        for half_index, (direction, ordered) in enumerate(half_kinds):
            addr = 2 * half_index
            if direction == "load":
                halves.append(
                    ArmLoad(ArmRegister(f"s{register_index}"), addr, 2, acquire=ordered)
                )
                register_index += 1
            else:
                halves.append(ArmStore(0x11 + half_index, addr, 2, release=ordered))
        program = ArmProgram(
            name=f"gen-arm-mixed-{produced}",
            threads=(ArmThread((wide,)), ArmThread(tuple(halves))),
            memory_size=memory_size,
        )
        yield program
        produced += 1
        if config.max_tests is not None and produced >= config.max_tests:
            return


def generate_js_corpus(config: GeneratorConfig = GeneratorConfig()) -> Iterator[Program]:
    """Enumerate two-threaded JavaScript litmus programs (SeqCst/Unordered).

    The shapes mirror :func:`generate_arm_corpus` on the source side and are
    used by the compilation-correctness sweeps.
    """
    buffer = new_shared_array_buffer("b", 4 * config.locations)
    wide = new_typed_array("b", buffer, INT32)
    narrow = new_typed_array("h", buffer, INT16)

    slot_options = []
    for atomic in (True, False):
        for direction in ("load", "store"):
            for location in range(config.locations):
                slot_options.append((direction, atomic, location))

    def build_thread(slots, tid: int) -> Thread:
        statements = []
        register_index = 0
        for value, (direction, atomic, location) in enumerate(slots, start=1):
            access = TypedAccess(wide, location)
            if direction == "load":
                statements.append(
                    Load(Register(f"r{register_index}"), access, atomic=atomic)
                )
                register_index += 1
            else:
                statements.append(Store(access, value + tid * 10, atomic=atomic))
        return Thread(tuple(statements))

    produced = 0
    seen = set()
    thread_shapes = list(
        itertools.product(slot_options, repeat=config.accesses_per_thread)
    )
    for index_pair in itertools.combinations_with_replacement(
        range(len(thread_shapes)), 2
    ):
        shapes = tuple(thread_shapes[i] for i in index_pair)
        key = tuple(sorted(shapes))
        if key in seen:
            continue
        seen.add(key)
        yield Program(
            name=f"gen-js-{produced}",
            buffers=(buffer,),
            threads=tuple(build_thread(shape, tid) for tid, shape in enumerate(shapes)),
            description="generated by the diy-style corpus generator",
        )
        produced += 1
        if config.max_tests is not None and produced >= config.max_tests:
            return

    if not config.include_mixed_size:
        return

    for wide_atomic, half_modes in itertools.product(
        (True, False), itertools.product((True, False), repeat=2)
    ):
        statements0 = (Store(TypedAccess(wide, 0), 0x01020304, atomic=wide_atomic),)
        statements1 = tuple(
            Load(Register(f"s{i}"), TypedAccess(narrow, i), atomic=mode)
            for i, mode in enumerate(half_modes)
        )
        yield Program(
            name=f"gen-js-mixed-{produced}",
            buffers=(buffer,),
            threads=(Thread(statements0), Thread(statements1)),
            description="mixed-size variant generated by the corpus generator",
        )
        produced += 1
        if config.max_tests is not None and produced >= config.max_tests:
            return
