"""The litmus-test catalogue: every program figure of the paper plus classics.

Each :class:`LitmusTest` bundles a program of the restricted fragment with
its expected verdicts under the various models (the original ES2019 model,
the corrected/final model, the strong-tear-free variant, and the sequential
consistency oracle).  The catalogue contains

* the paper's own programs — Fig. 1 (message passing), Fig. 6 (the ARMv8
  compilation-scheme violation), Fig. 8 (the SC-DRF violation), Fig. 13
  (wait/notify) and Fig. 14 (Init-event tearing) — and
* the classic litmus shapes (SB, MP, LB, R, 2+2W, CoRR) in SeqCst and
  Unordered variants, plus mixed-size variants using differently-sized
  typed-array views of the same buffer.

Buffers are kept small (8–16 bytes instead of the figures' 1 KiB); the
number of trailing untouched bytes does not affect any verdict and small
buffers keep exhaustive enumeration fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..lang.ast import (
    Exchange,
    IfEq,
    Load,
    Notify,
    Program,
    Register,
    Store,
    Thread,
    TypedAccess,
    Wait,
)
from ..lang.memory import (
    INT16,
    INT32,
    INT8,
    UINT16,
    UINT8,
    new_shared_array_buffer,
    new_typed_array,
)

# Model keys used in expectations.
ORIGINAL = "original"
ARMV8_FIX = "armv8-fix"
FINAL = "final"
STRONG_TEAR = "strong-tear"
SC = "sc"


@dataclass(frozen=True)
class Expectation:
    """One expected verdict: is ``spec`` observable under ``model``?"""

    model: str
    spec: Tuple[Tuple[str, int], ...]
    allowed: bool
    note: str = ""

    @property
    def spec_dict(self) -> Dict[str, int]:
        return dict(self.spec)


@dataclass(frozen=True)
class LitmusTest:
    """A named litmus program with its expected verdicts."""

    name: str
    program: Program
    expectations: Tuple[Expectation, ...]
    source: str = ""
    tags: Tuple[str, ...] = ()
    corrected_wait_notify: Optional[bool] = None

    @property
    def mixed_size(self) -> bool:
        return "mixed-size" in self.tags

    def expectations_for(self, model: str) -> Tuple[Expectation, ...]:
        return tuple(e for e in self.expectations if e.model == model)


def _expect(model: str, spec: Mapping[str, int], allowed: bool, note: str = "") -> Expectation:
    return Expectation(
        model=model, spec=tuple(sorted(spec.items())), allowed=allowed, note=note
    )


# ---------------------------------------------------------------------------
# the paper's figures
# ---------------------------------------------------------------------------


def fig1_message_passing() -> LitmusTest:
    """Fig. 1: message passing with an atomic flag."""
    sab = new_shared_array_buffer("b", 8)
    x = new_typed_array("x", sab, INT32)
    msg = TypedAccess(x, 0)
    flag = TypedAccess(x, 1)
    program = Program(
        name="fig1-message-passing",
        buffers=(sab,),
        threads=(
            Thread((Store(msg, 3), Store(flag, 5, atomic=True))),
            Thread(
                (
                    Load(Register("r0"), flag, atomic=True),
                    IfEq(Register("r0"), 5, then=(Load(Register("r1"), msg),)),
                )
            ),
        ),
        description="Fig. 1 of the paper: message passing through a SeqCst flag.",
    )
    return LitmusTest(
        name="fig1-message-passing",
        program=program,
        source="Fig. 1 / Fig. 2",
        tags=("paper", "message-passing"),
        expectations=(
            _expect(FINAL, {"1:r0": 5, "1:r1": 3}, True, "message received"),
            _expect(FINAL, {"1:r0": 0}, True, "flag not yet set"),
            _expect(FINAL, {"1:r0": 5, "1:r1": 0}, False, "flag without message"),
            _expect(ORIGINAL, {"1:r0": 5, "1:r1": 0}, False, "flag without message"),
            _expect(SC, {"1:r0": 5, "1:r1": 3}, True),
            _expect(SC, {"1:r0": 5, "1:r1": 0}, False),
        ),
    )


def fig1_relaxed_flag() -> LitmusTest:
    """Fig. 1 with a non-atomic flag: the relaxed outcome becomes observable."""
    sab = new_shared_array_buffer("b", 8)
    x = new_typed_array("x", sab, INT32)
    msg = TypedAccess(x, 0)
    flag = TypedAccess(x, 1)
    program = Program(
        name="fig1-relaxed-flag",
        buffers=(sab,),
        threads=(
            Thread((Store(msg, 3), Store(flag, 5))),
            Thread(
                (
                    Load(Register("r0"), flag),
                    IfEq(Register("r0"), 5, then=(Load(Register("r1"), msg),)),
                )
            ),
        ),
        description="Fig. 1 with both flag accesses non-atomic.",
    )
    return LitmusTest(
        name="fig1-relaxed-flag",
        program=program,
        source="§2 (discussion of Fig. 1)",
        tags=("paper", "message-passing", "relaxed"),
        expectations=(
            _expect(FINAL, {"1:r0": 5, "1:r1": 0}, True, "relaxed behaviour"),
            _expect(FINAL, {"1:r0": 5, "1:r1": 3}, True),
            _expect(SC, {"1:r0": 5, "1:r1": 0}, False),
        ),
    )


def fig6_armv8_violation() -> LitmusTest:
    """Fig. 6: the program whose compiled ARMv8 behaviour the original model forbids."""
    sab = new_shared_array_buffer("b", 8)
    b = new_typed_array("b", sab, INT32)
    loc0 = TypedAccess(b, 0)
    loc1 = TypedAccess(b, 1)
    program = Program(
        name="fig6-armv8-violation",
        buffers=(sab,),
        threads=(
            Thread(
                (
                    Store(loc0, 1, atomic=True),
                    Load(Register("r1"), loc1, atomic=True),
                )
            ),
            Thread(
                (
                    Store(loc1, 1, atomic=True),
                    Store(loc1, 2, atomic=True),
                    Store(loc0, 2),
                    Load(Register("r2"), loc0, atomic=True),
                )
            ),
        ),
        description=(
            "Fig. 6: forbidden by the original JS model, allowed by ARMv8 "
            "under the C++ SC-atomics compilation scheme."
        ),
    )
    outcome = {"0:r1": 1, "1:r2": 1}
    return LitmusTest(
        name="fig6-armv8-violation",
        program=program,
        source="Fig. 6",
        tags=("paper", "armv8", "counter-example"),
        expectations=(
            _expect(ORIGINAL, outcome, False, "original model forbids the ARM behaviour"),
            _expect(ARMV8_FIX, outcome, True, "weakened SC-atomics rule allows it"),
            _expect(FINAL, outcome, True, "final model allows it"),
            _expect(SC, outcome, False, "not a sequential interleaving"),
        ),
    )


def fig8_sc_drf_violation() -> LitmusTest:
    """Fig. 8: a data-race-free program with a non-SC behaviour (original model)."""
    sab = new_shared_array_buffer("b", 4)
    b = new_typed_array("b", sab, INT32)
    loc0 = TypedAccess(b, 0)
    program = Program(
        name="fig8-sc-drf-violation",
        buffers=(sab,),
        threads=(
            Thread((Store(loc0, 1, atomic=True),)),
            Thread(
                (
                    Store(loc0, 2, atomic=True),
                    Load(Register("r0"), loc0, atomic=True),
                    IfEq(Register("r0"), 1, then=(Load(Register("r1"), loc0),)),
                )
            ),
        ),
        description=(
            "Fig. 8: 4 events, 1 location.  Data-race-free, yet the original "
            "model allows the non-atomic load to read 2."
        ),
    )
    outcome = {"1:r0": 1, "1:r1": 2}
    return LitmusTest(
        name="fig8-sc-drf-violation",
        program=program,
        source="Fig. 8",
        tags=("paper", "sc-drf", "counter-example"),
        expectations=(
            _expect(ORIGINAL, outcome, True, "SC-DRF violation of the original model"),
            _expect(FINAL, outcome, False, "revised rule restores SC-DRF"),
            _expect(SC, outcome, False, "not a sequential interleaving"),
        ),
    )


def fig13_wait_notify() -> LitmusTest:
    """Fig. 13: wait/notify synchronisation."""
    sab = new_shared_array_buffer("x", 4)
    x = new_typed_array("x", sab, INT32)
    loc0 = TypedAccess(x, 0)
    program = Program(
        name="fig13-wait-notify",
        buffers=(sab,),
        threads=(
            Thread(
                (
                    Wait(loc0, 0),
                    Load(Register("r0"), loc0, atomic=True),
                )
            ),
            Thread(
                (
                    Store(loc0, 42, atomic=True),
                    Notify(loc0, dest=Register("r1")),
                )
            ),
        ),
        description="Fig. 13a: Atomics.wait / Atomics.notify message passing.",
    )
    return LitmusTest(
        name="fig13-wait-notify",
        program=program,
        source="Fig. 13",
        tags=("paper", "wait-notify"),
        corrected_wait_notify=True,
        expectations=(
            # With the corrective critical-section asw edges the waiter
            # always observes 42 (Fig. 13b/13c both forbidden).
            _expect(FINAL, {"0:r0": 0}, False, "Fig. 13b forbidden when corrected"),
            _expect(FINAL, {"0:r0": 42}, True),
        ),
    )


def fig14_init_tearing() -> LitmusTest:
    """Fig. 14: a tear-free 16-bit load mixing bytes of Init and a 16-bit store."""
    sab = new_shared_array_buffer("b", 4)
    b = new_typed_array("b", sab, UINT16)
    loc0 = TypedAccess(b, 0)
    program = Program(
        name="fig14-init-tearing",
        buffers=(sab,),
        threads=(
            Thread((Load(Register("r"), loc0),)),
            Thread((Store(loc0, 0x0101),)),
        ),
        description=(
            "Fig. 14: the 16-bit load may read one byte from Init and one "
            "from the 16-bit store under the current Tear-Free Reads rule."
        ),
    )
    torn = {"0:r": 0x0001}
    other_torn = {"0:r": 0x0100}
    return LitmusTest(
        name="fig14-init-tearing",
        program=program,
        source="Fig. 14",
        tags=("paper", "tearing", "mixed-size"),
        expectations=(
            _expect(FINAL, torn, True, "tearing with Init allowed by the current rule"),
            _expect(FINAL, other_torn, True, "the other torn value"),
            _expect(STRONG_TEAR, torn, False, "strong Tear-Free Reads forbids it"),
            _expect(STRONG_TEAR, other_torn, False),
            _expect(STRONG_TEAR, {"0:r": 0x0101}, True),
            _expect(STRONG_TEAR, {"0:r": 0}, True),
            _expect(SC, torn, False),
        ),
    )


# ---------------------------------------------------------------------------
# classic litmus shapes (SeqCst and Unordered variants)
# ---------------------------------------------------------------------------


def _two_locations(name: str = "b", bytes_: int = 8):
    sab = new_shared_array_buffer(name, bytes_)
    view = new_typed_array(name, sab, INT32)
    return sab, TypedAccess(view, 0), TypedAccess(view, 1)


def store_buffering(atomic: bool) -> LitmusTest:
    """SB: both threads store then load the other location."""
    kind = "sc" if atomic else "un"
    sab, x, y = _two_locations()
    program = Program(
        name=f"sb-{kind}",
        buffers=(sab,),
        threads=(
            Thread((Store(x, 1, atomic=atomic), Load(Register("r0"), y, atomic=atomic))),
            Thread((Store(y, 1, atomic=atomic), Load(Register("r1"), x, atomic=atomic))),
        ),
        description="Store buffering (Dekker).",
    )
    both_zero = {"0:r0": 0, "1:r1": 0}
    expectations = [
        _expect(SC, both_zero, False),
        _expect(FINAL, both_zero, not atomic),
        _expect(ORIGINAL, both_zero, not atomic),
    ]
    return LitmusTest(
        name=f"sb-{kind}",
        program=program,
        source="classic",
        tags=("classic", "sb") + (("seqcst",) if atomic else ("unordered",)),
        expectations=tuple(expectations),
    )


def message_passing(atomic_flag: bool, atomic_data: bool) -> LitmusTest:
    """MP with configurable access modes on data and flag."""
    kind = f"{'sc' if atomic_data else 'un'}-{'sc' if atomic_flag else 'un'}"
    sab, data, flag = _two_locations()
    program = Program(
        name=f"mp-{kind}",
        buffers=(sab,),
        threads=(
            Thread((Store(data, 1, atomic=atomic_data), Store(flag, 1, atomic=atomic_flag))),
            Thread(
                (
                    Load(Register("r0"), flag, atomic=atomic_flag),
                    Load(Register("r1"), data, atomic=atomic_data),
                )
            ),
        ),
        description="Message passing.",
    )
    stale = {"1:r0": 1, "1:r1": 0}
    # The stale read is forbidden exactly when the flag is written and read
    # with SeqCst accesses: their synchronizes-with edge puts the data write
    # happens-before the data read, whatever the data access mode is.
    expectations = [
        _expect(SC, stale, False),
        _expect(FINAL, stale, not atomic_flag),
    ]
    return LitmusTest(
        name=f"mp-{kind}",
        program=program,
        source="classic",
        tags=("classic", "mp"),
        expectations=tuple(expectations),
    )


def load_buffering(atomic: bool) -> LitmusTest:
    """LB: both threads load one location then store the other."""
    kind = "sc" if atomic else "un"
    sab, x, y = _two_locations()
    program = Program(
        name=f"lb-{kind}",
        buffers=(sab,),
        threads=(
            Thread((Load(Register("r0"), x, atomic=atomic), Store(y, 1, atomic=atomic))),
            Thread((Load(Register("r1"), y, atomic=atomic), Store(x, 1, atomic=atomic))),
        ),
        description="Load buffering.",
    )
    both_one = {"0:r0": 1, "1:r1": 1}
    expectations = [
        _expect(SC, both_one, False),
        _expect(FINAL, both_one, not atomic),
    ]
    return LitmusTest(
        name=f"lb-{kind}",
        program=program,
        source="classic",
        tags=("classic", "lb"),
        expectations=tuple(expectations),
    )


def coherence_corr(atomic: bool) -> LitmusTest:
    """CoRR: two reads of the same location must not observe writes out of order.

    With SeqCst accesses the reordered observation is forbidden; with
    Unordered accesses JavaScript (which has no per-location coherence for
    non-atomics) allows it.
    """
    kind = "sc" if atomic else "un"
    sab = new_shared_array_buffer("b", 4)
    view = new_typed_array("b", sab, INT32)
    x = TypedAccess(view, 0)
    program = Program(
        name=f"corr-{kind}",
        buffers=(sab,),
        threads=(
            Thread((Store(x, 1, atomic=atomic),)),
            Thread(
                (
                    Load(Register("r0"), x, atomic=atomic),
                    Load(Register("r1"), x, atomic=atomic),
                )
            ),
        ),
        description="Coherence of two reads of one location.",
    )
    reordered = {"1:r0": 1, "1:r1": 0}
    expectations = [
        _expect(SC, reordered, False),
        _expect(FINAL, reordered, not atomic),
    ]
    return LitmusTest(
        name=f"corr-{kind}",
        program=program,
        source="classic",
        tags=("classic", "coherence"),
        expectations=tuple(expectations),
    )


def two_plus_two_w(atomic: bool) -> LitmusTest:
    """2+2W: write/write on two locations in opposite orders, then read back."""
    kind = "sc" if atomic else "un"
    sab, x, y = _two_locations()
    program = Program(
        name=f"2+2w-{kind}",
        buffers=(sab,),
        threads=(
            Thread(
                (
                    Store(x, 1, atomic=atomic),
                    Store(y, 2, atomic=atomic),
                    Load(Register("r0"), y, atomic=atomic),
                )
            ),
            Thread(
                (
                    Store(y, 1, atomic=atomic),
                    Store(x, 2, atomic=atomic),
                    Load(Register("r1"), x, atomic=atomic),
                )
            ),
        ),
        description="2+2W with read-back of the locally overwritten location.",
    )
    stale = {"0:r0": 1, "1:r1": 1}
    expectations = [
        _expect(SC, stale, False),
        _expect(FINAL, stale, not atomic),
    ]
    return LitmusTest(
        name=f"2+2w-{kind}",
        program=program,
        source="classic",
        tags=("classic", "2+2w"),
        expectations=tuple(expectations),
    )


def rmw_exchange_mutex() -> LitmusTest:
    """Two exchanges on the same location can never both observe the initial value… twice."""
    sab = new_shared_array_buffer("b", 4)
    view = new_typed_array("b", sab, INT32)
    x = TypedAccess(view, 0)
    program = Program(
        name="rmw-exchange",
        buffers=(sab,),
        threads=(
            Thread((Exchange(Register("r0"), x, 1),)),
            Thread((Exchange(Register("r1"), x, 2),)),
        ),
        description="Competing Atomics.exchange: exactly one of them observes the initial value.",
    )
    both_zero = {"0:r0": 0, "1:r1": 0}
    first_wins = {"0:r0": 0, "1:r1": 1}
    second_wins = {"0:r0": 2, "1:r1": 0}
    swap = {"0:r0": 2, "1:r1": 1}
    expectations = [
        _expect(SC, both_zero, False, "one exchange must observe the other"),
        _expect(FINAL, both_zero, False),
        _expect(SC, first_wins, True),
        _expect(FINAL, first_wins, True),
        _expect(SC, second_wins, True),
        _expect(FINAL, second_wins, True),
        _expect(SC, swap, False),
        _expect(FINAL, swap, False, "exchanges cannot mutually read each other"),
    ]
    return LitmusTest(
        name="rmw-exchange",
        program=program,
        source="classic",
        tags=("classic", "rmw"),
        expectations=tuple(expectations),
    )


# ---------------------------------------------------------------------------
# mixed-size tests
# ---------------------------------------------------------------------------


def mixed_size_overlap() -> LitmusTest:
    """A 32-bit store racing with a 16-bit load of its lower half."""
    sab = new_shared_array_buffer("b", 4)
    wide = new_typed_array("w", sab, INT32)
    narrow = new_typed_array("n", sab, UINT16)
    program = Program(
        name="mixed-size-overlap",
        buffers=(sab,),
        threads=(
            Thread((Store(TypedAccess(wide, 0), 0x00020001),)),
            Thread((Load(Register("r0"), TypedAccess(narrow, 0)),)),
        ),
        description="A 16-bit load overlapping the low half of a 32-bit store.",
    )
    expectations = [
        _expect(FINAL, {"1:r0": 1}, True, "sees the store's low half"),
        _expect(FINAL, {"1:r0": 0}, True, "sees the initial zeros"),
        _expect(SC, {"1:r0": 1}, True),
        _expect(SC, {"1:r0": 0}, True),
    ]
    return LitmusTest(
        name="mixed-size-overlap",
        program=program,
        source="§2 (mixed-size accesses)",
        tags=("mixed-size",),
        expectations=tuple(expectations),
    )


def mixed_size_tearing_halves() -> LitmusTest:
    """Two 16-bit stores observed by one 32-bit load: byte mixing is possible."""
    sab = new_shared_array_buffer("b", 4)
    wide = new_typed_array("w", sab, INT32)
    narrow = new_typed_array("n", sab, UINT16)
    program = Program(
        name="mixed-size-halves",
        buffers=(sab,),
        threads=(
            Thread(
                (
                    Store(TypedAccess(narrow, 0), 0x0001),
                    Store(TypedAccess(narrow, 1), 0x0002),
                )
            ),
            Thread((Load(Register("r0"), TypedAccess(wide, 0)),)),
        ),
        description="A 32-bit load covering two 16-bit stores.",
    )
    expectations = [
        _expect(FINAL, {"1:r0": 0x00020001}, True, "both halves observed"),
        _expect(FINAL, {"1:r0": 0x00020000}, True, "only the second half observed"),
        _expect(FINAL, {"1:r0": 0x00000001}, True, "only the first half observed"),
        _expect(SC, {"1:r0": 0x00020000}, False, "SC order writes the low half first"),
    ]
    return LitmusTest(
        name="mixed-size-halves",
        program=program,
        source="§2 (mixed-size accesses)",
        tags=("mixed-size", "tearing"),
        expectations=tuple(expectations),
    )


def mixed_size_sc_no_sync() -> LitmusTest:
    """SeqCst accesses of different sizes do not synchronise (sw needs equal ranges)."""
    sab = new_shared_array_buffer("b", 8)
    wide = new_typed_array("w", sab, INT32)
    byte = new_typed_array("c", sab, UINT8)
    data = TypedAccess(wide, 1)
    flag_wide = TypedAccess(wide, 0)
    flag_byte = TypedAccess(byte, 0)
    program = Program(
        name="mixed-size-sc-no-sync",
        buffers=(sab,),
        threads=(
            Thread((Store(data, 7), Store(flag_wide, 1, atomic=True))),
            Thread(
                (
                    Load(Register("r0"), flag_byte, atomic=True),
                    Load(Register("r1"), data),
                )
            ),
        ),
        description=(
            "Message passing where the flag is written as 32 bits but read "
            "as 8 bits: the differently-sized SeqCst pair does not create "
            "a synchronizes-with edge, so the stale read remains allowed."
        ),
    )
    stale = {"1:r0": 1, "1:r1": 0}
    expectations = [
        _expect(FINAL, stale, True, "no sw edge between differently-sized atomics"),
        _expect(SC, stale, False),
    ]
    return LitmusTest(
        name="mixed-size-sc-no-sync",
        program=program,
        source="§2.2 (synchronizes-with requires equal ranges)",
        tags=("mixed-size", "mp"),
        expectations=tuple(expectations),
    )


# ---------------------------------------------------------------------------
# catalogue assembly
# ---------------------------------------------------------------------------


def paper_tests() -> List[LitmusTest]:
    """The tests corresponding to the paper's own figures."""
    return [
        fig1_message_passing(),
        fig1_relaxed_flag(),
        fig6_armv8_violation(),
        fig8_sc_drf_violation(),
        fig13_wait_notify(),
        fig14_init_tearing(),
    ]


def classic_tests() -> List[LitmusTest]:
    """The classic uni-size litmus shapes in SeqCst and Unordered variants."""
    tests: List[LitmusTest] = []
    for atomic in (True, False):
        tests.append(store_buffering(atomic))
        tests.append(load_buffering(atomic))
        tests.append(coherence_corr(atomic))
        tests.append(two_plus_two_w(atomic))
    tests.append(message_passing(atomic_flag=True, atomic_data=True))
    tests.append(message_passing(atomic_flag=True, atomic_data=False))
    tests.append(message_passing(atomic_flag=False, atomic_data=False))
    tests.append(rmw_exchange_mutex())
    return tests


def mixed_size_tests() -> List[LitmusTest]:
    """Litmus tests that exercise partially overlapping / differently sized accesses."""
    return [
        mixed_size_overlap(),
        mixed_size_tearing_halves(),
        mixed_size_sc_no_sync(),
    ]


def all_tests() -> List[LitmusTest]:
    """The complete catalogue."""
    return paper_tests() + classic_tests() + mixed_size_tests()


def by_name(name: str) -> LitmusTest:
    """Look a catalogue test up by name."""
    for test in all_tests():
        if test.name == name:
            return test
    raise KeyError(f"no litmus test named {name!r}")
