"""Running litmus tests against the JavaScript models and the SC oracle.

Batched entry points (:func:`run_tests`, :func:`run_catalogue`) accept
``workers=N`` to shard independent tests over the :mod:`repro.dispatch`
pool and ``cache=`` to persist per-expectation verdicts in a
:class:`~repro.dispatch.cache.VerdictCache`; both default to the
environment-driven behaviour (``REPRO_WORKERS`` / ``REPRO_VERDICT_CACHE``)
and both reproduce the serial, uncached verdicts bit-for-bit.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import analyze
from ..analyze import symmetry
from ..core.js_model import (
    ARMV8_FIX_MODEL,
    FINAL_MODEL,
    FINAL_MODEL_STRONG_TEAR,
    JsModel,
    ORIGINAL_MODEL,
)
from ..dispatch import (
    SEMANTICS_REVISION,
    SupervisionReport,
    SweepJournal,
    VerdictCache,
    fingerprint,
    get_or_compute_aliased,
    program_fingerprint,
    resolve_cache,
    resolve_checkpoint,
    resolve_workers,
    supervised_imap,
    warm_spec,
)
from ..lang.ast import Outcome, Program, outcome_matches
from ..lang.enumeration import allowed_outcomes, outcome_allowed
from ..lang.interpreter import sc_outcomes
from ..lang.wait_notify import wait_notify_outcome_allowed
from .catalogue import (
    ARMV8_FIX,
    Expectation,
    FINAL,
    LitmusTest,
    ORIGINAL,
    SC,
    STRONG_TEAR,
    all_tests,
    by_name,
)

# lint: allow(mutable-state) — read-only model registry, never mutated
# after import; the cache key embeds the full model value, not this dict.
MODEL_BY_KEY: Dict[str, JsModel] = {
    ORIGINAL: ORIGINAL_MODEL,
    ARMV8_FIX: ARMV8_FIX_MODEL,
    FINAL: FINAL_MODEL,
    STRONG_TEAR: FINAL_MODEL_STRONG_TEAR,
}


@dataclass(frozen=True)
class ExpectationResult:
    """The verdict of checking one expectation."""

    test: str
    expectation: Expectation
    observed_allowed: bool

    @property
    def passed(self) -> bool:
        return self.observed_allowed == self.expectation.allowed

    def describe(self) -> str:
        status = "ok" if self.passed else "MISMATCH"
        verdict = "allowed" if self.observed_allowed else "forbidden"
        wanted = "allowed" if self.expectation.allowed else "forbidden"
        return (
            f"[{status}] {self.test} / {self.expectation.model}: "
            f"{dict(self.expectation.spec)} observed {verdict}, expected {wanted}"
        )


@dataclass(frozen=True)
class TestResult:
    """All expectation results of one litmus test."""

    test: LitmusTest
    results: Tuple[ExpectationResult, ...]

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)


def _spec_allowed_uncached(
    test: LitmusTest, spec: Dict[str, int], model_key: str
) -> bool:
    program = test.program
    if model_key == SC:
        return any(outcome_matches(o, spec) for o in sc_outcomes(program))
    model = MODEL_BY_KEY[model_key]
    if program.uses_wait_notify():
        corrected = test.corrected_wait_notify
        if corrected is None:
            corrected = True
        return wait_notify_outcome_allowed(program, spec, corrected=corrected, model=model)
    return outcome_allowed(program, spec, model)


def _corrected_flag(test: LitmusTest) -> Optional[bool]:
    """The §7 semantics slot of a litmus cache key.

    Same normalisation as the checker: for wait/notify programs unset means
    corrected (§7), so ``None`` and ``True`` share one cache slot; programs
    without wait/notify use ``None``.
    """
    if not test.program.uses_wait_notify():
        return None
    corrected = test.corrected_wait_notify
    return True if corrected is None else corrected


def _expectation_key(
    cache: VerdictCache, test: LitmusTest, spec: Dict[str, int], model_key: str
) -> str:
    """The cache key of one litmus verdict.

    Covers everything the verdict depends on: the program structure, the
    model configuration (the full :class:`JsModel` value, not just its
    name), the outcome spec, and — for wait/notify programs — which §7
    semantics apply.
    """
    model = None if model_key == SC else MODEL_BY_KEY[model_key]
    return cache.key(
        "litmus-verdict",
        program_fingerprint(test.program),
        model_key,
        model,
        tuple(sorted(spec.items())),
        _corrected_flag(test),
    )


def _canonical_expectation_key(
    cache: VerdictCache, test: LitmusTest, spec: Dict[str, int], model_key: str
):
    """The canonical-tier alias key of one litmus verdict, or ``None``.

    Keyed by the *canonical* program fingerprint and the canonically
    relabeled spec, so isomorphic tests querying equivalent outcomes share
    one cache slot.  ``None`` (no alias) when symmetry is off or the spec
    does not relabel cleanly; the second element is the parity callback
    :func:`spec_allowed` passes to ``get_or_compute_aliased``.
    """
    if not symmetry.symmetry_enabled():
        return None, None
    analysis = symmetry.analyze_symmetry(test.program)
    mapped = analysis.relabeling.map_outcome(spec)
    if mapped is None:
        return None, None
    model = None if model_key == SC else MODEL_BY_KEY[model_key]
    alias = cache.key(
        "litmus-verdict",
        analysis.canonical_fingerprint,
        model_key,
        model,
        tuple(sorted(mapped.items())),
        _corrected_flag(test),
    )
    return alias, symmetry.alias_parity(analysis, spec)


def spec_allowed(
    test: LitmusTest, spec: Dict[str, int], model_key: str, cache=None
) -> bool:
    """Is ``spec`` observable for ``test`` under the model named ``model_key``?"""
    cache = resolve_cache(cache)
    if cache is None:
        return _spec_allowed_uncached(test, spec, model_key)
    key = _expectation_key(cache, test, spec, model_key)
    return bool(
        get_or_compute_aliased(
            cache,
            key,
            # Lazy: the alias (canonical fingerprint + relabeled spec) is
            # only built on a primary miss, so warm sweeps stay alias-free.
            lambda: _canonical_expectation_key(cache, test, spec, model_key),
            lambda: _spec_allowed_uncached(test, spec, model_key),
            on_alias_hit=symmetry.count_canonical_hit,
        )
    )


def check_expectation(
    test: LitmusTest, expectation: Expectation, cache=None
) -> ExpectationResult:
    """Evaluate a single expected verdict."""
    observed = spec_allowed(test, expectation.spec_dict, expectation.model, cache=cache)
    return ExpectationResult(
        test=test.name, expectation=expectation, observed_allowed=observed
    )


def run_test(test: LitmusTest, cache=None) -> TestResult:
    """Evaluate every expectation of a litmus test."""
    return TestResult(
        test=test,
        results=tuple(check_expectation(test, e, cache=cache) for e in test.expectations),
    )


def _run_test_worker(task) -> Tuple[bool, ...]:
    """Shard worker: the observed verdicts of one test, in expectation order.

    Returns plain booleans (not result objects) so nothing heavier than the
    task itself crosses the process boundary; the parent reassembles the
    :class:`TestResult` values it already has the expectations for.
    """
    test, cache_spec = task
    # The serial path passes the live cache object through (so hit/miss
    # statistics land on the caller's object — any object with the cache
    # surface, including a TieredVerdictCache); shard workers get the
    # picklable spec tuple.
    if isinstance(cache_spec, tuple):
        cache = VerdictCache.from_spec(cache_spec)
    else:
        cache = cache_spec
    return tuple(
        spec_allowed(
            test,
            e.spec_dict,
            e.model,
            cache=cache if cache is not None else False,
        )
        for e in test.expectations
    )


def _batch_fingerprint(tests: List[LitmusTest]) -> str:
    """A content hash over everything a batch's verdict tuples depend on."""
    return fingerprint(
        "litmus-batch",
        [
            [
                program_fingerprint(test.program),
                [[e.model, sorted(e.spec_dict.items())] for e in test.expectations],
                test.corrected_wait_notify,
            ]
            for test in tests
        ],
        [[key, MODEL_BY_KEY[key]] for key in sorted(MODEL_BY_KEY)],
    )


def run_tests(
    tests: Iterable[LitmusTest],
    workers: Optional[int] = None,
    cache=None,
    checkpoint=None,
    fault_plan=None,
    quarantine: bool = False,
    supervision: Optional[SupervisionReport] = None,
) -> List[TestResult]:
    """Evaluate a batch of litmus tests, optionally sharded over workers.

    Multi-worker batches run under the supervised engine (retries,
    deadlines, respawn — see :mod:`repro.dispatch.supervise`).  With a
    checkpoint directory (``checkpoint=`` / ``$REPRO_CHECKPOINT_DIR``) each
    test's verdict tuple is journaled as it completes, so a killed batch
    resumes recomputing only unfinished tests.  With ``quarantine=True`` a
    test whose checker keeps failing is dropped from the returned list and
    reported on ``supervision.quarantined`` instead of aborting the batch.
    """
    tests = list(tests)
    workers = resolve_workers(workers)
    cache = resolve_cache(cache)
    if supervision is None:
        supervision = SupervisionReport()
    journal = None
    checkpoint_dir = resolve_checkpoint(checkpoint, cache=cache)
    if checkpoint_dir is not None and tests:
        journal = SweepJournal.open(
            checkpoint_dir,
            "litmus",
            _batch_fingerprint(tests),
            SEMANTICS_REVISION,
            len(tests),
        )
    recorded = journal.completed() if journal is not None else {}
    if cache is None:
        cache_spec = None
    elif workers <= 1:
        cache_spec = cache
    else:
        cache_spec = cache.spec
    live = [(i, test) for i, test in enumerate(tests) if i not in recorded]

    def on_test_complete(live_index: int, verdicts) -> None:
        if journal is not None:
            journal.record(live[live_index][0], list(verdicts))

    observed: dict = {
        index: tuple(bool(v) for v in verdicts)
        for index, verdicts in recorded.items()
    }
    stream = supervised_imap(
        _run_test_worker,
        [(test, cache_spec) for _index, test in live],
        workers=workers,
        quarantine=quarantine,
        on_complete=on_test_complete,
        # Segment stores pay their index scan once at worker start, not
        # inside the first task of every worker.
        initializer=warm_spec if isinstance(cache_spec, tuple) else None,
        initargs=(cache_spec,) if isinstance(cache_spec, tuple) else (),
        fault_plan=fault_plan,
        report=supervision,
    )
    try:
        for (index, _test), verdicts in zip(live, stream):
            if verdicts is not None:
                observed[index] = verdicts
        results = []
        for index, test in enumerate(tests):
            verdicts = observed.get(index)
            if verdicts is None:
                continue  # quarantined: reported on supervision.quarantined
            results.append(
                TestResult(
                    test=test,
                    results=tuple(
                        ExpectationResult(
                            test=test.name, expectation=e, observed_allowed=allowed
                        )
                        for e, allowed in zip(test.expectations, verdicts)
                    ),
                )
            )
        return results
    finally:
        stream.close()
        if journal is not None:
            if sys.exc_info()[0] is None:
                journal.finish()
            else:
                journal.close()


def iter_test_verdicts(
    tests: Iterable[LitmusTest],
    workers: Optional[int] = None,
    cache=None,
    supervision: Optional[SupervisionReport] = None,
):
    """Lazily stream ``(test, observed verdict tuple)`` in test order.

    The verdict-service request adapter: the same worker function, cache
    keys and supervision semantics as :func:`run_tests`, but incremental —
    each test's verdicts are yielded as soon as its turn completes, so a
    consumer that stops early (a cancelled or early-exit query) abandons
    the undispatched tail, and closing the generator reaps any in-flight
    workers.  Verdicts are bit-identical to :func:`run_tests`.
    """
    tests = list(tests)
    workers = resolve_workers(workers)
    cache = resolve_cache(cache)
    if supervision is None:
        supervision = SupervisionReport()
    if cache is None:
        cache_spec = None
    elif workers <= 1:
        cache_spec = cache
    else:
        cache_spec = cache.spec
    stream = supervised_imap(
        _run_test_worker,
        [(test, cache_spec) for test in tests],
        workers=workers,
        initializer=warm_spec if isinstance(cache_spec, tuple) else None,
        initargs=(cache_spec,) if isinstance(cache_spec, tuple) else (),
        report=supervision,
    )
    try:
        for test, verdicts in zip(tests, stream):
            yield test, tuple(bool(v) for v in verdicts)
    finally:
        stream.close()


@dataclass(frozen=True)
class CatalogueReport:
    """The verdicts of one batched catalogue sweep."""

    results: Tuple[TestResult, ...]
    quarantined: Tuple[str, ...] = ()
    """Names of tests whose checker kept failing under supervision.

    Empty on every healthy run; a non-empty tuple means those tests have
    *no* verdicts in :attr:`results` (and :attr:`passed` only speaks for
    the tests that do).
    """

    cache_stats: Optional[Dict[str, object]] = None
    """The verdict cache's :meth:`~repro.dispatch.cache.VerdictCache.stats`
    snapshot after the sweep, or ``None`` for an uncached run.

    Multi-worker sweeps count the *parent's* view (the workers' own
    hit/miss counters live in their processes); warm-cache serial runs see
    the full picture.
    """

    analyze_stats: Optional[Dict[str, int]] = None
    """The static analyzer's counter increments over this sweep
    (:class:`repro.analyze.AnalyzeStats`), or ``None`` when ``REPRO_ANALYZE``
    is off.  Like :attr:`cache_stats`, multi-worker sweeps count the
    *parent's* view only — and a warm cache answers before the analyzer
    runs, so cached verdicts contribute neither hits nor misses.
    """

    symmetry_stats: Optional[Dict[str, int]] = None
    """The symmetry engine's counter increments over this sweep
    (:class:`repro.analyze.SymmetryStats`), or ``None`` when
    ``REPRO_SYMMETRY`` is off.  Parent's view only, like
    :attr:`analyze_stats`.
    """

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def mismatches(self) -> Tuple[ExpectationResult, ...]:
        return tuple(
            r for result in self.results for r in result.results if not r.passed
        )

    def verdicts(self) -> Dict[str, Tuple[bool, ...]]:
        """Observed verdicts per test name, in expectation order."""
        return {
            result.test.name: tuple(r.observed_allowed for r in result.results)
            for result in self.results
        }

    def describe(self) -> str:
        total = sum(len(result.results) for result in self.results)
        bad = self.mismatches
        lines = [
            f"catalogue sweep: {len(self.results)} tests, {total} expectations, "
            f"{len(bad)} mismatches"
        ]
        if self.quarantined:
            lines.append(
                f"quarantined (no verdict): {', '.join(self.quarantined)}"
            )
        if self.cache_stats is not None:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.cache_stats.items()))
            lines.append(f"verdict cache: {pairs}")
        if self.analyze_stats is not None:
            pairs = ", ".join(
                f"{k}={v}" for k, v in sorted(self.analyze_stats.items())
            )
            lines.append(f"static analyzer: {pairs}")
        if self.symmetry_stats is not None:
            pairs = ", ".join(
                f"{k}={v}" for k, v in sorted(self.symmetry_stats.items())
            )
            lines.append(f"symmetry: {pairs}")
        lines.extend(r.describe() for r in bad)
        return "\n".join(lines)


def run_catalogue(
    names: Optional[Sequence[str]] = None,
    *,
    workers: Optional[int] = None,
    cache=None,
    checkpoint=None,
    fault_plan=None,
    quarantine: bool = False,
) -> CatalogueReport:
    """Run the litmus catalogue (or the named subset) as one batch.

    ``workers`` shards the independent tests over the dispatch pool;
    ``cache`` persists per-expectation verdicts across runs; ``checkpoint``
    journals completed tests so a killed sweep resumes where it left off.
    All of them leave every verdict bit-identical to a serial, uncached,
    single-shot sweep.  ``quarantine=True`` keeps the sweep alive past a
    test whose checker keeps failing and lists it on ``report.quarantined``.
    """
    tests = all_tests() if names is None else [by_name(name) for name in names]
    supervision = SupervisionReport()
    # Resolve here (run_tests' resolve_cache passes a live cache through
    # unchanged) so the report can snapshot the cache's counters.
    cache = resolve_cache(cache)
    analyze_before = analyze.stats_snapshot() if analyze.analyze_enabled() else None
    symmetry_before = (
        symmetry.symmetry_stats_snapshot() if symmetry.symmetry_enabled() else None
    )
    results = run_tests(
        tests,
        workers=workers,
        cache=cache if cache is not None else False,
        checkpoint=checkpoint,
        fault_plan=fault_plan,
        quarantine=quarantine,
        supervision=supervision,
    )
    return CatalogueReport(
        results=tuple(results),
        quarantined=tuple(sorted(q.task[0].name for q in supervision.quarantined)),
        cache_stats=cache.stats() if cache is not None else None,
        analyze_stats=(
            analyze.stats_delta(analyze_before)
            if analyze_before is not None
            else None
        ),
        symmetry_stats=(
            symmetry.symmetry_stats_delta(symmetry_before)
            if symmetry_before is not None
            else None
        ),
    )


def outcomes_under(
    program: Program, model_key: str = FINAL
) -> List[Outcome]:
    """All outcomes of ``program`` under the named model (or the SC oracle)."""
    if model_key == SC:
        return list(sc_outcomes(program))
    return allowed_outcomes(program, MODEL_BY_KEY[model_key])
