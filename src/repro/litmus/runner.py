"""Running litmus tests against the JavaScript models and the SC oracle."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.js_model import (
    ARMV8_FIX_MODEL,
    FINAL_MODEL,
    FINAL_MODEL_STRONG_TEAR,
    JsModel,
    ORIGINAL_MODEL,
)
from ..lang.ast import Outcome, Program, outcome_matches
from ..lang.enumeration import allowed_outcomes, outcome_allowed
from ..lang.interpreter import sc_outcomes
from ..lang.wait_notify import wait_notify_outcome_allowed
from .catalogue import (
    ARMV8_FIX,
    Expectation,
    FINAL,
    LitmusTest,
    ORIGINAL,
    SC,
    STRONG_TEAR,
)

MODEL_BY_KEY: Dict[str, JsModel] = {
    ORIGINAL: ORIGINAL_MODEL,
    ARMV8_FIX: ARMV8_FIX_MODEL,
    FINAL: FINAL_MODEL,
    STRONG_TEAR: FINAL_MODEL_STRONG_TEAR,
}


@dataclass(frozen=True)
class ExpectationResult:
    """The verdict of checking one expectation."""

    test: str
    expectation: Expectation
    observed_allowed: bool

    @property
    def passed(self) -> bool:
        return self.observed_allowed == self.expectation.allowed

    def describe(self) -> str:
        status = "ok" if self.passed else "MISMATCH"
        verdict = "allowed" if self.observed_allowed else "forbidden"
        wanted = "allowed" if self.expectation.allowed else "forbidden"
        return (
            f"[{status}] {self.test} / {self.expectation.model}: "
            f"{dict(self.expectation.spec)} observed {verdict}, expected {wanted}"
        )


@dataclass(frozen=True)
class TestResult:
    """All expectation results of one litmus test."""

    test: LitmusTest
    results: Tuple[ExpectationResult, ...]

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)


def spec_allowed(
    test: LitmusTest, spec: Dict[str, int], model_key: str
) -> bool:
    """Is ``spec`` observable for ``test`` under the model named ``model_key``?"""
    program = test.program
    if model_key == SC:
        return any(outcome_matches(o, spec) for o in sc_outcomes(program))
    model = MODEL_BY_KEY[model_key]
    if program.uses_wait_notify():
        corrected = test.corrected_wait_notify
        if corrected is None:
            corrected = True
        return wait_notify_outcome_allowed(program, spec, corrected=corrected, model=model)
    return outcome_allowed(program, spec, model)


def check_expectation(test: LitmusTest, expectation: Expectation) -> ExpectationResult:
    """Evaluate a single expected verdict."""
    observed = spec_allowed(test, expectation.spec_dict, expectation.model)
    return ExpectationResult(
        test=test.name, expectation=expectation, observed_allowed=observed
    )


def run_test(test: LitmusTest) -> TestResult:
    """Evaluate every expectation of a litmus test."""
    return TestResult(
        test=test,
        results=tuple(check_expectation(test, e) for e in test.expectations),
    )


def run_tests(tests: List[LitmusTest]) -> List[TestResult]:
    """Evaluate a batch of litmus tests."""
    return [run_test(test) for test in tests]


def outcomes_under(
    program: Program, model_key: str = FINAL
) -> List[Outcome]:
    """All outcomes of ``program`` under the named model (or the SC oracle)."""
    if model_key == SC:
        return list(sc_outcomes(program))
    return allowed_outcomes(program, MODEL_BY_KEY[model_key])
