"""The mixed-size ARMv8 axiomatic concurrency model (§4).

This is a byte-wise generalisation of ARM's reference axiomatic model
(Deacon's ``aarch64.cat``, as simplified by Pulte et al. [2018]) in the
direction the paper describes: accesses are ranges of bytes, ``reads-from``
and the coherence order are per-byte relations, and the event-level
relations the reference model's axioms consult (``rfe``, ``fre``, ``coe``,
``po-loc``) are obtained by projecting the byte-wise relations.

The three axioms of the reference model keep their shape:

* **internal** ("sc per location"), checked per byte:
  ``acyclic(po-loc_k ∪ co_k ∪ fr_k ∪ rf_k)`` for every byte ``k``;
* **atomic**: no write by another thread intervenes, on any byte, between a
  successful exclusive pair (``rmw ∩ (fre; coe) = ∅``);
* **external**: ``acyclic(obs ∪ dob ∪ aob ∪ bob)`` — the ordered-before
  acyclicity over observed-by, dependency-ordered-before, atomic-ordered-
  before and barrier-ordered-before.

Where the architecture's mixed-size behaviour is still under discussion the
paper (and we) choose the weaker reading, so the model may admit behaviours
a future architecture text forbids; what matters for compilation-scheme
correctness is that it is not *stronger* than the hardware.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.groundcore import ReadGroup, SignatureInterner, enumerate_assignments
from ..core.relations import Relation, acyclic_pairs
from .events import ArmEvent, ArmEventKind, BarrierKind, make_arm_init
from .program import (
    ArmEventTemplate,
    ArmLocalPath,
    ArmProgram,
    ArmTemplateKey,
    arm_program_paths,
)

ArmRbfTriple = Tuple[int, int, int]
ArmOutcome = Dict[str, int]

_MISSING = object()


def _decode_le(data: Tuple[int, ...]) -> int:
    """ARM reads decode as little-endian unsigned integers."""
    return int.from_bytes(bytes(data), "little")


def _rbf_by_byte_of(
    rbf: Iterable[ArmRbfTriple],
) -> Dict[int, Tuple[Tuple[int, int], ...]]:
    """The per-byte (writer, reader) projection of a byte-wise reads-from.

    Pair tuples are sorted so the projection of equal ``rbf`` sets is always
    the *same* tuple — the per-byte projections key the shared verdict memos
    (internal/atomic/fr), so canonical tuples are what lets every execution
    with the same projection at a byte hit the same entry.
    """
    grouped: Dict[int, List[Tuple[int, int]]] = {}
    for (k, w, r) in rbf:
        grouped.setdefault(k, []).append((w, r))
    return {k: tuple(sorted(pairs)) for k, pairs in grouped.items()}


def _fr_edges(
    order: Tuple[int, ...], rbf_pairs: Tuple[Tuple[int, int], ...]
) -> Tuple[Tuple[int, int], ...]:
    """From-read edges of one byte: the read before every coherence-later write."""
    pos = {w: i for i, w in enumerate(order)}
    edges: List[Tuple[int, int]] = []
    for (w, r) in rbf_pairs:
        start = pos.get(w)
        if start is None:
            continue
        for later in order[start + 1:]:
            edges.append((r, later))
    return tuple(edges)


def _fr_edges_memo(
    memo: Dict, order: Tuple[int, ...], rbf_pairs: Tuple[Tuple[int, int], ...]
) -> Tuple[Tuple[int, int], ...]:
    """``_fr_edges`` through the shared per-pre memo.

    The edges depend only on (coherence order, rbf-at-byte) — not on which
    byte, execution or assignment asked — so one entry serves every
    assignment of a pre-execution that projects to the same pair at any
    byte.
    """
    key = ("fr_pairs", order, rbf_pairs)
    edges = memo.get(key)
    if edges is None:
        edges = _fr_edges(order, rbf_pairs)
        memo[key] = edges
    return edges


@dataclass(frozen=True)
class ArmExecution:
    """A complete ARMv8 candidate execution with its execution witness.

    ``rbf`` is the byte-wise reads-from; ``co_by_byte`` maps each byte
    location to the coherence order (a tuple of writer eids, initial write
    first) of the writes covering it.
    """

    events: Tuple[ArmEvent, ...]
    po: Relation
    addr: Relation = field(default_factory=Relation)
    data: Relation = field(default_factory=Relation)
    ctrl: Relation = field(default_factory=Relation)
    rmw: Relation = field(default_factory=Relation)
    rbf: FrozenSet[ArmRbfTriple] = frozenset()
    co_by_byte: Tuple[Tuple[int, Tuple[int, ...]], ...] = ()
    # Memoisation of derived relations.  The grounding loop seeds this with
    # the coherence-independent entries shared by every execution of one
    # ``reads-byte-from`` assignment (see :func:`arm_ground_executions`).
    _cache: Dict[object, object] = field(
        default_factory=dict, compare=False, repr=False
    )

    def _memo(self, key, compute):
        cached = self._cache.get(key)
        if cached is None:
            cached = compute()
            self._cache[key] = cached
        return cached

    # -- lookups -------------------------------------------------------------

    def event(self, eid: int) -> ArmEvent:
        index = self._memo("event_index", lambda: {e.eid: e for e in self.events})
        try:
            return index[eid]
        except KeyError:
            raise KeyError(f"no ARM event with eid {eid}") from None

    def eid_tid(self) -> Dict[int, int]:
        """Thread of every event identifier (cached)."""
        return self._memo("eid_tid", lambda: {e.eid: e.tid for e in self.events})

    def memory_events(self) -> Tuple[ArmEvent, ...]:
        return self._memo(
            "memory_events", lambda: tuple(e for e in self.events if e.is_memory)
        )

    def reads(self) -> Tuple[ArmEvent, ...]:
        return tuple(e for e in self.events if e.is_read)

    def writes(self) -> Tuple[ArmEvent, ...]:
        return tuple(e for e in self.events if e.is_write)

    def coherence(self) -> Dict[int, Tuple[int, ...]]:
        return dict(self.co_by_byte)

    # -- byte-wise relations ----------------------------------------------------

    def _rbf_at(self, k: int) -> Tuple[Tuple[int, int], ...]:
        """The (writer, reader) pairs of byte ``k`` (coherence-independent)."""
        by_byte = self._memo("rbf_by_byte", self._compute_rbf_by_byte)
        return by_byte.get(k, ())

    def _compute_rbf_by_byte(self) -> Dict[int, Tuple[Tuple[int, int], ...]]:
        return _rbf_by_byte_of(self.rbf)

    def _co_order_at(self, k: int) -> Tuple[int, ...]:
        """The coherence order of byte ``k`` (linear scan of the small tuple)."""
        for (kk, order) in self.co_by_byte:
            if kk == k:
                return order
        return ()

    def _co_pos_at(self, k: int) -> Dict[int, int]:
        """Coherence position of each writer of byte ``k``.

        Cache entries are keyed by the order itself so executions sharing a
        cache dict (the coherence variants of one grounding) reuse them.
        """
        order = self._co_order_at(k)
        key = ("co_pos", k, order)
        positions = self._cache.get(key)
        if positions is None:
            positions = {w: i for i, w in enumerate(order)}
            self._cache[key] = positions
        return positions

    def _fr_pairs_at(self, k: int) -> Tuple[Tuple[int, int], ...]:
        """From-read edges at byte ``k`` as a plain pair tuple."""
        return self._fr_pairs_for(k, self._co_order_at(k))

    def _fr_pairs_for(
        self, k: int, order: Tuple[int, ...]
    ) -> Tuple[Tuple[int, int], ...]:
        """From-read edges at byte ``k`` under an explicit coherence order.

        Memoised per (order, rbf-at-byte) on the shared per-pre memo when
        the grounding loop provides one, so every assignment of the
        pre-execution with the same projection shares the entry.
        """
        cache = self._cache
        memo = cache.get("pre_local_memo", cache)
        return _fr_edges_memo(memo, order, self._rbf_at(k))

    def rf_at(self, k: int) -> Relation:
        """Reads-from restricted to byte ``k``."""
        return Relation(self._rbf_at(k))

    def co_at(self, k: int) -> Relation:
        """Coherence order restricted to byte ``k``."""
        order = self.coherence().get(k, ())
        return Relation.from_total_order(order)

    def fr_at(self, k: int) -> Relation:
        """From-read at byte ``k``: the read is before every coherence-later write."""
        return Relation(self._fr_pairs_at(k))

    def bytes_accessed(self) -> FrozenSet[int]:
        def compute():
            locations: Set[int] = set()
            for event in self.memory_events():
                locations.update(event.footprint)
            return frozenset(locations)

        return self._memo("bytes_accessed", compute)

    # -- event-level projections -------------------------------------------------

    def reads_from(self) -> Relation:
        return self._memo(
            "rf", lambda: Relation({(w, r) for (_k, w, r) in self.rbf})
        )

    def _split_internal_pairs(
        self, pairs: Iterator[Tuple[int, int]]
    ) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]:
        internal: List[Tuple[int, int]] = []
        external: List[Tuple[int, int]] = []
        for (a, b) in pairs:
            if self.event(a).tid == self.event(b).tid:
                internal.append((a, b))
            else:
                external.append((a, b))
        return internal, external

    def _split_internal(self, relation: Relation) -> Tuple[Relation, Relation]:
        internal, external = self._split_internal_pairs(iter(relation))
        return Relation(internal), Relation(external)

    def rf_internal_external(self) -> Tuple[Relation, Relation]:
        return self._memo(
            "rf_split", lambda: self._split_internal(self.reads_from())
        )

    def _co_pairs(self) -> List[Tuple[int, int]]:
        pairs: Set[Tuple[int, int]] = set()
        for _k, order in self.co_by_byte:
            for i, a in enumerate(order):
                for b in order[i + 1:]:
                    pairs.add((a, b))
        return list(pairs)

    def _fr_pairs(self) -> List[Tuple[int, int]]:
        pairs: Set[Tuple[int, int]] = set()
        for k in self.bytes_accessed():
            pairs.update(self._fr_pairs_at(k))
        return list(pairs)

    def coherence_relation(self) -> Relation:
        return Relation(self._co_pairs())

    def from_read_relation(self) -> Relation:
        return Relation(self._fr_pairs())

    # -- reference-model relations -------------------------------------------------

    def obs(self) -> Relation:
        """``obs = rfe ∪ fre ∪ coe`` (external observations)."""
        _rfi, rfe = self.rf_internal_external()
        _coi, coe = self._split_internal_pairs(iter(self._co_pairs()))
        _fri, fre = self._split_internal_pairs(iter(self._fr_pairs()))
        return Relation(set(rfe.pairs) | set(fre) | set(coe))

    def _selector(self, predicate) -> FrozenSet[int]:
        return frozenset(e.eid for e in self.events if predicate(e))

    def dob(self) -> Relation:
        """Dependency-ordered-before."""
        return self._memo("dob", self._compute_dob)

    def _compute_dob(self) -> Relation:
        writes = self._selector(lambda e: e.is_write)
        reads = self._selector(lambda e: e.is_read)
        isb = self._selector(lambda e: e.is_fence and e.barrier is BarrierKind.ISB)
        rfi, _rfe = self.rf_internal_external()
        dep = self.addr.union(self.data)

        parts = [
            self.addr,
            self.data,
            self.ctrl.restrict(codomain=writes),
            self.ctrl.compose(Relation.identity(isb)).compose(self.po).restrict(
                codomain=reads
            ),
            self.addr.compose(self.po).restrict(codomain=writes),
            dep.compose(rfi),
        ]
        return Relation().union(*parts)

    def aob(self) -> Relation:
        """Atomic-ordered-before: the exclusive pair plus its forwarding edge."""
        return self._memo("aob", self._compute_aob)

    def _compute_aob(self) -> Relation:
        rfi, _rfe = self.rf_internal_external()
        exclusive_writes = self._selector(lambda e: e.is_write and e.exclusive)
        acquires = self._selector(lambda e: e.is_read and e.acquire)
        forwarded = (
            Relation.identity(exclusive_writes)
            .compose(rfi)
            .restrict(codomain=acquires)
        )
        return self.rmw.union(forwarded)

    def bob(self) -> Relation:
        """Barrier-ordered-before."""
        return self._memo("bob", self._compute_bob)

    def _compute_bob(self) -> Relation:
        memory = self._selector(lambda e: e.is_memory)
        reads = self._selector(lambda e: e.is_read)
        writes = self._selector(lambda e: e.is_write)
        acquires = self._selector(lambda e: e.is_acquire)
        releases = self._selector(lambda e: e.is_release)
        dmb_full = self._selector(
            lambda e: e.is_fence and e.barrier is BarrierKind.FULL
        )
        dmb_ld = self._selector(lambda e: e.is_fence and e.barrier is BarrierKind.LD)
        dmb_st = self._selector(lambda e: e.is_fence and e.barrier is BarrierKind.ST)
        po = self.po

        def chain(dom, mids, cod) -> Relation:
            first = po.restrict(domain=dom, codomain=mids)
            second = po.restrict(domain=mids, codomain=cod)
            return first.compose(second)

        parts = [
            chain(memory, dmb_full, memory),
            chain(reads, dmb_ld, memory),
            chain(writes, dmb_st, writes),
            po.restrict(domain=releases, codomain=acquires),
            po.restrict(domain=acquires, codomain=memory),
            po.restrict(domain=memory, codomain=releases),
        ]
        return Relation().union(*parts)

    def _ob_fixed_pairs(self) -> Tuple[Tuple[int, int], ...]:
        """The coherence-independent part of ``ob``: ``rfe ∪ dob ∪ aob ∪ bob``."""

        def compute():
            _rfi, rfe = self.rf_internal_external()
            pairs = set(rfe.pairs)
            pairs.update(self.dob().pairs)
            pairs.update(self.aob().pairs)
            pairs.update(self.bob().pairs)
            return tuple(pairs)

        return self._memo("ob_fixed", compute)

    def ordered_before(self) -> Relation:
        """``ob = obs ∪ dob ∪ aob ∪ bob`` (external visibility requirement)."""
        return self.obs().union(self.dob(), self.aob(), self.bob())

    # -- rendering ----------------------------------------------------------------

    def describe(self) -> str:
        lines = ["ArmExecution:"]
        for event in sorted(self.events, key=lambda e: (e.tid, e.eid)):
            lines.append(f"  {event.describe()}  (tid={event.tid})")
        lines.append(f"  po:  {sorted(self.po.pairs)}")
        lines.append(f"  rbf: {sorted(self.rbf)}")
        lines.append(f"  co:  {dict(self.co_by_byte)}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# validity
# ---------------------------------------------------------------------------


def _po_loc_pairs_at(execution: ArmExecution, k: int) -> Tuple[Tuple[int, int], ...]:
    """``po`` restricted to the accessors of byte ``k`` (coherence-independent)."""
    pairs = execution._cache.get(("po_loc", k))
    if pairs is None:
        accessors = frozenset(
            e.eid for e in execution.memory_events() if k in e.footprint
        )
        pairs = tuple(
            (a, b) for (a, b) in execution.po if a in accessors and b in accessors
        )
        execution._cache[("po_loc", k)] = pairs
    return pairs


def _internal_verdict(
    memo: Dict,
    po_loc: Tuple[Tuple[int, int], ...],
    k: int,
    order: Tuple[int, ...],
    rbf_pairs: Tuple[Tuple[int, int], ...],
) -> bool:
    """The byte-``k`` SC-per-location verdict, memoised on the shared memo.

    The verdict depends only on (byte, order, reads-from-at-byte) — po-loc
    is fixed per pre-execution — so both callers (the execution method below
    and the grounding loop's scaffold filter) share one entry per projection
    across *all* assignments of one pre-execution.
    """
    key = ("internal", k, order, rbf_pairs)
    verdict = memo.get(key)
    if verdict is None:
        co_pairs = [(a, b) for i, a in enumerate(order) for b in order[i + 1:]]
        edges = itertools.chain(
            po_loc,
            co_pairs,
            _fr_edges_memo(memo, order, rbf_pairs),
            rbf_pairs,
        )
        verdict = acyclic_pairs(edges)
        memo[key] = verdict
    return verdict


def _internal_ok_at(
    execution: ArmExecution, k: int, order: Tuple[int, ...]
) -> bool:
    """The byte-``k`` SC-per-location verdict under an explicit order."""
    cache = execution._cache
    memo = cache.get("pre_local_memo", cache)
    return _internal_verdict(
        memo, _po_loc_pairs_at(execution, k), k, order, execution._rbf_at(k)
    )


def arm_internal_consistent(execution: ArmExecution) -> bool:
    """The per-byte SC-per-location ("internal visibility") requirement."""
    for k in execution.bytes_accessed():
        if not _internal_ok_at(execution, k, execution._co_order_at(k)):
            return False
    return True


def _atomic_verdict(
    memo: Dict,
    tid_of: Mapping[int, int],
    lr: int,
    sw: int,
    k: int,
    order: Tuple[int, ...],
    rbf_pairs: Tuple[Tuple[int, int], ...],
) -> bool:
    """Atomicity of one exclusive pair at one byte, memoised on the shared memo."""
    key = ("atomic", lr, sw, k, order, rbf_pairs)
    verdict = memo.get(key)
    if verdict is None:
        verdict = True
        load_tid = tid_of[lr]
        pos = {w: i for i, w in enumerate(order)}
        sw_pos = pos.get(sw)
        for (_r, intervener) in _fr_edges_memo(memo, order, rbf_pairs):
            if _r != lr:
                continue
            if tid_of[intervener] == load_tid:
                continue
            i_pos = pos.get(intervener)
            if i_pos is not None and sw_pos is not None and i_pos < sw_pos:
                verdict = False
                break
        memo[key] = verdict
    return verdict


def _atomic_ok_at(
    execution: ArmExecution,
    lr: int,
    sw: int,
    k: int,
    order: Tuple[int, ...],
) -> bool:
    """Atomicity of one exclusive pair at one byte under an explicit order."""
    cache = execution._cache
    memo = cache.get("pre_local_memo", cache)
    return _atomic_verdict(
        memo, execution.eid_tid(), lr, sw, k, order, execution._rbf_at(k)
    )


def arm_atomicity_holds(execution: ArmExecution) -> bool:
    """No foreign write intervenes inside a successful exclusive pair."""
    for (lr, sw) in execution.rmw:
        load = execution.event(lr)
        store = execution.event(sw)
        for k in set(load.footprint) & set(store.footprint):
            if not _atomic_ok_at(execution, lr, sw, k, execution._co_order_at(k)):
                return False
    return True


def arm_external_consistent(execution: ArmExecution) -> bool:
    """The ordered-before acyclicity (external visibility requirement).

    The coherence-independent part of ``ob`` (``rfe ∪ dob ∪ aob ∪ bob``) is
    cached — and shared across the coherence choices of one grounding — so
    only ``fre``/``coe`` are recomputed per execution.
    """
    _coi, coe = execution._split_internal_pairs(iter(execution._co_pairs()))
    _fri, fre = execution._split_internal_pairs(iter(execution._fr_pairs()))
    return acyclic_pairs(
        itertools.chain(execution._ob_fixed_pairs(), coe, fre)
    )


def arm_is_valid(execution: ArmExecution) -> bool:
    """Is the execution allowed by the mixed-size ARMv8 axiomatic model?"""
    return (
        arm_internal_consistent(execution)
        and arm_atomicity_holds(execution)
        and arm_external_consistent(execution)
    )


def arm_violations(execution: ArmExecution) -> List[str]:
    """The names of the violated axioms (diagnostics)."""
    violations = []
    if not arm_internal_consistent(execution):
        violations.append("internal")
    if not arm_atomicity_holds(execution):
        violations.append("atomic")
    if not arm_external_consistent(execution):
        violations.append("external")
    return violations


# ---------------------------------------------------------------------------
# grounding ARM programs into candidate executions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArmPreExecution:
    """One path combination with event identifiers and static relations."""

    program: ArmProgram
    paths: Tuple[ArmLocalPath, ...]
    init_event: ArmEvent
    templates: Tuple[ArmEventTemplate, ...]
    eid_of: Dict[ArmTemplateKey, int]
    po: Relation
    addr: Relation
    data: Relation
    ctrl: Relation
    rmw: Relation

    def _lazy(self, attr: str, compute):
        cached = getattr(self, attr, _MISSING)
        if cached is _MISSING:
            cached = compute()
            object.__setattr__(self, attr, cached)
        return cached

    def memory_templates_by_key(self) -> Dict[ArmTemplateKey, ArmEventTemplate]:
        """The memory-event templates keyed by template key (cached)."""
        return self._lazy(
            "_memory_templates_by_key",
            lambda: {t.key: t for t in self.templates if t.is_memory},
        )

    def eid_tid(self) -> Dict[int, int]:
        """Thread of every event identifier (including the Init write)."""

        def compute():
            tids = {self.init_event.eid: self.init_event.tid}
            for template in self.templates:
                tids[self.eid_of[template.key]] = template.tid
            return tids

        return self._lazy("_eid_tid", compute)

    def bytes_accessed(self) -> FrozenSet[int]:
        """Byte locations touched by any event (template footprints + Init)."""

        def compute():
            locations: Set[int] = set(self.init_event.footprint)
            for template in self.templates:
                if template.is_memory:
                    locations.update(template.footprint())
            return frozenset(locations)

        return self._lazy("_bytes_accessed", compute)

    def eid_footprints(self) -> Dict[int, FrozenSet[int]]:
        """Byte footprint of every memory event (template-fixed)."""
        return self._lazy(
            "_eid_footprints",
            lambda: {
                self.eid_of[t.key]: frozenset(t.footprint())
                for t in self.templates
                if t.is_memory
            },
        )

    def po_loc_by_byte(self) -> Dict[int, Tuple[Tuple[int, int], ...]]:
        """``po`` restricted to the accessors of each byte.

        Footprints are fixed by the templates (grounding only fills in byte
        *values*), so this is shared by every execution of the combination.
        """

        def compute():
            accessors: Dict[int, Set[int]] = {k: set() for k in self.bytes_accessed()}
            for template in self.templates:
                if not template.is_memory:
                    continue
                eid = self.eid_of[template.key]
                for k in template.footprint():
                    accessors[k].add(eid)
            po_pairs = tuple(self.po.pairs)
            return {
                k: tuple(
                    (a, b) for (a, b) in po_pairs if a in elems and b in elems
                )
                for k, elems in accessors.items()
            }

        return self._lazy("_po_loc_by_byte", compute)

    def exclusive_write_eids(self) -> FrozenSet[int]:
        return self._lazy(
            "_exclusive_write_eids",
            lambda: frozenset(
                self.eid_of[t.key]
                for t in self.templates
                if t.is_write and t.exclusive
            ),
        )

    def acquire_read_eids(self) -> FrozenSet[int]:
        return self._lazy(
            "_acquire_read_eids",
            lambda: frozenset(
                self.eid_of[t.key]
                for t in self.templates
                if t.is_read and t.acquire
            ),
        )

    def dep_by_right(self) -> Dict[int, Tuple[int, ...]]:
        """``addr ∪ data`` grouped by right component, for ``dep ; rfi``."""

        def compute():
            grouped: Dict[int, List[int]] = {}
            for (a, b) in self.addr.union(self.data):
                grouped.setdefault(b, []).append(a)
            return {b: tuple(lefts) for b, lefts in grouped.items()}

        return self._lazy("_dep_by_right", compute)

    def static_write_state(self) -> Tuple[Dict[int, Tuple[int, ...]], Dict[int, int]]:
        """Byte values/starts of writes fixed before grounding (Init + const)."""

        def compute():
            write_bytes = {self.init_event.eid: self.init_event.data}
            write_start = {self.init_event.eid: self.init_event.addr}
            for template in self.templates:
                if not template.is_write:
                    continue
                eid = self.eid_of[template.key]
                write_start[eid] = template.addr
                spec = template.write_spec
                if spec is not None and spec.kind == "const":
                    mask = (1 << (8 * template.size)) - 1
                    write_bytes[eid] = tuple(
                        (spec.payload & mask).to_bytes(template.size, "little")
                    )
            return write_bytes, write_start

        return self._lazy("_static_write_state", compute)

    def constraints_by_source(self) -> Dict[ArmTemplateKey, Tuple]:
        """Branch constraints of every path, grouped by source template."""

        def compute():
            grouped: Dict[ArmTemplateKey, List] = {}
            for path in self.paths:
                for constraint in path.constraints:
                    grouped.setdefault(constraint.source, []).append(constraint)
            return {key: tuple(cs) for key, cs in grouped.items()}

        return self._lazy("_constraints_by_source", compute)

    def static_ob_pairs(self) -> Tuple[Tuple[int, int], ...]:
        """The rbf- and coherence-independent part of ``ordered-before``.

        Covers ``bob``, the dependency parts of ``dob`` that do not involve
        ``rfi``, and the ``rmw`` part of ``aob`` — all fixed by the chosen
        paths.  The rbf-dependent remainder (``rfe``, ``dep ; rfi`` and the
        exclusive-forwarding edges) is added per grounding.
        """

        def compute():
            def selector(predicate) -> FrozenSet[int]:
                return frozenset(
                    self.eid_of[t.key] for t in self.templates if predicate(t)
                )

            po = self.po
            memory = selector(lambda t: t.is_memory)
            reads = selector(lambda t: t.is_read)
            writes = selector(lambda t: t.is_write)
            acquires = self.acquire_read_eids()
            releases = selector(lambda t: t.is_write and t.release)
            isb = selector(
                lambda t: t.kind is ArmEventKind.FENCE
                and t.barrier is BarrierKind.ISB
            )
            dmb_full = selector(
                lambda t: t.kind is ArmEventKind.FENCE
                and t.barrier is BarrierKind.FULL
            )
            dmb_ld = selector(
                lambda t: t.kind is ArmEventKind.FENCE
                and t.barrier is BarrierKind.LD
            )
            dmb_st = selector(
                lambda t: t.kind is ArmEventKind.FENCE
                and t.barrier is BarrierKind.ST
            )

            def chain(dom, mids, cod) -> Relation:
                first = po.restrict(domain=dom, codomain=mids)
                second = po.restrict(domain=mids, codomain=cod)
                return first.compose(second)

            parts = [
                # dob minus its rfi-dependent part
                self.addr,
                self.data,
                self.ctrl.restrict(codomain=writes),
                self.ctrl.compose(Relation.identity(isb)).compose(po).restrict(
                    codomain=reads
                ),
                self.addr.compose(po).restrict(codomain=writes),
                # aob minus forwarding
                self.rmw,
                # bob
                chain(memory, dmb_full, memory),
                chain(reads, dmb_ld, memory),
                chain(writes, dmb_st, writes),
                po.restrict(domain=releases, codomain=acquires),
                po.restrict(domain=acquires, codomain=memory),
                po.restrict(domain=memory, codomain=releases),
            ]
            return tuple(Relation().union(*parts).pairs)

        return self._lazy("_static_ob_pairs", compute)


@dataclass(frozen=True)
class ArmGroundExecution:
    """A concrete ARM execution together with its final register values.

    ``pre`` points back to the pre-execution it was grounded from; runs of
    the operational model reconstruct their execution directly from the
    trace and leave it ``None``.
    """

    execution: ArmExecution
    outcome: ArmOutcome
    pre: Optional[ArmPreExecution] = None


def arm_pre_executions(program: ArmProgram) -> Iterator[ArmPreExecution]:
    """One pre-execution per combination of per-thread control-flow paths."""
    for paths in arm_program_paths(program):
        init = make_arm_init(program.memory_size, eid=0)
        next_eid = 1
        eid_of: Dict[ArmTemplateKey, int] = {}
        templates: List[ArmEventTemplate] = []
        po_pairs: List[Tuple[int, int]] = []
        data_pairs: List[Tuple[int, int]] = []
        ctrl_pairs: List[Tuple[int, int]] = []
        rmw_pairs: List[Tuple[int, int]] = []
        for path in paths:
            thread_eids: List[int] = []
            for template in path.templates:
                templates.append(template)
                eid_of[template.key] = next_eid
                thread_eids.append(next_eid)
                next_eid += 1
            for i, a in enumerate(thread_eids):
                for b in thread_eids[i + 1:]:
                    po_pairs.append((a, b))
        for template in templates:
            eid = eid_of[template.key]
            for source in template.data_sources:
                data_pairs.append((eid_of[source], eid))
            for source in template.ctrl_sources:
                ctrl_pairs.append((eid_of[source], eid))
            if template.rmw_partner is not None:
                rmw_pairs.append((eid_of[template.rmw_partner], eid))
        yield ArmPreExecution(
            program=program,
            paths=paths,
            init_event=init,
            templates=tuple(templates),
            eid_of=eid_of,
            po=Relation(po_pairs),
            addr=Relation(),
            data=Relation(data_pairs),
            ctrl=Relation(ctrl_pairs),
            rmw=Relation(rmw_pairs),
        )


def _arm_writers_by_byte(pre: ArmPreExecution) -> Dict[int, List[int]]:
    writers: Dict[int, List[int]] = {}
    for k in pre.init_event.footprint:
        writers.setdefault(k, []).append(pre.init_event.eid)
    for template in pre.templates:
        if not template.is_write:
            continue
        eid = pre.eid_of[template.key]
        for k in template.footprint():
            writers.setdefault(k, []).append(eid)
    return writers


def _arm_resolve_values(
    pre: ArmPreExecution, assignment: Dict[Tuple[int, int], int]
) -> Optional[Tuple[Dict[ArmTemplateKey, Tuple[int, ...]], Dict[ArmTemplateKey, Tuple[int, ...]]]]:
    """Resolve read/write byte values; ``None`` on cyclic value dependencies.

    Starts from the per-pre static write values (Init + ``const`` stores),
    so the fixpoint only iterates over reads and value-dependent stores.
    """
    static_bytes, write_start = pre.static_write_state()
    write_bytes: Dict[int, Tuple[int, ...]] = dict(static_bytes)
    read_bytes: Dict[ArmTemplateKey, Tuple[int, ...]] = {}
    read_values: Dict[ArmTemplateKey, int] = {}
    out_bytes: Dict[ArmTemplateKey, Tuple[int, ...]] = {}

    templates = pre.memory_templates_by_key()
    pending = set()
    for key, template in templates.items():
        eid = pre.eid_of[key]
        if template.is_write and eid in static_bytes:
            out_bytes[key] = static_bytes[eid]
            if not template.is_read:
                continue
        pending.add(key)

    progress = True
    while pending and progress:
        progress = False
        for key in list(pending):
            template = templates[key]
            eid = pre.eid_of[key]
            if template.is_read and key not in read_bytes:
                data: List[int] = []
                complete = True
                for k in template.footprint():
                    writer = assignment[(k, eid)]
                    if writer not in write_bytes:
                        complete = False
                        break
                    data.append(write_bytes[writer][k - write_start[writer]])
                if complete:
                    resolved = tuple(data)
                    read_bytes[key] = resolved
                    read_values[key] = int.from_bytes(bytes(resolved), "little")
                    progress = True
            if template.is_write and key not in out_bytes:
                spec = template.write_spec
                assert spec is not None
                value: Optional[int] = None
                if spec.kind == "const":
                    value = spec.payload
                elif spec.kind == "copy":
                    assert spec.source is not None
                    if spec.source in read_values:
                        value = read_values[spec.source] + spec.add_immediate
                if value is not None:
                    mask = (1 << (8 * template.size)) - 1
                    out_bytes[key] = tuple(
                        (value & mask).to_bytes(template.size, "little")
                    )
                    write_bytes[eid] = out_bytes[key]
                    progress = True
            done_r = (not template.is_read) or key in read_bytes
            done_w = (not template.is_write) or key in out_bytes
            if done_r and done_w:
                pending.discard(key)
    if pending:
        return None
    return read_bytes, out_bytes


def _arm_constraints_ok(
    pre: ArmPreExecution, read_bytes: Dict[ArmTemplateKey, Tuple[int, ...]]
) -> bool:
    for path in pre.paths:
        for constraint in path.constraints:
            data = read_bytes[constraint.source]
            value = int.from_bytes(bytes(data), "little")
            if constraint.equal and value != constraint.constant:
                return False
            if not constraint.equal and value == constraint.constant:
                return False
    return True


def _arm_build_events(
    pre: ArmPreExecution,
    read_bytes: Dict[ArmTemplateKey, Tuple[int, ...]],
    out_bytes: Dict[ArmTemplateKey, Tuple[int, ...]],
) -> List[ArmEvent]:
    events: List[ArmEvent] = [pre.init_event]
    for template in pre.templates:
        eid = pre.eid_of[template.key]
        if template.kind is ArmEventKind.FENCE:
            events.append(
                ArmEvent(
                    eid=eid,
                    tid=template.tid,
                    kind=ArmEventKind.FENCE,
                    barrier=template.barrier,
                )
            )
            continue
        data = (
            read_bytes[template.key]
            if template.is_read
            else out_bytes[template.key]
        )
        events.append(
            ArmEvent(
                eid=eid,
                tid=template.tid,
                kind=template.kind,
                addr=template.addr,
                data=tuple(data),
                acquire=template.acquire,
                release=template.release,
                exclusive=template.exclusive,
            )
        )
    return events


def _coherence_group_orders(
    pre: ArmPreExecution, group_coherence: bool
) -> List[Tuple[Tuple[int, ...], List[Tuple[int, ...]]]]:
    """The coherence choice structure: (byte locations, candidate orders) groups.

    With ``group_coherence=True`` every byte written by the same set of
    events shares one group (and hence one order); this loses some per-byte
    coherence diversity (only relevant to tearing behaviours) but keeps the
    enumeration small.  With ``group_coherence=False`` every byte is its
    own group.  A full coherence choice is one order per group.
    """
    writers = _arm_writers_by_byte(pre)
    init_eid = pre.init_event.eid
    groups: List[Tuple[Tuple[int, ...], List[int]]] = []
    if group_coherence:
        by_writer_set: Dict[Tuple[int, ...], List[int]] = {}
        for k, ws in writers.items():
            by_writer_set.setdefault(tuple(sorted(ws)), []).append(k)
        groups = [
            (tuple(byte_locations), [w for w in ws if w != init_eid])
            for ws, byte_locations in by_writer_set.items()
        ]
    else:
        groups = [
            ((k,), [w for w in writers[k] if w != init_eid])
            for k in sorted(writers)
        ]
    return [
        (
            byte_locations,
            [(init_eid,) + perm for perm in itertools.permutations(others)],
        )
        for byte_locations, others in groups
    ]


def _arm_outcome(
    pre: ArmPreExecution, read_bytes: Dict[ArmTemplateKey, Tuple[int, ...]]
) -> ArmOutcome:
    outcome: ArmOutcome = {}
    for path in pre.paths:
        for register, key in path.registers:
            if key in read_bytes:
                outcome[f"{path.tid}:{register}"] = int.from_bytes(
                    bytes(read_bytes[key]), "little"
                )
    return outcome


@dataclass
class _ArmGroundingClass:
    """The per-signature-class state shared by many reads-byte-from assignments.

    The *signature* is the pair (value profile, event-level rf signature):
    every per-class attribute below is a function of it — byte-level writer
    choices never enter — so the dozens of byte-wise assignments that
    project to one signature (a read covering several bytes of equal-valued
    writers can justify each byte independently) build this state **once**.
    This is the ARM mirror of the JavaScript shape-quotient cache sharing
    in :func:`repro.lang.enumeration._build_execution`.
    """

    events: Tuple[ArmEvent, ...]
    event_index: Dict[int, ArmEvent]
    outcome: ArmOutcome
    rf_pairs: FrozenSet[Tuple[int, int]]
    ob_fixed: Tuple[Tuple[int, int], ...]
    cache: Dict[object, object]


@dataclass
class _ArmPreScaffold:
    """The per-pre-execution shared state of one grounding enumeration.

    Everything here is assignment-independent: the coherence choice
    structure, the signature-class interner, the shared verdict memo (and
    the group-filter memo layered over it), the static per-pre maps the
    scaffold verdicts consult, and the flat *slot structure* of the
    assignment enumeration.

    The slot structure is what makes members cheap: the backtracking core
    fills one writer per (byte, reader) slot in a fixed order, so the
    slot-ordered writer tuple (``choices``) is a bijective encoding of the
    member — each reader has exactly one writer per byte, so equal
    projections have equal sub-tuples and vice versa.  Memo keys are
    therefore plain int tuples sliced out of ``choices``
    (``group_key_slots``), and the canonical per-byte pair tuples are only
    rebuilt on a memo miss (``group_byte_slots``/``byte_slots``).
    """

    pre: ArmPreExecution
    group_list: List[Tuple[Tuple[int, ...], List[Tuple[int, ...]]]]
    memo: Dict
    filter_memo: Dict
    tid_of: Dict[int, int]
    po_loc: Dict[int, Tuple[Tuple[int, int], ...]]
    footprints: Dict[int, FrozenSet[int]]
    rmw_pairs: Tuple[Tuple[int, int], ...]
    # Flat slot structure (see class docstring):
    slots: Tuple[Tuple[int, int], ...]  # (byte, reader eid) per slot
    slot_readers: Tuple[int, ...]  # reader eid per slot
    byte_slots: Dict[int, Tuple[Tuple[int, int], ...]]  # k -> ((slot, reader), ...)
    byte_key_slots: Dict[int, Tuple[int, ...]]  # k -> slot indices
    group_of_byte: Dict[int, int]  # k -> index into group_list

    def rbf_pairs_at(
        self, choices: Tuple[int, ...], entries: Tuple[Tuple[int, int], ...]
    ) -> Tuple[Tuple[int, int], ...]:
        """The canonical (writer, reader) tuple of one byte's slot entries."""
        return tuple(sorted((choices[si], r) for (si, r) in entries))

    def byte_order_mask(self, k: int, byte_key: Tuple[int, ...], choices) -> int:
        """Bitmask over byte ``k``'s group orders passing internal ∧ atomicity.

        Bit ``i`` is set iff ``group_list[group_of_byte[k]]``'s ``i``-th
        coherence order satisfies the byte-decomposed local axioms at
        ``k`` under the member's projection — which ``byte_key`` (the
        writer choices at ``k``'s slots) encodes bijectively, so one mask
        serves every assignment of the pre-execution that agrees at this
        byte.  A member's per-group verdict is the AND of its bytes'
        masks: the per-byte projections recur far more often than whole
        per-group projections (a single-location program has ONE group
        spanning every byte, whose projection is the whole member).
        """
        mask_key = ("byte_mask", k, byte_key)
        mask = self.filter_memo.get(mask_key)
        if mask is None:
            rbf_pairs = self.rbf_pairs_at(choices, self.byte_slots.get(k, ()))
            orders = self.group_list[self.group_of_byte[k]][1]
            memo = self.memo
            po_loc_k = self.po_loc[k]
            tid_of = self.tid_of
            atomic_pairs = [
                (lr, sw)
                for (lr, sw) in self.rmw_pairs
                if k in self.footprints[lr] and k in self.footprints[sw]
            ]
            mask = 0
            for i, order in enumerate(orders):
                if not _internal_verdict(memo, po_loc_k, k, order, rbf_pairs):
                    continue
                if any(
                    not _atomic_verdict(memo, tid_of, lr, sw, k, order, rbf_pairs)
                    for (lr, sw) in atomic_pairs
                ):
                    continue
                mask |= 1 << i
            self.filter_memo[mask_key] = mask
        return mask

    def orders_for_mask(
        self, group_index: int, mask: int
    ) -> List[Tuple[int, ...]]:
        """Decode a surviving-orders bitmask back to the order list (memoised)."""
        orders_key = ("mask_orders", group_index, mask)
        surviving = self.filter_memo.get(orders_key)
        if surviving is None:
            orders = self.group_list[group_index][1]
            surviving = [
                order for i, order in enumerate(orders) if mask & (1 << i)
            ]
            self.filter_memo[orders_key] = surviving
        return surviving


@dataclass
class _ArmGrounding:
    """One reads-byte-from assignment: its class plus the byte-level witness.

    ``cls`` carries everything shared per signature class (events, outcome,
    ``ob_fixed``, the class cache); the member itself only owns its
    slot-ordered writer ``choices`` tuple — the bijective encoding of the
    byte-level witness — plus the per-group key slices that address the
    shared verdict memos.  ``rbf``/``rbf_by_byte``, the prototype execution
    and the member cache are all materialised lazily: assignments whose
    every coherence variant dies on a local verdict never build any of
    them.
    """

    pre: ArmPreExecution
    scaffold: _ArmPreScaffold
    cls: _ArmGroundingClass
    choices: Tuple[int, ...]
    group_list: List[Tuple[Tuple[int, ...], List[Tuple[int, ...]]]]
    _byte_keys: Optional[Dict[int, Tuple[int, ...]]] = None
    _filtered: Optional[List[List[Tuple[int, ...]]]] = None
    _rbf: Optional[FrozenSet[ArmRbfTriple]] = None
    _rbf_by_byte: Optional[Dict[int, Tuple[Tuple[int, int], ...]]] = None
    _prototype: Optional[ArmExecution] = None

    @property
    def outcome(self) -> ArmOutcome:
        return self.cls.outcome

    @property
    def byte_keys(self) -> Dict[int, Tuple[int, ...]]:
        """Per byte: the writer choices at its slots (the memo sub-keys)."""
        if self._byte_keys is None:
            choices = self.choices
            self._byte_keys = {
                k: tuple(choices[si] for si in slot_indices)
                for k, slot_indices in self.scaffold.byte_key_slots.items()
            }
        return self._byte_keys

    @property
    def rbf(self) -> FrozenSet[ArmRbfTriple]:
        if self._rbf is None:
            self._rbf = frozenset(
                (k, w, r)
                for (k, r), w in zip(self.scaffold.slots, self.choices)
            )
        return self._rbf

    @property
    def rbf_by_byte(self) -> Dict[int, Tuple[Tuple[int, int], ...]]:
        if self._rbf_by_byte is None:
            scaffold = self.scaffold
            choices = self.choices
            self._rbf_by_byte = {
                k: scaffold.rbf_pairs_at(choices, entries)
                for k, entries in scaffold.byte_slots.items()
            }
        return self._rbf_by_byte

    @property
    def prototype(self) -> ArmExecution:
        """The member's execution scaffold (events + rbf, no coherence yet)."""
        if self._prototype is None:
            # The member cache extends the class cache with the one
            # member-dependent entry; coherence-dependent entries are keyed
            # by the byte's order tuple, so all coherence variants share
            # this ONE dict without poisoning each other.
            member_cache = self.cls.cache.copy()
            member_cache["rbf_by_byte"] = self.rbf_by_byte
            self._prototype = ArmExecution(
                events=self.cls.events,
                po=self.pre.po,
                addr=self.pre.addr,
                data=self.pre.data,
                ctrl=self.pre.ctrl,
                rmw=self.pre.rmw,
                rbf=self.rbf,
                _cache=member_cache,
            )
        return self._prototype

    def execution_with(
        self, combo: Tuple[Tuple[int, ...], ...]
    ) -> ArmExecution:
        """The execution choosing ``combo[i]`` for group ``i``."""
        coherence: Dict[int, Tuple[int, ...]] = {}
        for (byte_locations, _orders), order in zip(self.group_list, combo):
            for k in byte_locations:
                coherence[k] = order
        proto = self.prototype
        return ArmExecution(
            events=proto.events,
            po=proto.po,
            addr=proto.addr,
            data=proto.data,
            ctrl=proto.ctrl,
            rmw=proto.rmw,
            rbf=proto.rbf,
            co_by_byte=tuple(sorted(coherence.items())),
            _cache=proto._cache,
        )


def _arm_read_groups(pre: ArmPreExecution) -> Optional[List[ReadGroup]]:
    """The shared-core read groups of one pre-execution (``None`` if infeasible).

    Hoisted per pre: the grounding loop derives its flat slot structure
    (the member-signature encoding) from the same groups the enumeration
    runs on, so the two can never drift.
    """

    def compute():
        writers = _arm_writers_by_byte(pre)
        constraints = pre.constraints_by_source()
        read_groups: List[ReadGroup] = []
        for template in pre.templates:
            if not template.is_read:
                continue
            eid = pre.eid_of[template.key]
            slots: List[Tuple[int, int]] = []
            locations: List[int] = []
            choices: List[Tuple[int, ...]] = []
            for k in template.footprint():
                candidates = [w for w in writers.get(k, []) if w != eid]
                if not candidates:
                    return None
                slots.append((k, eid))
                locations.append(k)
                choices.append(tuple(candidates))
            read_groups.append(
                ReadGroup(
                    key=template.key,
                    slots=tuple(slots),
                    locations=tuple(locations),
                    choices=tuple(choices),
                    constraints=tuple(
                        (c.equal, c.constant)
                        for c in constraints.get(template.key, ())
                    ),
                    decode=_decode_le,
                )
            )
        return read_groups

    return pre._lazy("_read_groups", compute)


def _fused_group_hooks(
    scaffold: _ArmPreScaffold,
    read_groups: Sequence[ReadGroup],
    assignment: Dict[Tuple[int, int], int],
):
    """Per-read-group coherence hooks for the shared backtracking core.

    The hook state is the tuple of per-coherence-group surviving-order
    bitmasks.  A byte's mask can be decided as soon as *all* its slots are
    assigned, so each byte is attached to the read group holding its last
    slot; the hook of that group ANDs the byte's
    :meth:`_ArmPreScaffold.byte_order_mask` into the state and abandons the
    subtree the moment any coherence group's mask empties — every member
    below the prefix shares the emptied byte's projection, so all of them
    would have died in the post-enumeration filter anyway.  Bytes with no
    read slot have assignment-independent masks and are folded into the
    initial state once per pre-execution.

    Returns ``(group_hooks, initial_masks)``, or ``(None, None)`` when the
    assignment-independent masks already kill some coherence group (no
    member of this pre-execution can be locally consistent).
    """
    slots = scaffold.slots
    byte_key_slots = scaffold.byte_key_slots
    group_of_byte = scaffold.group_of_byte

    class _SlotChoices:
        """Flat-slot view of the (mutating) assignment dict for memo misses."""

        __slots__ = ()

        def __getitem__(_self, si: int) -> int:
            return assignment[slots[si]]

    choices_view = _SlotChoices()

    initial = [
        (1 << len(orders)) - 1 for (_bytes, orders) in scaffold.group_list
    ]
    slot_group: List[int] = []
    for g, group in enumerate(read_groups):
        slot_group.extend([g] * len(group.slots))
    complete_at: List[List[int]] = [[] for _ in read_groups]
    for k, slot_indices in byte_key_slots.items():
        if slot_indices:
            complete_at[slot_group[max(slot_indices)]].append(k)
        else:
            gi = group_of_byte[k]
            initial[gi] &= scaffold.byte_order_mask(k, (), choices_view)
            if not initial[gi]:
                return None, None

    byte_order_mask = scaffold.byte_order_mask

    def make_hook(bytes_here: List[int]):
        def hook(masks):
            masks = list(masks)
            for k in bytes_here:
                byte_key = tuple(
                    assignment[slots[si]] for si in byte_key_slots[k]
                )
                gi = group_of_byte[k]
                refined = masks[gi] & byte_order_mask(k, byte_key, choices_view)
                if not refined:
                    return None
                masks[gi] = refined
            return tuple(masks)

        return hook

    hooks = [
        make_hook(bytes_here) if bytes_here else None
        for bytes_here in complete_at
    ]
    return hooks, tuple(initial)


def _arm_assignments(
    pre: ArmPreExecution,
    scaffold: Optional[_ArmPreScaffold] = None,
) -> Iterator:
    """Enumerate feasible reads-byte-from assignments with resolved values.

    Mirrors the JS-side pruned enumeration — both now run on
    :func:`repro.core.groundcore.enumerate_assignments`: reads are assigned
    writers in program order, a read's value is decoded as soon as its
    chosen writers' bytes are known (Init, ``const`` stores, and ``copy``
    stores resolved from earlier reads), and the branch constraints on that
    read prune the whole remaining subtree.  Yields
    ``(assignment, read_bytes, out_bytes)`` in exactly the order the plain
    product would.

    With a ``scaffold``, the per-byte coherence order-bitmask memos are
    additionally fused into the backtracker (see :func:`_fused_group_hooks`)
    and only members with some locally-consistent coherence choice survive;
    each yields ``(assignment, read_bytes, out_bytes, masks)`` where
    ``masks`` holds the per-coherence-group surviving-order bitmasks.  The
    surviving stream is the exact subsequence of the unfused stream that
    the post-enumeration filter used to keep.
    """
    read_groups = _arm_read_groups(pre)
    if read_groups is None:
        return

    static_bytes, write_start = pre.static_write_state()
    write_templates = [
        (t, pre.eid_of[t.key]) for t in pre.templates if t.is_write
    ]
    n_groups = len(read_groups)
    assignment: Dict[Tuple[int, int], int] = {}

    group_hooks = None
    hook_state = None
    if scaffold is not None:
        group_hooks, hook_state = _fused_group_hooks(
            scaffold, read_groups, assignment
        )
        if group_hooks is None:
            return

    def propagate(known_bytes, known_start, read_values):
        known = dict(known_bytes)
        progress = True
        while progress:
            progress = False
            for template, eid in write_templates:
                if eid in known:
                    continue
                spec = template.write_spec
                if (
                    spec is not None
                    and spec.kind == "copy"
                    and spec.source in read_values
                ):
                    value = read_values[spec.source] + spec.add_immediate
                    mask = (1 << (8 * template.size)) - 1
                    known[eid] = tuple(
                        (value & mask).to_bytes(template.size, "little")
                    )
                    progress = True
        # Write start offsets are template-fixed on the ARM side, so the
        # start dictionary flows through unchanged.
        return known, known_start

    def finish(resolved_reads, known_bytes, masks=None):
        if len(resolved_reads) == n_groups and all(
            eid in known_bytes for _t, eid in write_templates
        ):
            read_bytes = resolved_reads
            out_bytes = {t.key: known_bytes[eid] for t, eid in write_templates}
        else:
            resolved = _arm_resolve_values(pre, assignment)
            if resolved is None:
                return
            read_bytes, out_bytes = resolved
            if not _arm_constraints_ok(pre, read_bytes):
                return
        if scaffold is None:
            yield assignment, read_bytes, out_bytes
        else:
            yield assignment, read_bytes, out_bytes, masks

    yield from enumerate_assignments(
        read_groups,
        assignment,
        dict(static_bytes),
        write_start,
        propagate,
        finish,
        group_hooks=group_hooks,
        hook_state=hook_state,
    )


def _arm_ob_fixed(
    pre: ArmPreExecution, rf_pairs: FrozenSet[Tuple[int, int]]
) -> Tuple[Tuple[int, int], ...]:
    """The coherence-independent ``ob`` part, interned per rf signature."""
    ob_memo: Dict[FrozenSet[Tuple[int, int]], Tuple[Tuple[int, int], ...]] = (
        pre._lazy("_ob_fixed_memo", dict)
    )
    ob_fixed = ob_memo.get(rf_pairs)
    if ob_fixed is None:
        tid_of = pre.eid_tid()
        rfi = [(w, r) for (w, r) in rf_pairs if tid_of[w] == tid_of[r]]
        rfe = [(w, r) for (w, r) in rf_pairs if tid_of[w] != tid_of[r]]
        fixed: List[Tuple[int, int]] = list(pre.static_ob_pairs())
        fixed.extend(rfe)
        dep_by_right = pre.dep_by_right()
        exclusive_writes = pre.exclusive_write_eids()
        acquires = pre.acquire_read_eids()
        for (b, c) in rfi:
            for a in dep_by_right.get(b, ()):  # dep ; rfi
                fixed.append((a, c))
            if b in exclusive_writes and c in acquires:  # aob forwarding
                fixed.append((b, c))
        ob_fixed = tuple(fixed)
        ob_memo[rf_pairs] = ob_fixed
    return ob_fixed


def _arm_groundings(
    program: ArmProgram,
    group_coherence: bool,
    locally_consistent: bool = False,
) -> Iterator[_ArmGrounding]:
    """One :class:`_ArmGrounding` per feasible reads-byte-from assignment.

    Assignments are quotiented by their (value profile, event-level rf
    signature) projection: the first member of each class builds the shared
    events/outcome/``ob_fixed``/class-cache state, later members reuse it
    and only contribute their byte-level ``rbf`` and its projections.  The
    member *stream* is not reordered — one grounding per assignment, in
    assignment-enumeration order — so every consumer stays bit-identical to
    the unquotiented enumeration.

    With ``locally_consistent=True`` the per-group coherence filter is
    fused into the member loop: it runs *before* any per-member state is
    assembled, members with no locally-consistent coherence choice are
    dropped (they contribute no allowed execution), and survivors carry
    their surviving-order lists in ``_filtered`` — so the many assignments
    that die on a local verdict never intern a class, never build an
    events key and never construct a grounding at all.
    """
    for pre in arm_pre_executions(program):
        # The coherence choice structure depends only on the pre-execution's
        # writers, never on the reads-byte-from assignment: build it once.
        group_list = _coherence_group_orders(pre, group_coherence)
        read_groups = _arm_read_groups(pre)
        if read_groups is None:
            continue  # some read byte has no writer: no feasible assignment
        # The flat slot structure of the enumeration (see _ArmPreScaffold).
        slots = tuple(slot for group in read_groups for slot in group.slots)
        slot_readers = tuple(r for (_k, r) in slots)
        byte_slots: Dict[int, List[Tuple[int, int]]] = {}
        for index, (k, reader) in enumerate(slots):
            byte_slots.setdefault(k, []).append((index, reader))
        group_of_byte = {
            k: group_index
            for group_index, (byte_locations, _orders) in enumerate(group_list)
            for k in byte_locations
        }
        byte_slots_t = {
            k: tuple(byte_slots.get(k, ())) for k in group_of_byte
        }
        byte_key_slots = {
            k: tuple(si for (si, _r) in entries)
            for k, entries in byte_slots_t.items()
        }
        # Per-pre hoists for the per-assignment loop below: the value-profile
        # accessors, the signature-class interner, the verdict scaffolding,
        # and the assignment-independent part of the shared execution cache.
        read_keys = tuple(t.key for t in pre.templates if t.is_read)
        write_keys = tuple(
            t.key for t in pre.templates if t.is_write and not t.is_read
        )
        classes: SignatureInterner = pre._lazy(
            "_grounding_classes", SignatureInterner
        )
        class_table = classes.table
        scaffold = _ArmPreScaffold(
            pre=pre,
            group_list=group_list,
            memo=pre._lazy("_local_verdict_memo", dict),
            filter_memo=pre._lazy("_group_filter_memo", dict),
            tid_of=pre.eid_tid(),
            po_loc=pre.po_loc_by_byte(),
            footprints=pre.eid_footprints(),
            rmw_pairs=tuple(pre.rmw),
            slots=slots,
            slot_readers=slot_readers,
            byte_slots=byte_slots_t,
            byte_key_slots=byte_key_slots,
            group_of_byte=group_of_byte,
        )
        base_cache: Dict[object, object] = pre._lazy(
            "_base_execution_cache",
            lambda: {
                "bytes_accessed": pre.bytes_accessed(),
                "eid_tid": pre.eid_tid(),
                # Internal/atomicity/fr verdicts are shared per PRE-execution
                # (keyed by order and rf-at-byte), not just per assignment.
                "pre_local_memo": pre._lazy("_local_verdict_memo", dict),
                **{
                    ("po_loc", k): pairs
                    for k, pairs in pre.po_loc_by_byte().items()
                },
            },
        )
        def build_grounding(assignment, read_bytes, out_bytes, filtered):
            choices = tuple(map(assignment.__getitem__, slots))
            # The class signature: the value profile (which events the
            # assignment resolves to) and the event-level rf projection.
            events_key = (
                tuple(map(read_bytes.__getitem__, read_keys)),
                tuple(map(out_bytes.__getitem__, write_keys)),
            )
            rf_pairs = frozenset(zip(choices, slot_readers))
            class_key = (events_key, rf_pairs)
            # SignatureInterner.intern, inlined: a closure + method call per
            # assignment is measurable on this loop.  Class state is never
            # None, so the plain .get miss test is safe here.
            classes.members += 1
            cls = class_table.get(class_key)
            if cls is None:
                events = tuple(_arm_build_events(pre, read_bytes, out_bytes))
                event_index = {e.eid: e for e in events}
                class_cache: Dict[object, object] = base_cache.copy()
                class_cache["event_index"] = event_index
                class_cache["ob_fixed"] = _arm_ob_fixed(pre, rf_pairs)
                cls = _ArmGroundingClass(
                    events=events,
                    event_index=event_index,
                    outcome=_arm_outcome(pre, read_bytes),
                    rf_pairs=rf_pairs,
                    ob_fixed=class_cache["ob_fixed"],
                    cache=class_cache,
                )
                class_table[class_key] = cls
                classes.classes += 1
            return _ArmGrounding(
                pre=pre,
                scaffold=scaffold,
                cls=cls,
                choices=choices,
                group_list=group_list,
                _filtered=filtered,
            )

        if locally_consistent:
            # Fused pruning: the per-byte coherence masks run *inside* the
            # backtracker (see _fused_group_hooks), so members with no
            # locally-consistent coherence choice — and whole subtrees that
            # share their dead byte projections — are never enumerated, let
            # alone classed.  Survivors arrive with their surviving-order
            # masks already decided.
            for assignment, read_bytes, out_bytes, masks in _arm_assignments(
                pre, scaffold=scaffold
            ):
                filtered = [
                    scaffold.orders_for_mask(gi, mask)
                    for gi, mask in enumerate(masks)
                ]
                yield build_grounding(assignment, read_bytes, out_bytes, filtered)
        else:
            for assignment, read_bytes, out_bytes in _arm_assignments(pre):
                yield build_grounding(assignment, read_bytes, out_bytes, None)


def arm_ground_executions(
    program: ArmProgram,
    group_coherence: bool = True,
) -> Iterator[ArmGroundExecution]:
    """Every concrete candidate execution (rbf and coherence chosen) of the program."""
    for grounding in _arm_groundings(program, group_coherence):
        for combo in itertools.product(
            *(orders for _bytes, orders in grounding.group_list)
        ):
            yield ArmGroundExecution(
                execution=grounding.execution_with(combo),
                outcome=grounding.outcome,
                pre=grounding.pre,
            )


def _locally_consistent_orders(
    grounding: _ArmGrounding,
) -> Optional[List[List[Tuple[int, ...]]]]:
    """Each group's coherence orders surviving the local axioms.

    Returns ``None`` when some group has no surviving order (every
    coherence choice of this grounding violates internal or atomicity).

    Both local axioms decompose per byte, so the verdict is assembled from
    *per-byte order bitmasks* memoised per (byte, projection-at-byte) —
    see :meth:`_ArmPreScaffold.byte_order_mask`: a member's per-group
    surviving set is the AND of its bytes' masks, all of which are shared
    across every assignment of the pre-execution agreeing at that byte.
    The byte verdicts come from the same shared per-pre memo the
    execution-based path uses, so both paths can never disagree.
    """
    if grounding._filtered is not None:
        return grounding._filtered
    scaffold = grounding.scaffold
    choices = grounding.choices
    byte_keys = grounding.byte_keys
    filtered: List[List[Tuple[int, ...]]] = []
    for group_index, (byte_locations, orders) in enumerate(grounding.group_list):
        mask = (1 << len(orders)) - 1
        for k in byte_locations:
            mask &= scaffold.byte_order_mask(k, byte_keys[k], choices)
            if not mask:
                return None
        filtered.append(scaffold.orders_for_mask(group_index, mask))
    return filtered


def _external_ok(
    grounding: _ArmGrounding, combo: Tuple[Tuple[int, ...], ...]
) -> bool:
    """The external (ordered-before) verdict of one coherence choice.

    Assembled from shared scaffolding instead of a materialised execution:
    ``ob_fixed`` comes from the signature class, each group's external
    coherence edges are memoised per order (shared by every assignment of
    the pre-execution), and the external from-read edges per
    (byte, order, projection-at-byte) — the same per-byte granularity as
    the local filter, so the edge lists recur across members even when
    whole-group projections never do.  Only the final acyclicity check is
    per variant (duplicate edges across bytes are harmless to it).
    """
    scaffold = grounding.scaffold
    memo = scaffold.memo
    tid_of = scaffold.tid_of
    byte_keys = grounding.byte_keys
    choices = grounding.choices
    parts: List[Tuple[Tuple[int, int], ...]] = [grounding.cls.ob_fixed]
    for group_index, order in enumerate(combo):
        coe_key = ("coe", order)
        coe = memo.get(coe_key)
        if coe is None:
            coe = tuple(
                (a, b)
                for i, a in enumerate(order)
                for b in order[i + 1:]
                if tid_of[a] != tid_of[b]
            )
            memo[coe_key] = coe
        parts.append(coe)
        for k in grounding.group_list[group_index][0]:
            fre_key = ("fre", k, order, byte_keys[k])
            fre = memo.get(fre_key)
            if fre is None:
                rbf_pairs = scaffold.rbf_pairs_at(
                    choices, scaffold.byte_slots.get(k, ())
                )
                fre = tuple(
                    (r, later)
                    for (r, later) in _fr_edges_memo(memo, order, rbf_pairs)
                    if tid_of[r] != tid_of[later]
                )
                memo[fre_key] = fre
            if fre:
                parts.append(fre)
    return acyclic_pairs(itertools.chain.from_iterable(parts))


@dataclass
class ArmAllowedExecutionClass:
    """All model-allowed coherence variants of one ``(events, rbf)`` class.

    The ARM → JavaScript translation (and every other coherence-independent
    consumer) needs exactly one representative per class: ``prototype``
    carries the class's events and byte-wise reads-from with no coherence
    chosen, and every member of ``executions`` shares its derived-relation
    cache.  Classes are yielded in assignment-enumeration order and the
    variants within one class in coherence-product order, so flattening
    reproduces :func:`arm_allowed_executions` exactly.
    """

    pre: ArmPreExecution
    outcome: ArmOutcome
    prototype: ArmExecution
    executions: List[ArmExecution]


def arm_allowed_execution_classes(
    program: ArmProgram, group_coherence: bool = True
) -> Iterator[ArmAllowedExecutionClass]:
    """The allowed executions, grouped per ``(events, rbf)`` class.

    Classes whose every coherence variant is forbidden are skipped (they
    would contribute no execution).  The per-group internal/atomicity
    verdicts prune coherence orders *before* the per-group product is
    taken, and the external axiom is decided on shared scaffolding — an
    :class:`ArmExecution` is only materialised for *allowed* variants.
    """
    for grounding in _arm_groundings(
        program, group_coherence, locally_consistent=True
    ):
        allowed = [
            grounding.execution_with(combo)
            for combo in itertools.product(*grounding._filtered)
            if _external_ok(grounding, combo)
        ]
        if allowed:
            yield ArmAllowedExecutionClass(
                pre=grounding.pre,
                outcome=grounding.outcome,
                prototype=grounding.prototype,
                executions=allowed,
            )


def arm_allowed_executions(
    program: ArmProgram, group_coherence: bool = True
) -> Iterator[ArmGroundExecution]:
    """The model-allowed executions of an ARM program.

    Equivalent to filtering :func:`arm_ground_executions` with
    :func:`arm_is_valid`, but the per-group internal/atomicity verdicts
    prune coherence orders *before* the per-group product is taken — the
    vast majority of coherence variants die on a local verdict — and the
    external axiom is checked against shared scaffolding, so only allowed
    variants are ever materialised.
    """
    for allowed_class in arm_allowed_execution_classes(program, group_coherence):
        for execution in allowed_class.executions:
            yield ArmGroundExecution(
                execution=execution,
                outcome=allowed_class.outcome,
                pre=allowed_class.pre,
            )


def arm_allowed_outcomes(
    program: ArmProgram, group_coherence: bool = True
) -> List[ArmOutcome]:
    """The distinct register outcomes allowed by the axiomatic model."""
    seen = set()
    outcomes: List[ArmOutcome] = []
    for ground in arm_allowed_executions(program, group_coherence=group_coherence):
        key = tuple(sorted(ground.outcome.items()))
        if key not in seen:
            seen.add(key)
            outcomes.append(ground.outcome)
    return outcomes


def arm_outcome_allowed(
    program: ArmProgram, spec: Mapping[str, int], group_coherence: bool = True
) -> bool:
    """Is some allowed execution's outcome consistent with ``spec``?

    The outcome is fixed per reads-byte-from assignment, so groundings with
    a mismatching outcome are skipped before any coherence variant is
    examined.
    """
    for grounding in _arm_groundings(program, group_coherence):
        if any(grounding.outcome.get(k) != v for k, v in spec.items()):
            continue
        filtered = _locally_consistent_orders(grounding)
        if filtered is None:
            continue
        for combo in itertools.product(*filtered):
            if _external_ok(grounding, combo):
                return True
    return False
