"""The mixed-size ARMv8 axiomatic concurrency model (§4).

This is a byte-wise generalisation of ARM's reference axiomatic model
(Deacon's ``aarch64.cat``, as simplified by Pulte et al. [2018]) in the
direction the paper describes: accesses are ranges of bytes, ``reads-from``
and the coherence order are per-byte relations, and the event-level
relations the reference model's axioms consult (``rfe``, ``fre``, ``coe``,
``po-loc``) are obtained by projecting the byte-wise relations.

The three axioms of the reference model keep their shape:

* **internal** ("sc per location"), checked per byte:
  ``acyclic(po-loc_k ∪ co_k ∪ fr_k ∪ rf_k)`` for every byte ``k``;
* **atomic**: no write by another thread intervenes, on any byte, between a
  successful exclusive pair (``rmw ∩ (fre; coe) = ∅``);
* **external**: ``acyclic(obs ∪ dob ∪ aob ∪ bob)`` — the ordered-before
  acyclicity over observed-by, dependency-ordered-before, atomic-ordered-
  before and barrier-ordered-before.

Where the architecture's mixed-size behaviour is still under discussion the
paper (and we) choose the weaker reading, so the model may admit behaviours
a future architecture text forbids; what matters for compilation-scheme
correctness is that it is not *stronger* than the hardware.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.relations import Relation
from .events import ArmEvent, ArmEventKind, BarrierKind, make_arm_init
from .program import (
    ArmEventTemplate,
    ArmLocalPath,
    ArmProgram,
    ArmTemplateKey,
    arm_program_paths,
)

ArmRbfTriple = Tuple[int, int, int]
ArmOutcome = Dict[str, int]


@dataclass(frozen=True)
class ArmExecution:
    """A complete ARMv8 candidate execution with its execution witness.

    ``rbf`` is the byte-wise reads-from; ``co_by_byte`` maps each byte
    location to the coherence order (a tuple of writer eids, initial write
    first) of the writes covering it.
    """

    events: Tuple[ArmEvent, ...]
    po: Relation
    addr: Relation = field(default_factory=Relation)
    data: Relation = field(default_factory=Relation)
    ctrl: Relation = field(default_factory=Relation)
    rmw: Relation = field(default_factory=Relation)
    rbf: FrozenSet[ArmRbfTriple] = frozenset()
    co_by_byte: Tuple[Tuple[int, Tuple[int, ...]], ...] = ()

    # -- lookups -------------------------------------------------------------

    def event(self, eid: int) -> ArmEvent:
        for event in self.events:
            if event.eid == eid:
                return event
        raise KeyError(f"no ARM event with eid {eid}")

    def memory_events(self) -> Tuple[ArmEvent, ...]:
        return tuple(e for e in self.events if e.is_memory)

    def reads(self) -> Tuple[ArmEvent, ...]:
        return tuple(e for e in self.events if e.is_read)

    def writes(self) -> Tuple[ArmEvent, ...]:
        return tuple(e for e in self.events if e.is_write)

    def coherence(self) -> Dict[int, Tuple[int, ...]]:
        return dict(self.co_by_byte)

    # -- byte-wise relations ----------------------------------------------------

    def rf_at(self, k: int) -> Relation:
        """Reads-from restricted to byte ``k``."""
        return Relation({(w, r) for (kk, w, r) in self.rbf if kk == k})

    def co_at(self, k: int) -> Relation:
        """Coherence order restricted to byte ``k``."""
        order = self.coherence().get(k, ())
        return Relation.from_total_order(order)

    def fr_at(self, k: int) -> Relation:
        """From-read at byte ``k``: the read is before every coherence-later write."""
        co = self.co_at(k)
        pairs = set()
        for (kk, w, r) in self.rbf:
            if kk != k:
                continue
            for (_w, later) in co:
                if _w == w:
                    pairs.add((r, later))
        return pairs and Relation(pairs) or Relation()

    def bytes_accessed(self) -> FrozenSet[int]:
        locations: Set[int] = set()
        for event in self.memory_events():
            locations.update(event.footprint)
        return frozenset(locations)

    # -- event-level projections -------------------------------------------------

    def reads_from(self) -> Relation:
        return Relation({(w, r) for (_k, w, r) in self.rbf})

    def _split_internal(self, relation: Relation) -> Tuple[Relation, Relation]:
        internal = []
        external = []
        for (a, b) in relation:
            if self.event(a).tid == self.event(b).tid:
                internal.append((a, b))
            else:
                external.append((a, b))
        return Relation(internal), Relation(external)

    def rf_internal_external(self) -> Tuple[Relation, Relation]:
        return self._split_internal(self.reads_from())

    def coherence_relation(self) -> Relation:
        pairs = set()
        for _k, order in self.co_by_byte:
            pairs.update(Relation.from_total_order(order).pairs)
        return Relation(pairs)

    def from_read_relation(self) -> Relation:
        pairs = set()
        for k in self.bytes_accessed():
            pairs.update(self.fr_at(k).pairs)
        return Relation(pairs)

    # -- reference-model relations -------------------------------------------------

    def obs(self) -> Relation:
        """``obs = rfe ∪ fre ∪ coe`` (external observations)."""
        _rfi, rfe = self.rf_internal_external()
        _coi, coe = self._split_internal(self.coherence_relation())
        _fri, fre = self._split_internal(self.from_read_relation())
        return rfe.union(fre, coe)

    def _selector(self, predicate) -> FrozenSet[int]:
        return frozenset(e.eid for e in self.events if predicate(e))

    def dob(self) -> Relation:
        """Dependency-ordered-before."""
        writes = self._selector(lambda e: e.is_write)
        reads = self._selector(lambda e: e.is_read)
        isb = self._selector(lambda e: e.is_fence and e.barrier is BarrierKind.ISB)
        rfi, _rfe = self.rf_internal_external()
        dep = self.addr.union(self.data)

        parts = [
            self.addr,
            self.data,
            self.ctrl.restrict(codomain=writes),
            self.ctrl.compose(Relation.identity(isb)).compose(self.po).restrict(
                codomain=reads
            ),
            self.addr.compose(self.po).restrict(codomain=writes),
            dep.compose(rfi),
        ]
        return Relation().union(*parts)

    def aob(self) -> Relation:
        """Atomic-ordered-before: the exclusive pair plus its forwarding edge."""
        rfi, _rfe = self.rf_internal_external()
        exclusive_writes = self._selector(lambda e: e.is_write and e.exclusive)
        acquires = self._selector(lambda e: e.is_read and e.acquire)
        forwarded = (
            Relation.identity(exclusive_writes)
            .compose(rfi)
            .restrict(codomain=acquires)
        )
        return self.rmw.union(forwarded)

    def bob(self) -> Relation:
        """Barrier-ordered-before."""
        memory = self._selector(lambda e: e.is_memory)
        reads = self._selector(lambda e: e.is_read)
        writes = self._selector(lambda e: e.is_write)
        acquires = self._selector(lambda e: e.is_acquire)
        releases = self._selector(lambda e: e.is_release)
        dmb_full = self._selector(
            lambda e: e.is_fence and e.barrier is BarrierKind.FULL
        )
        dmb_ld = self._selector(lambda e: e.is_fence and e.barrier is BarrierKind.LD)
        dmb_st = self._selector(lambda e: e.is_fence and e.barrier is BarrierKind.ST)
        po = self.po

        def chain(dom, mids, cod) -> Relation:
            first = po.restrict(domain=dom, codomain=mids)
            second = po.restrict(domain=mids, codomain=cod)
            return first.compose(second)

        parts = [
            chain(memory, dmb_full, memory),
            chain(reads, dmb_ld, memory),
            chain(writes, dmb_st, writes),
            po.restrict(domain=releases, codomain=acquires),
            po.restrict(domain=acquires, codomain=memory),
            po.restrict(domain=memory, codomain=releases),
        ]
        return Relation().union(*parts)

    def ordered_before(self) -> Relation:
        """``ob = obs ∪ dob ∪ aob ∪ bob`` (external visibility requirement)."""
        return self.obs().union(self.dob(), self.aob(), self.bob())

    # -- rendering ----------------------------------------------------------------

    def describe(self) -> str:
        lines = ["ArmExecution:"]
        for event in sorted(self.events, key=lambda e: (e.tid, e.eid)):
            lines.append(f"  {event.describe()}  (tid={event.tid})")
        lines.append(f"  po:  {sorted(self.po.pairs)}")
        lines.append(f"  rbf: {sorted(self.rbf)}")
        lines.append(f"  co:  {dict(self.co_by_byte)}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# validity
# ---------------------------------------------------------------------------


def arm_internal_consistent(execution: ArmExecution) -> bool:
    """The per-byte SC-per-location ("internal visibility") requirement."""
    for k in execution.bytes_accessed():
        accessors = frozenset(
            e.eid for e in execution.memory_events() if k in e.footprint
        )
        po_loc = execution.po.restrict(domain=accessors, codomain=accessors)
        combined = po_loc.union(
            execution.co_at(k), execution.fr_at(k), execution.rf_at(k)
        )
        if not combined.is_acyclic():
            return False
    return True


def arm_atomicity_holds(execution: ArmExecution) -> bool:
    """No foreign write intervenes inside a successful exclusive pair."""
    for (lr, sw) in execution.rmw:
        load = execution.event(lr)
        store = execution.event(sw)
        for k in set(load.footprint) & set(store.footprint):
            fr_k = execution.fr_at(k)
            co_k = execution.co_at(k)
            for (_r, intervener) in fr_k:
                if _r != lr:
                    continue
                other = execution.event(intervener)
                if other.tid == load.tid:
                    continue
                if (intervener, sw) in co_k:
                    return False
    return True


def arm_external_consistent(execution: ArmExecution) -> bool:
    """The ordered-before acyclicity (external visibility requirement)."""
    return execution.ordered_before().is_acyclic()


def arm_is_valid(execution: ArmExecution) -> bool:
    """Is the execution allowed by the mixed-size ARMv8 axiomatic model?"""
    return (
        arm_internal_consistent(execution)
        and arm_atomicity_holds(execution)
        and arm_external_consistent(execution)
    )


def arm_violations(execution: ArmExecution) -> List[str]:
    """The names of the violated axioms (diagnostics)."""
    violations = []
    if not arm_internal_consistent(execution):
        violations.append("internal")
    if not arm_atomicity_holds(execution):
        violations.append("atomic")
    if not arm_external_consistent(execution):
        violations.append("external")
    return violations


# ---------------------------------------------------------------------------
# grounding ARM programs into candidate executions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArmPreExecution:
    """One path combination with event identifiers and static relations."""

    program: ArmProgram
    paths: Tuple[ArmLocalPath, ...]
    init_event: ArmEvent
    templates: Tuple[ArmEventTemplate, ...]
    eid_of: Dict[ArmTemplateKey, int]
    po: Relation
    addr: Relation
    data: Relation
    ctrl: Relation
    rmw: Relation


@dataclass(frozen=True)
class ArmGroundExecution:
    """A concrete ARM execution together with its final register values.

    ``pre`` points back to the pre-execution it was grounded from; runs of
    the operational model reconstruct their execution directly from the
    trace and leave it ``None``.
    """

    execution: ArmExecution
    outcome: ArmOutcome
    pre: Optional[ArmPreExecution] = None


def arm_pre_executions(program: ArmProgram) -> Iterator[ArmPreExecution]:
    """One pre-execution per combination of per-thread control-flow paths."""
    for paths in arm_program_paths(program):
        init = make_arm_init(program.memory_size, eid=0)
        next_eid = 1
        eid_of: Dict[ArmTemplateKey, int] = {}
        templates: List[ArmEventTemplate] = []
        po_pairs: List[Tuple[int, int]] = []
        data_pairs: List[Tuple[int, int]] = []
        ctrl_pairs: List[Tuple[int, int]] = []
        rmw_pairs: List[Tuple[int, int]] = []
        for path in paths:
            thread_eids: List[int] = []
            for template in path.templates:
                templates.append(template)
                eid_of[template.key] = next_eid
                thread_eids.append(next_eid)
                next_eid += 1
            for i, a in enumerate(thread_eids):
                for b in thread_eids[i + 1:]:
                    po_pairs.append((a, b))
        for template in templates:
            eid = eid_of[template.key]
            for source in template.data_sources:
                data_pairs.append((eid_of[source], eid))
            for source in template.ctrl_sources:
                ctrl_pairs.append((eid_of[source], eid))
            if template.rmw_partner is not None:
                rmw_pairs.append((eid_of[template.rmw_partner], eid))
        yield ArmPreExecution(
            program=program,
            paths=paths,
            init_event=init,
            templates=tuple(templates),
            eid_of=eid_of,
            po=Relation(po_pairs),
            addr=Relation(),
            data=Relation(data_pairs),
            ctrl=Relation(ctrl_pairs),
            rmw=Relation(rmw_pairs),
        )


def _arm_writers_by_byte(pre: ArmPreExecution) -> Dict[int, List[int]]:
    writers: Dict[int, List[int]] = {}
    for k in pre.init_event.footprint:
        writers.setdefault(k, []).append(pre.init_event.eid)
    for template in pre.templates:
        if not template.is_write:
            continue
        eid = pre.eid_of[template.key]
        for k in template.footprint():
            writers.setdefault(k, []).append(eid)
    return writers


def _arm_resolve_values(
    pre: ArmPreExecution, assignment: Dict[Tuple[int, int], int]
) -> Optional[Tuple[Dict[ArmTemplateKey, Tuple[int, ...]], Dict[ArmTemplateKey, Tuple[int, ...]]]]:
    """Resolve read/write byte values; ``None`` on cyclic value dependencies."""
    write_bytes: Dict[int, Tuple[int, ...]] = {
        pre.init_event.eid: pre.init_event.data
    }
    write_start: Dict[int, int] = {pre.init_event.eid: pre.init_event.addr}
    read_bytes: Dict[ArmTemplateKey, Tuple[int, ...]] = {}
    read_values: Dict[ArmTemplateKey, int] = {}
    out_bytes: Dict[ArmTemplateKey, Tuple[int, ...]] = {}

    templates = {t.key: t for t in pre.templates if t.is_memory}
    for template in templates.values():
        if template.is_write:
            write_start[pre.eid_of[template.key]] = template.addr

    pending = set(templates)
    progress = True
    while pending and progress:
        progress = False
        for key in list(pending):
            template = templates[key]
            eid = pre.eid_of[key]
            if template.is_read and key not in read_bytes:
                data: List[int] = []
                complete = True
                for k in template.footprint():
                    writer = assignment[(k, eid)]
                    if writer not in write_bytes:
                        complete = False
                        break
                    data.append(write_bytes[writer][k - write_start[writer]])
                if complete:
                    resolved = tuple(data)
                    read_bytes[key] = resolved
                    read_values[key] = int.from_bytes(bytes(resolved), "little")
                    progress = True
            if template.is_write and key not in out_bytes:
                spec = template.write_spec
                assert spec is not None
                value: Optional[int] = None
                if spec.kind == "const":
                    value = spec.payload
                elif spec.kind == "copy":
                    assert spec.source is not None
                    if spec.source in read_values:
                        value = read_values[spec.source] + spec.add_immediate
                if value is not None:
                    mask = (1 << (8 * template.size)) - 1
                    out_bytes[key] = tuple(
                        (value & mask).to_bytes(template.size, "little")
                    )
                    write_bytes[eid] = out_bytes[key]
                    progress = True
            done_r = (not template.is_read) or key in read_bytes
            done_w = (not template.is_write) or key in out_bytes
            if done_r and done_w:
                pending.discard(key)
    if pending:
        return None
    return read_bytes, out_bytes


def _arm_constraints_ok(
    pre: ArmPreExecution, read_bytes: Dict[ArmTemplateKey, Tuple[int, ...]]
) -> bool:
    for path in pre.paths:
        for constraint in path.constraints:
            data = read_bytes[constraint.source]
            value = int.from_bytes(bytes(data), "little")
            if constraint.equal and value != constraint.constant:
                return False
            if not constraint.equal and value == constraint.constant:
                return False
    return True


def _arm_build_events(
    pre: ArmPreExecution,
    read_bytes: Dict[ArmTemplateKey, Tuple[int, ...]],
    out_bytes: Dict[ArmTemplateKey, Tuple[int, ...]],
) -> List[ArmEvent]:
    events: List[ArmEvent] = [pre.init_event]
    for template in pre.templates:
        eid = pre.eid_of[template.key]
        if template.kind is ArmEventKind.FENCE:
            events.append(
                ArmEvent(
                    eid=eid,
                    tid=template.tid,
                    kind=ArmEventKind.FENCE,
                    barrier=template.barrier,
                )
            )
            continue
        data = (
            read_bytes[template.key]
            if template.is_read
            else out_bytes[template.key]
        )
        events.append(
            ArmEvent(
                eid=eid,
                tid=template.tid,
                kind=template.kind,
                addr=template.addr,
                data=tuple(data),
                acquire=template.acquire,
                release=template.release,
                exclusive=template.exclusive,
            )
        )
    return events


def _coherence_choices(
    pre: ArmPreExecution, group_coherence: bool
) -> Iterator[Dict[int, Tuple[int, ...]]]:
    """Enumerate coherence orders, optionally sharing one order per writer-set group.

    With ``group_coherence=True`` every byte written by the same set of
    events uses the same order; this loses some per-byte coherence diversity
    (only relevant to tearing behaviours) but keeps the enumeration small.
    """
    writers = _arm_writers_by_byte(pre)
    init_eid = pre.init_event.eid
    if group_coherence:
        groups: Dict[Tuple[int, ...], List[int]] = {}
        for k, ws in writers.items():
            groups.setdefault(tuple(sorted(ws)), []).append(k)
        group_list = list(groups.items())
        per_group_orders = []
        for ws, _bytes in group_list:
            others = [w for w in ws if w != init_eid]
            per_group_orders.append(
                [(init_eid,) + perm for perm in itertools.permutations(others)]
            )
        for combo in itertools.product(*per_group_orders):
            choice: Dict[int, Tuple[int, ...]] = {}
            for (ws, byte_locations), order in zip(group_list, combo):
                for k in byte_locations:
                    choice[k] = tuple(w for w in order if w in ws)
            yield choice
    else:
        byte_list = sorted(writers)
        per_byte_orders = []
        for k in byte_list:
            others = [w for w in writers[k] if w != init_eid]
            per_byte_orders.append(
                [(init_eid,) + perm for perm in itertools.permutations(others)]
            )
        for combo in itertools.product(*per_byte_orders):
            yield dict(zip(byte_list, combo))


def _arm_outcome(
    pre: ArmPreExecution, read_bytes: Dict[ArmTemplateKey, Tuple[int, ...]]
) -> ArmOutcome:
    outcome: ArmOutcome = {}
    for path in pre.paths:
        for register, key in path.registers:
            if key in read_bytes:
                outcome[f"{path.tid}:{register}"] = int.from_bytes(
                    bytes(read_bytes[key]), "little"
                )
    return outcome


def arm_ground_executions(
    program: ArmProgram,
    group_coherence: bool = True,
) -> Iterator[ArmGroundExecution]:
    """Every concrete candidate execution (rbf and coherence chosen) of the program."""
    for pre in arm_pre_executions(program):
        writers = _arm_writers_by_byte(pre)
        read_slots: List[Tuple[int, int]] = []
        slot_choices: List[List[int]] = []
        for template in pre.templates:
            if not template.is_read:
                continue
            eid = pre.eid_of[template.key]
            for k in template.footprint():
                candidates = [w for w in writers.get(k, []) if w != eid]
                read_slots.append((k, eid))
                slot_choices.append(candidates)
        if any(not c for c in slot_choices):
            continue
        for combo in itertools.product(*slot_choices):
            assignment = dict(zip(read_slots, combo))
            resolved = _arm_resolve_values(pre, assignment)
            if resolved is None:
                continue
            read_bytes, out_bytes = resolved
            if not _arm_constraints_ok(pre, read_bytes):
                continue
            events = _arm_build_events(pre, read_bytes, out_bytes)
            rbf = frozenset(
                (k, writer, reader) for ((k, reader), writer) in assignment.items()
            )
            outcome = _arm_outcome(pre, read_bytes)
            for coherence in _coherence_choices(pre, group_coherence):
                execution = ArmExecution(
                    events=tuple(events),
                    po=pre.po,
                    addr=pre.addr,
                    data=pre.data,
                    ctrl=pre.ctrl,
                    rmw=pre.rmw,
                    rbf=rbf,
                    co_by_byte=tuple(sorted(coherence.items())),
                )
                yield ArmGroundExecution(execution=execution, outcome=outcome, pre=pre)


def arm_allowed_executions(
    program: ArmProgram, group_coherence: bool = True
) -> Iterator[ArmGroundExecution]:
    """The model-allowed executions of an ARM program."""
    for ground in arm_ground_executions(program, group_coherence=group_coherence):
        if arm_is_valid(ground.execution):
            yield ground


def arm_allowed_outcomes(
    program: ArmProgram, group_coherence: bool = True
) -> List[ArmOutcome]:
    """The distinct register outcomes allowed by the axiomatic model."""
    seen = set()
    outcomes: List[ArmOutcome] = []
    for ground in arm_allowed_executions(program, group_coherence=group_coherence):
        key = tuple(sorted(ground.outcome.items()))
        if key not in seen:
            seen.add(key)
            outcomes.append(ground.outcome)
    return outcomes


def arm_outcome_allowed(
    program: ArmProgram, spec: Mapping[str, int], group_coherence: bool = True
) -> bool:
    """Is some allowed execution's outcome consistent with ``spec``?"""
    for ground in arm_ground_executions(program, group_coherence=group_coherence):
        if any(ground.outcome.get(k) != v for k, v in spec.items()):
            continue
        if arm_is_valid(ground.execution):
            return True
    return False
