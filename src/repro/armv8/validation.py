"""§4.1 — validating the axiomatic ARMv8 model against the operational model.

The paper instruments Flat to emit, for every allowed outcome of every
litmus test in an 11,587-test corpus, the candidate execution of the
operational trace, and checks that the axiomatic model allows each one
(soundness of the axiomatic model with respect to the operational one).

:func:`validate_program` and :func:`validate_corpus` perform the same check
with our operational substitute: every execution the operational model
produces must be valid in the mixed-size axiomatic model.  A failure means
the axiomatic model is *stronger* than the operational one somewhere — the
situation the paper's validation is designed to rule out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from .axiomatic import ArmExecution, arm_is_valid, arm_violations
from .operational import arm_operational_runs
from .program import ArmProgram


@dataclass
class ProgramValidation:
    """The validation verdict for one litmus test."""

    program: str
    executions: int = 0
    outcomes: int = 0
    failures: List[ArmExecution] = field(default_factory=list)

    @property
    def sound(self) -> bool:
        return not self.failures


@dataclass
class CorpusValidation:
    """Aggregated §4.1-style statistics over a corpus of litmus tests."""

    programs: int = 0
    mixed_size_programs: int = 0
    executions: int = 0
    failures: int = 0
    per_program: List[ProgramValidation] = field(default_factory=list)

    @property
    def sound(self) -> bool:
        """True iff every operational execution was axiomatically allowed."""
        return self.failures == 0

    def summary(self) -> str:
        kind = "sound" if self.sound else f"UNSOUND ({self.failures} failures)"
        return (
            f"ARMv8 axiomatic-vs-operational validation: {kind} — "
            f"{self.programs} tests ({self.mixed_size_programs} mixed-size), "
            f"{self.executions} operational executions checked"
        )


def is_mixed_size_program(program: ArmProgram) -> bool:
    """Does the program issue accesses of more than one width or misaligned overlaps?"""
    sizes = set()
    footprints = []
    from .operational import flatten_thread

    for thread in program.threads:
        for slot in flatten_thread(thread):
            if slot.is_memory:
                sizes.add(slot.size)
                footprints.append(slot.footprint())
    if len(sizes) > 1:
        return True
    for i, a in enumerate(footprints):
        for b in footprints[i + 1:]:
            if a.start < b.stop and b.start < a.stop and (a.start, a.stop) != (b.start, b.stop):
                return True
    return False


def validate_program(
    program: ArmProgram, max_states: int = 200_000
) -> ProgramValidation:
    """Check that every operational execution of ``program`` is axiomatically allowed."""
    result = ProgramValidation(program=program.name)
    seen_outcomes = set()
    for run in arm_operational_runs(program, max_states=max_states):
        result.executions += 1
        seen_outcomes.add(tuple(sorted(run.outcome.items())))
        if not arm_is_valid(run.execution):
            result.failures.append(run.execution)
    result.outcomes = len(seen_outcomes)
    return result


def validate_corpus(
    programs: Iterable[ArmProgram], max_states: int = 200_000
) -> CorpusValidation:
    """Run the §4.1 validation over a corpus of ARM litmus tests."""
    corpus = CorpusValidation()
    for program in programs:
        verdict = validate_program(program, max_states=max_states)
        corpus.programs += 1
        if is_mixed_size_program(program):
            corpus.mixed_size_programs += 1
        corpus.executions += verdict.executions
        corpus.failures += len(verdict.failures)
        corpus.per_program.append(verdict)
    return corpus
