"""Events of the mixed-size ARMv8 axiomatic model (§4).

ARMv8 candidate executions are made of memory read/write events and barrier
events.  Unlike the JavaScript events of :mod:`repro.core.events`, ARM
events carry the architectural access attributes that the axiomatic model
consults: acquire (``ldar``/``ldaxr``), release (``stlr``/``stlxr``) and
exclusive (``ldxr``/``stxr`` families), plus the barrier kind for ``dmb``
events.  Accesses are byte-ranged, exactly as in the JavaScript model —
this is the mixed-size generalisation of ARM's reference model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple


class ArmEventKind(enum.Enum):
    """The kind of an ARMv8 event."""

    READ = "R"
    WRITE = "W"
    FENCE = "F"


class BarrierKind(enum.Enum):
    """The flavour of a ``dmb`` barrier event."""

    FULL = "dmb.sy"
    LD = "dmb.ld"
    ST = "dmb.st"
    ISB = "isb"


@dataclass(frozen=True)
class ArmEvent:
    """One event of an ARMv8 candidate execution."""

    eid: int
    tid: int
    kind: ArmEventKind
    addr: int = 0
    data: Tuple[int, ...] = ()
    acquire: bool = False
    release: bool = False
    exclusive: bool = False
    barrier: Optional[BarrierKind] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind is ArmEventKind.FENCE:
            if self.barrier is None:
                raise ValueError(f"event {self.eid}: fence without a barrier kind")
        else:
            if not self.data:
                raise ValueError(f"event {self.eid}: memory event without data")
            for byte in self.data:
                if not 0 <= byte <= 0xFF:
                    raise ValueError(f"event {self.eid}: byte {byte} out of range")

    # -- classification ------------------------------------------------------

    @property
    def is_read(self) -> bool:
        return self.kind is ArmEventKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is ArmEventKind.WRITE

    @property
    def is_memory(self) -> bool:
        return self.kind is not ArmEventKind.FENCE

    @property
    def is_fence(self) -> bool:
        return self.kind is ArmEventKind.FENCE

    @property
    def is_acquire(self) -> bool:
        """``A`` in the reference model: a load-acquire."""
        return self.is_read and self.acquire

    @property
    def is_release(self) -> bool:
        """``L`` in the reference model: a store-release."""
        return self.is_write and self.release

    @property
    def is_init(self) -> bool:
        """The initialising write uses thread identifier ``-1``."""
        return self.is_write and self.tid == -1

    # -- footprint -------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def footprint(self) -> range:
        """The byte locations accessed."""
        if not self.is_memory:
            return range(0)
        return range(self.addr, self.addr + self.size)

    def overlaps(self, other: "ArmEvent") -> bool:
        """Do the two events access at least one common byte?"""
        if not (self.is_memory and other.is_memory):
            return False
        a, b = self.footprint, other.footprint
        return a.start < b.stop and b.start < a.stop

    def byte(self, location: int) -> int:
        """The byte value read/written at absolute ``location``."""
        if location not in self.footprint:
            raise KeyError(f"event {self.eid} does not access byte {location}")
        return self.data[location - self.addr]

    def value(self) -> int:
        """The access value as a little-endian unsigned integer."""
        return int.from_bytes(bytes(self.data), "little")

    def describe(self) -> str:
        """Compact rendering in the style of the paper's Fig. 6b."""
        name = self.label or f"e{self.eid}"
        if self.is_fence:
            return f"{name}: {self.barrier.value}"
        flags = ""
        if self.is_read:
            flags = "acq" if self.acquire else ""
        else:
            flags = "rel" if self.release else ""
        if self.exclusive:
            flags += "x"
        lo, hi = self.footprint.start, self.footprint.stop - 1
        kind = "R" if self.is_read else "W"
        return f"{name}: {kind}{flags} [{lo}..{hi}]={self.value()}"


def make_arm_init(size: int, eid: int = 0) -> ArmEvent:
    """The initial write covering the whole (zeroed) memory."""
    if size <= 0:
        raise ValueError("memory size must be positive")
    return ArmEvent(
        eid=eid,
        tid=-1,
        kind=ArmEventKind.WRITE,
        addr=0,
        data=(0,) * size,
        label="init",
    )
