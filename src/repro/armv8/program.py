"""ARMv8 litmus programs and their thread-local semantics.

The compilation scheme of §5.1 maps the JavaScript fragment onto a small
set of AArch64 instructions: ``ldr``/``str`` (plain accesses), ``ldar``/
``stlr`` (acquire/release, the C++ SC-atomics scheme), the exclusive pairs
``ldaxr``/``stlxr`` (read-modify-writes) and ``dmb`` barriers.  This module
defines an instruction-level AST for that target fragment and a symbolic
thread-local semantics producing event templates, program order and the
dependency relations (``data``, ``ctrl``) that the axiomatic model needs.

Addresses are compile-time constants in the fragment (typed-array indices
are literals), so there are no address dependencies; the ``addr`` relation
is kept for completeness and is always empty here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .events import ArmEvent, ArmEventKind, BarrierKind, make_arm_init


@dataclass(frozen=True)
class ArmRegister:
    """A general-purpose register (``W0``, ``X1``, …)."""

    name: str


class ArmInstruction:
    """Base class of the supported AArch64 instructions."""

    __slots__ = ()


@dataclass(frozen=True)
class ArmLoad(ArmInstruction):
    """``ldr`` / ``ldar`` / ``ldxr`` / ``ldaxr``: load ``size`` bytes from ``addr``."""

    dest: ArmRegister
    addr: int
    size: int
    acquire: bool = False
    exclusive: bool = False

    def mnemonic(self) -> str:
        if self.acquire and self.exclusive:
            return "ldaxr"
        if self.acquire:
            return "ldar"
        if self.exclusive:
            return "ldxr"
        return "ldr"


@dataclass(frozen=True)
class ArmStore(ArmInstruction):
    """``str`` / ``stlr`` / ``stxr`` / ``stlxr``: store ``size`` bytes to ``addr``.

    ``src`` is either a literal value or a register (creating a data
    dependency on the instruction that defined the register).
    """

    src: Union[int, ArmRegister]
    addr: int
    size: int
    release: bool = False
    exclusive: bool = False
    add_immediate: int = 0

    def mnemonic(self) -> str:
        if self.release and self.exclusive:
            return "stlxr"
        if self.release:
            return "stlr"
        if self.exclusive:
            return "stxr"
        return "str"


@dataclass(frozen=True)
class ArmBarrier(ArmInstruction):
    """A ``dmb`` or ``isb`` barrier."""

    kind: BarrierKind


@dataclass(frozen=True)
class ArmCtrl(ArmInstruction):
    """A conditional block guarded by ``register == constant``.

    This models the compare-and-branch sequence the JIT emits for the
    fragment's ``if (r == c) { … }``: every event inside the block carries a
    control dependency on the load that defined ``register``.
    """

    register: ArmRegister
    constant: int
    body: Tuple[ArmInstruction, ...]


@dataclass(frozen=True)
class ArmThread:
    """One hardware thread of an ARM litmus test."""

    instructions: Tuple[ArmInstruction, ...]
    name: Optional[str] = None


@dataclass(frozen=True)
class ArmProgram:
    """An ARM litmus test: threads over a single shared byte-addressed memory."""

    name: str
    threads: Tuple[ArmThread, ...]
    memory_size: int = 8

    def __post_init__(self) -> None:
        if self.memory_size <= 0:
            raise ValueError("memory size must be positive")
        if not self.threads:
            raise ValueError("a program needs at least one thread")


# ---------------------------------------------------------------------------
# thread-local semantics
# ---------------------------------------------------------------------------

ArmTemplateKey = Tuple[int, int]


@dataclass(frozen=True)
class ArmWriteSpec:
    """How a store's bytes are computed (mirrors the JS-side WriteValue)."""

    kind: str  # "const" | "copy"
    payload: int = 0
    source: Optional[ArmTemplateKey] = None
    add_immediate: int = 0


@dataclass(frozen=True)
class ArmEventTemplate:
    """A symbolic ARM event: the access shape with the read value left open."""

    key: ArmTemplateKey
    kind: ArmEventKind
    addr: int = 0
    size: int = 0
    acquire: bool = False
    release: bool = False
    exclusive: bool = False
    barrier: Optional[BarrierKind] = None
    dest: Optional[str] = None
    write_spec: Optional[ArmWriteSpec] = None
    ctrl_sources: Tuple[ArmTemplateKey, ...] = ()
    data_sources: Tuple[ArmTemplateKey, ...] = ()
    rmw_partner: Optional[ArmTemplateKey] = None  # set on store-exclusives

    @property
    def tid(self) -> int:
        return self.key[0]

    @property
    def is_memory(self) -> bool:
        return self.kind is not ArmEventKind.FENCE

    @property
    def is_read(self) -> bool:
        return self.kind is ArmEventKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is ArmEventKind.WRITE

    def footprint(self) -> range:
        return range(self.addr, self.addr + self.size)


@dataclass(frozen=True)
class ArmPathConstraint:
    """The value read by ``source`` compared against ``constant``."""

    source: ArmTemplateKey
    equal: bool
    constant: int


@dataclass(frozen=True)
class ArmLocalPath:
    """One control-flow path of one ARM thread."""

    tid: int
    templates: Tuple[ArmEventTemplate, ...]
    constraints: Tuple[ArmPathConstraint, ...]
    registers: Tuple[Tuple[str, ArmTemplateKey], ...]


class _ArmPathBuilder:
    def __init__(self, tid: int):
        self.tid = tid
        self.templates: List[ArmEventTemplate] = []
        self.constraints: List[ArmPathConstraint] = []
        self.registers: Dict[str, ArmTemplateKey] = {}
        self.last_load_exclusive: Optional[ArmTemplateKey] = None

    def snapshot(self) -> "_ArmPathBuilder":
        clone = _ArmPathBuilder(self.tid)
        clone.templates = list(self.templates)
        clone.constraints = list(self.constraints)
        clone.registers = dict(self.registers)
        clone.last_load_exclusive = self.last_load_exclusive
        return clone

    def next_key(self) -> ArmTemplateKey:
        return (self.tid, len(self.templates))

    def finish(self) -> ArmLocalPath:
        return ArmLocalPath(
            tid=self.tid,
            templates=tuple(self.templates),
            constraints=tuple(self.constraints),
            registers=tuple(sorted(self.registers.items())),
        )


def _explore(
    builder: _ArmPathBuilder,
    instructions: Sequence[ArmInstruction],
    ctrl_sources: Tuple[ArmTemplateKey, ...],
) -> Iterator[_ArmPathBuilder]:
    if not instructions:
        yield builder
        return
    instr, rest = instructions[0], instructions[1:]

    if isinstance(instr, ArmLoad):
        key = builder.next_key()
        builder.templates.append(
            ArmEventTemplate(
                key=key,
                kind=ArmEventKind.READ,
                addr=instr.addr,
                size=instr.size,
                acquire=instr.acquire,
                exclusive=instr.exclusive,
                dest=instr.dest.name,
                ctrl_sources=ctrl_sources,
            )
        )
        builder.registers[instr.dest.name] = key
        if instr.exclusive:
            builder.last_load_exclusive = key
        yield from _explore(builder, rest, ctrl_sources)
        return

    if isinstance(instr, ArmStore):
        key = builder.next_key()
        if isinstance(instr.src, ArmRegister):
            source = builder.registers.get(instr.src.name)
            if source is None:
                raise ValueError(
                    f"thread {builder.tid}: store from undefined register "
                    f"{instr.src.name!r}"
                )
            spec = ArmWriteSpec(
                kind="copy", source=source, add_immediate=instr.add_immediate
            )
            data_sources: Tuple[ArmTemplateKey, ...] = (source,)
        else:
            spec = ArmWriteSpec(kind="const", payload=int(instr.src))
            data_sources = ()
        partner = builder.last_load_exclusive if instr.exclusive else None
        builder.templates.append(
            ArmEventTemplate(
                key=key,
                kind=ArmEventKind.WRITE,
                addr=instr.addr,
                size=instr.size,
                release=instr.release,
                exclusive=instr.exclusive,
                write_spec=spec,
                ctrl_sources=ctrl_sources,
                data_sources=data_sources,
                rmw_partner=partner,
            )
        )
        yield from _explore(builder, rest, ctrl_sources)
        return

    if isinstance(instr, ArmBarrier):
        key = builder.next_key()
        builder.templates.append(
            ArmEventTemplate(
                key=key,
                kind=ArmEventKind.FENCE,
                barrier=instr.kind,
                ctrl_sources=ctrl_sources,
            )
        )
        yield from _explore(builder, rest, ctrl_sources)
        return

    if isinstance(instr, ArmCtrl):
        source = builder.registers.get(instr.register.name)
        if source is None:
            raise ValueError(
                f"thread {builder.tid}: branch on undefined register "
                f"{instr.register.name!r}"
            )
        taken = builder.snapshot()
        taken.constraints.append(
            ArmPathConstraint(source=source, equal=True, constant=instr.constant)
        )
        inner_sources = tuple(dict.fromkeys(ctrl_sources + (source,)))
        for done in _explore(taken, instr.body, inner_sources):
            yield from _explore(done, rest, ctrl_sources)
        builder.constraints.append(
            ArmPathConstraint(source=source, equal=False, constant=instr.constant)
        )
        yield from _explore(builder, rest, ctrl_sources)
        return

    raise ValueError(f"unsupported ARM instruction: {instr!r}")


def arm_thread_paths(thread: ArmThread, tid: int) -> List[ArmLocalPath]:
    """All control-flow paths of one ARM thread."""
    return [
        b.finish() for b in _explore(_ArmPathBuilder(tid), thread.instructions, ())
    ]


def arm_program_paths(program: ArmProgram) -> Iterator[Tuple[ArmLocalPath, ...]]:
    """All combinations of per-thread paths of an ARM program."""
    per_thread = [
        arm_thread_paths(thread, tid) for tid, thread in enumerate(program.threads)
    ]
    yield from itertools.product(*per_thread)
