"""A Flat-style operational ARMv8 model (the paper's validation oracle, §4.1).

The paper validates its mixed-size axiomatic model against *Flat* — an
operational, multi-copy-atomic, extensively tested model of ARMv8 — by
running a large litmus corpus through Flat and checking that every
operational-allowed execution is also allowed axiomatically.

Flat itself (a Sail/Lem artefact) is not available here, so this module
provides the closest laptop-scale substitute: a **multi-copy-atomic,
out-of-order-commit operational simulator** over a single flat byte
memory.  Instructions of each thread may commit out of program order except
where the architecture orders them:

* overlapping accesses of one thread commit in program order (per-location
  coherence; slightly stronger than the architecture for read/read pairs),
* a load-acquire commits before any program-order-later access,
* a store-release commits after every program-order-earlier access,
* ``dmb`` barriers order the appropriate earlier/later classes,
* register dependencies (data/control) commit producers before consumers
  (control-dependent *loads* are therefore not speculated — again slightly
  stronger than the architecture),
* a store-exclusive succeeds only if no other thread wrote to its footprint
  since the paired load-exclusive committed.

Because every strengthening makes the operational model allow *fewer*
behaviours, it remains a sound oracle for the §4.1 validation direction:
every execution this model produces must be allowed by the axiomatic model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..core.relations import Relation
from .axiomatic import ArmExecution, ArmGroundExecution, ArmOutcome
from .events import ArmEvent, ArmEventKind, BarrierKind, make_arm_init
from .program import (
    ArmBarrier,
    ArmCtrl,
    ArmInstruction,
    ArmLoad,
    ArmProgram,
    ArmRegister,
    ArmStore,
    ArmThread,
)


class OperationalBudgetExceeded(RuntimeError):
    """Raised when the interleaving search exceeds its state budget."""


@dataclass(frozen=True)
class FlatSlot:
    """One flattened instruction occurrence of a thread."""

    index: int
    kind: str  # "load" | "store" | "fence"
    addr: int = 0
    size: int = 0
    acquire: bool = False
    release: bool = False
    exclusive: bool = False
    barrier: Optional[BarrierKind] = None
    dest: Optional[str] = None
    src_reg: Optional[str] = None
    src_const: int = 0
    add_immediate: int = 0
    ctrl_conditions: Tuple[Tuple[str, int], ...] = ()

    @property
    def is_memory(self) -> bool:
        return self.kind in ("load", "store")

    def footprint(self) -> range:
        return range(self.addr, self.addr + self.size) if self.is_memory else range(0)


def flatten_thread(thread: ArmThread) -> List[FlatSlot]:
    """Flatten nested control blocks into a linear list of guarded slots."""
    slots: List[FlatSlot] = []

    def walk(instructions: Sequence[ArmInstruction], conds: Tuple[Tuple[str, int], ...]):
        for instr in instructions:
            if isinstance(instr, ArmLoad):
                slots.append(
                    FlatSlot(
                        index=len(slots),
                        kind="load",
                        addr=instr.addr,
                        size=instr.size,
                        acquire=instr.acquire,
                        exclusive=instr.exclusive,
                        dest=instr.dest.name,
                        ctrl_conditions=conds,
                    )
                )
            elif isinstance(instr, ArmStore):
                src_reg = instr.src.name if isinstance(instr.src, ArmRegister) else None
                src_const = 0 if src_reg else int(instr.src)
                slots.append(
                    FlatSlot(
                        index=len(slots),
                        kind="store",
                        addr=instr.addr,
                        size=instr.size,
                        release=instr.release,
                        exclusive=instr.exclusive,
                        src_reg=src_reg,
                        src_const=src_const,
                        add_immediate=instr.add_immediate,
                        ctrl_conditions=conds,
                    )
                )
            elif isinstance(instr, ArmBarrier):
                slots.append(
                    FlatSlot(
                        index=len(slots),
                        kind="fence",
                        barrier=instr.kind,
                        ctrl_conditions=conds,
                    )
                )
            elif isinstance(instr, ArmCtrl):
                walk(instr.body, conds + ((instr.register.name, instr.constant),))
            else:  # pragma: no cover - defensive
                raise ValueError(f"unsupported instruction {instr!r}")

    walk(thread.instructions, ())
    return slots


def _defining_slot(slots: Sequence[FlatSlot], index: int, register: str) -> Optional[int]:
    """The most recent slot before ``index`` that defines ``register``."""
    for j in range(index - 1, -1, -1):
        if slots[j].kind == "load" and slots[j].dest == register:
            return j
    return None


PENDING = 0
COMMITTED = 1
SKIPPED = 2


@dataclass
class _ThreadState:
    slots: List[FlatSlot]
    status: List[int]
    registers: Dict[str, int] = field(default_factory=dict)

    def clone(self) -> "_ThreadState":
        return _ThreadState(
            slots=self.slots,
            status=list(self.status),
            registers=dict(self.registers),
        )


@dataclass
class _MachineState:
    memory: List[int]
    last_writer: List[Tuple[int, int]]  # per byte: (tid, slot) of last committed write
    threads: List[_ThreadState]
    trace: List[Tuple[int, int]] = field(default_factory=list)
    rbf_record: Dict[Tuple[int, int], Dict[int, Tuple[int, int]]] = field(
        default_factory=dict
    )
    co_record: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)

    def clone(self) -> "_MachineState":
        return _MachineState(
            memory=list(self.memory),
            last_writer=list(self.last_writer),
            threads=[t.clone() for t in self.threads],
            trace=list(self.trace),
            rbf_record={k: dict(v) for k, v in self.rbf_record.items()},
            co_record={k: list(v) for k, v in self.co_record.items()},
        )


_INIT_WRITER = (-1, -1)


def _initial_state(program: ArmProgram) -> _MachineState:
    threads = []
    for thread in program.threads:
        slots = flatten_thread(thread)
        threads.append(_ThreadState(slots=slots, status=[PENDING] * len(slots)))
    return _MachineState(
        memory=[0] * program.memory_size,
        last_writer=[_INIT_WRITER] * program.memory_size,
        threads=threads,
        co_record={k: [_INIT_WRITER] for k in range(program.memory_size)},
    )


def _must_precede(earlier: FlatSlot, later: FlatSlot) -> bool:
    """Does the architecture force ``earlier`` to commit before ``later``?"""
    # Overlapping accesses commit in program order (per-location coherence).
    if earlier.is_memory and later.is_memory:
        a, b = earlier.footprint(), later.footprint()
        if a.start < b.stop and b.start < a.stop:
            return True
    # Acquire orders everything after it.
    if earlier.kind == "load" and earlier.acquire and later.is_memory:
        return True
    # Release waits for everything before it.
    if later.kind == "store" and later.release and earlier.is_memory:
        return True
    # A release store is ordered before a later acquire load ([L]; po; [A]).
    if (
        earlier.kind == "store"
        and earlier.release
        and later.kind == "load"
        and later.acquire
    ):
        return True
    # Barriers.
    if earlier.kind == "fence":
        if earlier.barrier is BarrierKind.FULL and later.is_memory:
            return True
        if earlier.barrier is BarrierKind.LD and later.is_memory:
            return True
        if earlier.barrier is BarrierKind.ST and later.kind == "store":
            return True
    if later.kind == "fence":
        if later.barrier is BarrierKind.FULL and earlier.is_memory:
            return True
        if later.barrier is BarrierKind.LD and earlier.kind == "load":
            return True
        if later.barrier is BarrierKind.ST and earlier.kind == "store":
            return True
    # A store-exclusive follows its load-exclusive.
    if later.kind == "store" and later.exclusive and earlier.kind == "load" and earlier.exclusive:
        return True
    return False


def _slot_readiness(state: _MachineState, tid: int, index: int) -> str:
    """Classify a pending slot as ``ready``, ``blocked`` or ``skip``."""
    thread = state.threads[tid]
    slot = thread.slots[index]

    # Control conditions must be resolved before the slot can run or be skipped.
    for register, constant in slot.ctrl_conditions:
        definer = _defining_slot(thread.slots, index, register)
        if definer is None or thread.status[definer] != COMMITTED:
            return "blocked"
        if thread.registers.get(register) != constant:
            return "skip"

    # Data source must be available.
    if slot.src_reg is not None:
        definer = _defining_slot(thread.slots, index, slot.src_reg)
        if definer is None or thread.status[definer] != COMMITTED:
            return "blocked"

    # Program-order commit constraints.
    for j in range(index):
        if thread.status[j] == COMMITTED:
            continue
        if thread.status[j] == SKIPPED:
            continue
        earlier = thread.slots[j]
        if _must_precede(earlier, slot):
            return "blocked"
        # An unresolved earlier branch could still skip or keep the earlier
        # slot; being conservative, overlapping or ordering-relevant earlier
        # slots already returned "blocked" above, others may be bypassed.
    return "ready"


def _resolve_skips(state: _MachineState) -> None:
    """Mark slots whose control condition is resolved false as skipped."""
    changed = True
    while changed:
        changed = False
        for tid, thread in enumerate(state.threads):
            for index, status in enumerate(thread.status):
                if status != PENDING:
                    continue
                if _slot_readiness(state, tid, index) == "skip":
                    thread.status[index] = SKIPPED
                    changed = True


def _commit(state: _MachineState, tid: int, index: int) -> Optional[_MachineState]:
    """Commit one ready slot, returning the successor state (or ``None``)."""
    new_state = state.clone()
    thread = new_state.threads[tid]
    slot = thread.slots[index]

    if slot.kind == "fence":
        thread.status[index] = COMMITTED
        new_state.trace.append((tid, index))
        _resolve_skips(new_state)
        return new_state

    footprint = slot.footprint()
    if slot.kind == "load":
        data = tuple(new_state.memory[k] for k in footprint)
        value = int.from_bytes(bytes(data), "little")
        thread.registers[slot.dest] = value
        new_state.rbf_record[(tid, index)] = {
            k: new_state.last_writer[k] for k in footprint
        }
    else:  # store
        if slot.exclusive:
            # Find the paired load-exclusive (the most recent committed one).
            paired = None
            for j in range(index - 1, -1, -1):
                candidate = thread.slots[j]
                if candidate.kind == "load" and candidate.exclusive:
                    paired = j
                    break
            if paired is None or thread.status[paired] != COMMITTED:
                return None
            snapshot = dict(
                new_state.rbf_record.get((tid, paired), {})
            )
            for k in footprint:
                current = new_state.last_writer[k]
                if current == snapshot.get(k) or current[0] == tid:
                    continue
                return None  # another thread intervened: the exclusive fails
        if slot.src_reg is not None:
            value = thread.registers[slot.src_reg] + slot.add_immediate
        else:
            value = slot.src_const
        mask = (1 << (8 * slot.size)) - 1
        data = tuple((value & mask).to_bytes(slot.size, "little"))
        for k, byte in zip(footprint, data):
            new_state.memory[k] = byte
            new_state.last_writer[k] = (tid, index)
            new_state.co_record.setdefault(k, []).append((tid, index))

    thread.status[index] = COMMITTED
    new_state.trace.append((tid, index))
    _resolve_skips(new_state)
    return new_state


def _is_final(state: _MachineState) -> bool:
    return all(
        all(status != PENDING for status in thread.status) for thread in state.threads
    )


def _ready_slots(state: _MachineState) -> List[Tuple[int, int]]:
    ready = []
    for tid, thread in enumerate(state.threads):
        for index, status in enumerate(thread.status):
            if status == PENDING and _slot_readiness(state, tid, index) == "ready":
                ready.append((tid, index))
    return ready


# ---------------------------------------------------------------------------
# turning finished states into candidate executions
# ---------------------------------------------------------------------------


def _execution_from_state(program: ArmProgram, state: _MachineState) -> ArmExecution:
    """Reconstruct the candidate execution witnessed by one operational run."""
    init = make_arm_init(program.memory_size, eid=0)
    eid_of: Dict[Tuple[int, int], int] = {_INIT_WRITER: 0}
    events: List[ArmEvent] = [init]
    next_eid = 1
    committed: Dict[int, List[int]] = {}
    for tid, thread in enumerate(state.threads):
        committed[tid] = [
            i for i, status in enumerate(thread.status) if status == COMMITTED
        ]
    for tid in sorted(committed):
        thread = state.threads[tid]
        for index in committed[tid]:
            slot = thread.slots[index]
            eid = next_eid
            next_eid += 1
            eid_of[(tid, index)] = eid
            if slot.kind == "fence":
                events.append(
                    ArmEvent(eid=eid, tid=tid, kind=ArmEventKind.FENCE, barrier=slot.barrier)
                )
                continue
            if slot.kind == "load":
                value = thread.registers.get(slot.dest, 0)
                kind = ArmEventKind.READ
            else:
                if slot.src_reg is not None:
                    value = thread.registers[slot.src_reg] + slot.add_immediate
                else:
                    value = slot.src_const
                kind = ArmEventKind.WRITE
            mask = (1 << (8 * slot.size)) - 1
            data = tuple((value & mask).to_bytes(slot.size, "little"))
            events.append(
                ArmEvent(
                    eid=eid,
                    tid=tid,
                    kind=kind,
                    addr=slot.addr,
                    data=data,
                    acquire=slot.acquire,
                    release=slot.release,
                    exclusive=slot.exclusive,
                )
            )

    po_pairs = []
    data_pairs = []
    ctrl_pairs = []
    rmw_pairs = []
    for tid, indices in committed.items():
        thread = state.threads[tid]
        for a, b in itertools.combinations(indices, 2):
            po_pairs.append((eid_of[(tid, a)], eid_of[(tid, b)]))
        for index in indices:
            slot = thread.slots[index]
            if slot.src_reg is not None:
                definer = _defining_slot(thread.slots, index, slot.src_reg)
                if definer is not None and (tid, definer) in eid_of:
                    data_pairs.append((eid_of[(tid, definer)], eid_of[(tid, index)]))
            for register, _constant in slot.ctrl_conditions:
                definer = _defining_slot(thread.slots, index, register)
                if definer is not None and (tid, definer) in eid_of:
                    ctrl_pairs.append((eid_of[(tid, definer)], eid_of[(tid, index)]))
            if slot.kind == "store" and slot.exclusive:
                for j in range(index - 1, -1, -1):
                    if thread.slots[j].kind == "load" and thread.slots[j].exclusive:
                        if (tid, j) in eid_of:
                            rmw_pairs.append((eid_of[(tid, j)], eid_of[(tid, index)]))
                        break

    rbf = set()
    for (tid, index), byte_writers in state.rbf_record.items():
        if state.threads[tid].status[index] != COMMITTED:
            continue
        reader = eid_of[(tid, index)]
        for k, writer in byte_writers.items():
            rbf.add((k, eid_of[writer], reader))

    co_by_byte = []
    for k, writers in state.co_record.items():
        order = tuple(eid_of[w] for w in writers if w in eid_of)
        if len(order) > 1:
            co_by_byte.append((k, order))
        elif order:
            co_by_byte.append((k, order))

    return ArmExecution(
        events=tuple(events),
        po=Relation(po_pairs),
        data=Relation(data_pairs),
        ctrl=Relation(ctrl_pairs),
        rmw=Relation(rmw_pairs),
        rbf=frozenset(rbf),
        co_by_byte=tuple(sorted(co_by_byte)),
    )


def _outcome_from_state(state: _MachineState) -> ArmOutcome:
    outcome: ArmOutcome = {}
    for tid, thread in enumerate(state.threads):
        for register, value in thread.registers.items():
            outcome[f"{tid}:{register}"] = value
    return outcome


def arm_operational_runs(
    program: ArmProgram, max_states: int = 200_000
) -> Iterator[ArmGroundExecution]:
    """Enumerate every operational run, yielding its candidate execution.

    Raises :class:`OperationalBudgetExceeded` when the interleaving search
    visits more states than ``max_states``.
    """
    initial = _initial_state(program)
    _resolve_skips(initial)
    stack = [initial]
    visited = 0
    while stack:
        state = stack.pop()
        visited += 1
        if visited > max_states:
            raise OperationalBudgetExceeded(
                f"operational search for {program.name!r} exceeded {max_states} states"
            )
        if _is_final(state):
            yield ArmGroundExecution(
                execution=_execution_from_state(program, state),
                outcome=_outcome_from_state(state),
            )
            continue
        ready = _ready_slots(state)
        if not ready:
            # A store-exclusive that can never succeed, or a genuine deadlock;
            # this run simply has no completed execution.
            continue
        for tid, index in ready:
            successor = _commit(state, tid, index)
            if successor is not None:
                stack.append(successor)


def arm_operational_outcomes(
    program: ArmProgram, max_states: int = 200_000
) -> List[ArmOutcome]:
    """The distinct final register assignments reachable operationally."""
    seen = set()
    outcomes: List[ArmOutcome] = []
    for run in arm_operational_runs(program, max_states=max_states):
        key = tuple(sorted(run.outcome.items()))
        if key not in seen:
            seen.add(key)
            outcomes.append(run.outcome)
    return outcomes


def arm_operational_executions(
    program: ArmProgram, max_states: int = 200_000
) -> Iterator[ArmExecution]:
    """The candidate executions witnessed by the operational runs."""
    for run in arm_operational_runs(program, max_states=max_states):
        yield run.execution
