"""Deadness of counter-example executions (§5.2, Fig. 11).

A naive search for compilation-scheme counter-examples finds *spurious*
witnesses: JavaScript executions that are invalid only because the search
picked a bad ``total-order``, and which become valid again under a
different ``tot``.  Fig. 11 is the canonical example.  Wickerson et al.
call the executions worth reporting *dead*: ones whose invalidity cannot be
repaired by permuting ``tot``.

Alloy cannot afford the inner ``∀ tot`` quantification, so the paper uses a
*syntactic* approximation.  Our explicit-state substitute can afford the
exact check for litmus-sized executions, so this module provides both:

* :func:`semantically_dead` — invalid for **every** total order (exact);
* :func:`syntactically_dead` — a cheap sufficient condition in the spirit
  of the paper's criterion: the execution is invalid under the given
  witness and every ``tot`` edge contributing to the violated SC-atomics
  instances is already forced by ``happens-before`` (so no permutation can
  remove it).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.events import SEQCST, ranges_equal
from ..core.execution import CandidateExecution
from ..core.js_model import (
    FINAL_MODEL,
    JsModel,
    ORIGINAL_MODEL,
    ScAtomicsRule,
    invalid_for_all_total_orders,
    is_valid,
    validity_violations,
)


def semantically_dead(
    execution: CandidateExecution, model: JsModel = ORIGINAL_MODEL
) -> bool:
    """Exact deadness: no choice of ``total-order`` makes the execution valid."""
    return invalid_for_all_total_orders(execution, model)


def _sc_atomics_blocked_by_hb(
    execution: CandidateExecution, model: JsModel
) -> bool:
    """Is some SC-atomics violation forced by ``happens-before`` alone?

    We look for a synchronising (or reads-from, for the final rule) pair
    ``(Ew, Er)`` and an intervening write ``E'w`` whose position between the
    pair is already implied by ``hb`` — i.e. ``Ew hb E'w hb Er``.  Since any
    valid ``tot`` must extend ``hb`` (Happens-Before Consistency 1), such a
    violation survives every permutation of ``tot``.
    """
    hb = model.happens_before(execution)
    sw = model.synchronizes_with(execution)
    rf = execution.reads_from()
    if model.sc_atomics is ScAtomicsRule.FINAL:
        pairs = [(w, r) for (w, r) in rf if (w, r) in hb]
    else:
        pairs = list(sw)
    for (w_eid, r_eid) in pairs:
        reader = execution.event(r_eid)
        if not reader.is_read:
            continue
        for candidate in execution.events:
            if candidate.eid in (w_eid, r_eid) or not candidate.is_write:
                continue
            if model.sc_atomics is not ScAtomicsRule.ORIGINAL and candidate.ord is not SEQCST:
                continue
            if candidate.block != reader.block or not ranges_equal(
                candidate.range_w, reader.range_r
            ):
                continue
            if (w_eid, candidate.eid) in hb and (candidate.eid, r_eid) in hb:
                return True
    return False


def syntactically_dead(
    execution: CandidateExecution, model: JsModel = ORIGINAL_MODEL
) -> bool:
    """A sufficient syntactic condition for deadness.

    The execution is declared dead when it violates a rule that does not
    mention ``tot`` at all (Happens-Before Consistency 2/3 or Tear-Free
    Reads), or when an SC-atomics violation is forced by ``happens-before``
    (see :func:`_sc_atomics_blocked_by_hb`).  Like the paper's criterion
    this may reject some genuinely dead executions, but it never accepts a
    live one.
    """
    if execution.tot is None:
        return False
    violations = validity_violations(execution, model)
    if not violations:
        return False
    tot_free = {
        "happens-before-consistency-2",
        "happens-before-consistency-3",
        "tear-free-reads",
        "well-formedness",
    }
    if any(v in tot_free for v in violations):
        return True
    if "sequentially-consistent-atomics" in violations or (
        "happens-before-consistency-1" in violations
    ):
        return _sc_atomics_blocked_by_hb(execution, model)
    return False
