"""Bounded generation of litmus programs for the counter-example searches (§5).

The paper's searches run in Alloy over candidate-execution shapes up to a
bound (8 events, 20 locations).  Our explicit-state substitute enumerates
*programs* of the restricted fragment instead: every program over a bounded
number of threads, accesses per thread, locations and written values,
optionally ending a thread with the "guarded observer" pattern
(``r = Atomics.load(x); if (r == c) { r' = x[...] }``) that the SC-DRF
counter-example (Fig. 8) needs.

Programs are produced in order of increasing access count, so a search that
stops at its first hit reports a minimum-size counter-example, exactly like
the paper's incremental Alloy bounds.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..lang.ast import IfEq, Load, Program, Register, Statement, Store, Thread, TypedAccess
from ..lang.memory import INT32, new_shared_array_buffer, new_typed_array


@dataclass(frozen=True)
class SearchBounds:
    """The bounds of a program-shape enumeration.

    ``max_total_accesses`` bounds the number of memory events (excluding the
    Init event) — the analogue of Alloy's event bound;
    ``locations`` is how many distinct 32-bit locations are available;
    ``guarded_observer`` additionally appends a conditional non-atomic read
    to threads ending in an atomic load.
    """

    threads: int = 2
    max_accesses_per_thread: int = 2
    max_total_accesses: int = 4
    locations: int = 1
    values: Tuple[int, ...] = (1, 2)
    allow_unordered: bool = True
    guarded_observer: bool = True
    max_programs: Optional[int] = None


@dataclass(frozen=True)
class AccessSpec:
    """One access of a generated thread."""

    kind: str  # "store" | "load"
    location: int
    atomic: bool
    value: int = 0  # stores only


def _access_options(bounds: SearchBounds) -> List[AccessSpec]:
    options: List[AccessSpec] = []
    modes = (True, False) if bounds.allow_unordered else (True,)
    for location in range(bounds.locations):
        for atomic in modes:
            for value in bounds.values:
                options.append(AccessSpec("store", location, atomic, value))
            options.append(AccessSpec("load", location, atomic))
    return options


class _BoundedMemo:
    """A small LRU memo for the shape/sized tables.

    The tables are pure functions of their bounds key, so eviction can
    never change a result — only force a rebuild.  Long-lived processes
    (servers, REPL sessions, parametrised test runs) used to grow the
    plain-dict memos without bound, one multi-thousand-entry table per
    distinct :class:`SearchBounds` ever queried; a handful of recently-used
    tables is what the sweeps actually revisit.
    """

    __slots__ = ("limit", "entries")

    def __init__(self, limit: int):
        self.limit = limit
        self.entries: OrderedDict = OrderedDict()

    def get(self, key):
        value = self.entries.get(key)
        if value is not None:
            self.entries.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self.entries[key] = value
        self.entries.move_to_end(key)
        while len(self.entries) > self.limit:
            self.entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self.entries)


_MEMO_LIMIT = 16

_SHAPES_MEMO = _BoundedMemo(_MEMO_LIMIT)


def _shape_key(bounds: SearchBounds) -> Tuple:
    """The fields :func:`_thread_shapes` actually depends on.

    Memo keys must not include the others — in particular
    ``max_programs``, which truncates the *enumeration*, not the shape
    table: bounds differing only in it share identical tables, and keying
    on the full ``SearchBounds`` used to duplicate them per value.
    """
    return (
        bounds.max_accesses_per_thread,
        bounds.locations,
        bounds.values,
        bounds.allow_unordered,
        bounds.guarded_observer,
    )


def _sized_key(bounds: SearchBounds) -> Tuple:
    """The fields :func:`_sized_combos` depends on (shape key + combination bounds)."""
    return _shape_key(bounds) + (bounds.threads, bounds.max_total_accesses)


def _thread_shapes(
    bounds: SearchBounds,
) -> List[Tuple[Tuple[AccessSpec, ...], Optional[Tuple[int, int]]]]:
    """All per-thread access sequences, optionally with a guarded observer.

    The second component, when present, is ``(guard value, observed
    location)``: the thread ends with ``if (r == guard) { r' = x[loc] }``
    where ``r`` is the result of the thread's final (atomic) load.
    """
    memoised = _SHAPES_MEMO.get(_shape_key(bounds))
    if memoised is not None:
        return memoised
    options = _access_options(bounds)
    shapes: List[Tuple[Tuple[AccessSpec, ...], Optional[Tuple[int, int]]]] = []
    for length in range(1, bounds.max_accesses_per_thread + 1):
        for combo in itertools.product(options, repeat=length):
            shapes.append((combo, None))
            if (
                bounds.guarded_observer
                and combo[-1].kind == "load"
                and combo[-1].atomic
            ):
                for guard in bounds.values:
                    for location in range(bounds.locations):
                        shapes.append((combo, (guard, location)))
    _SHAPES_MEMO.put(_shape_key(bounds), shapes)
    return shapes


def _shape_size(shape) -> int:
    accesses, observer = shape
    return len(accesses) + (1 if observer else 0)


def _build_thread(
    shape, view, register_prefix: str
) -> Thread:
    accesses, observer = shape
    statements: List[Statement] = []
    register_index = 0
    last_load_register: Optional[Register] = None
    for spec in accesses:
        target = TypedAccess(view, spec.location)
        if spec.kind == "store":
            statements.append(Store(target, spec.value, atomic=spec.atomic))
        else:
            register = Register(f"{register_prefix}{register_index}")
            register_index += 1
            statements.append(Load(register, target, atomic=spec.atomic))
            last_load_register = register
    if observer is not None and last_load_register is not None:
        guard, location = observer
        register = Register(f"{register_prefix}{register_index}")
        statements.append(
            IfEq(
                last_load_register,
                guard,
                then=(Load(register, TypedAccess(view, location)),),
            )
        )
    return Thread(tuple(statements))


# The (size, shape-combo) table of each bounds value, memoised: sharded
# sweeps re-enter the enumeration once per chunk.  Forked workers inherit
# the parent's warmed table; spawned workers receive it through the pool
# initializer (see shape_tables/install_shape_tables), so either way a
# sweep builds each table once, not once per worker process.
_SIZED_MEMO = _BoundedMemo(_MEMO_LIMIT)


def _sized_combos(bounds: SearchBounds) -> List[Tuple[int, Tuple[int, ...]]]:
    """Every thread-shape combination within ``bounds``, smallest first.

    Canonical form: thread shapes in non-decreasing index order removes the
    symmetric duplicates obtained by permuting threads.
    """
    key = _sized_key(bounds)
    sized = _SIZED_MEMO.get(key)
    if sized is None:
        shapes = _thread_shapes(bounds)
        sized = []
        for combo in itertools.product(range(len(shapes)), repeat=bounds.threads):
            if list(combo) != sorted(combo):
                continue
            total = sum(_shape_size(shapes[i]) for i in combo)
            if total > bounds.max_total_accesses:
                continue
            sized.append((total, combo))
        sized.sort()
        _SIZED_MEMO.put(key, sized)
    return sized


def shape_tables(bounds: SearchBounds) -> Tuple:
    """A picklable snapshot of the (warmed) shape tables for ``bounds``.

    The sweeps compute these tables in the parent anyway (cost hints, shard
    layout); shipping the snapshot to each worker through the pool
    initializer — :func:`install_shape_tables` — means every worker process
    of a sweep receives the tables once, instead of rebuilding them from
    scratch on its first chunk (the fork start method inherits them for
    free; this covers spawn hosts and keeps the guarantee explicit).
    """
    return (
        _shape_key(bounds),
        _thread_shapes(bounds),
        _sized_key(bounds),
        _sized_combos(bounds),
    )


def install_shape_tables(tables: Tuple) -> None:
    """Seed this process's shape memos from a :func:`shape_tables` snapshot."""
    shape_key, shapes, sized_key, sized = tables
    _SHAPES_MEMO.put(shape_key, shapes)
    _SIZED_MEMO.put(sized_key, sized)


def program_count(bounds: SearchBounds) -> int:
    """How many programs :func:`generate_programs` yields for ``bounds``."""
    total = len(_sized_combos(bounds))
    if bounds.max_programs is not None:
        total = min(total, bounds.max_programs)
    return total


def program_cost_hints(bounds: SearchBounds, kind: str = "js") -> Tuple[int, ...]:
    """Per-program cost estimates for the sweeps' cost-balanced chunker.

    The per-program check cost grows roughly exponentially with the access
    count (every extra access multiplies both the ``reads-byte-from``
    choices and the witness orders), and the enumeration is sorted by
    access count — which is exactly why its cost is so tail-heavy.  The
    hints are ``base**size``; only their *relative* magnitudes matter to
    :func:`repro.dispatch.sized_shard_ranges`.

    ``kind`` selects the growth model: ``"js"`` (the §5.4 SC-DRF sweep)
    keeps the historical ``4**size``.  ``"arm-compilation"`` items are
    *classed*: the ARM grounding layer shares its per-assignment
    scaffolding per (value profile, rf signature) class, and the class
    count — which now dominates the per-program cost — grows more slowly
    than the raw assignment count, so a flatter ``3**size`` taper matches
    the measured per-size cost better and keeps head chunks from being
    over-batched.  Every hint tuple has exactly ``program_count(bounds)``
    entries, matching the sweeps' shard layouts one-to-one.
    """
    base = 3 if kind == "arm-compilation" else 4
    sized = _sized_combos(bounds)
    return tuple(base ** size for size, _combo in sized[: program_count(bounds)])


def generate_programs(
    bounds: SearchBounds, start: int = 0, stop: Optional[int] = None
) -> Iterator[Program]:
    """Enumerate programs within ``bounds``, smallest (fewest accesses) first.

    ``start``/``stop`` select a contiguous slice of the enumeration (used by
    the sharded sweeps): program names and order are positional, so the
    concatenation of slices is identical to the full enumeration.
    """
    buffer = new_shared_array_buffer("b", 4 * bounds.locations)
    view = new_typed_array("b", buffer, INT32)
    shapes = _thread_shapes(bounds)
    sized = _sized_combos(bounds)

    total = program_count(bounds)
    stop = total if stop is None else min(stop, total)
    for index in range(max(0, start), stop):
        _total, combo = sized[index]
        yield Program(
            name=f"shape-{index}",
            buffers=(buffer,),
            threads=tuple(
                _build_thread(shapes[i], view, register_prefix="r") for i in combo
            ),
            description="generated by the bounded shape search",
        )


def count_accesses(program: Program) -> int:
    """The number of memory accesses of a generated program (excluding Init)."""

    def count(statements: Sequence[Statement]) -> int:
        total = 0
        for stmt in statements:
            if isinstance(stmt, (Load, Store)):
                total += 1
            elif isinstance(stmt, IfEq):
                total += count(stmt.then) + count(stmt.otherwise)
        return total

    return sum(count(thread.statements) for thread in program.threads)
