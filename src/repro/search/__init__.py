"""The Alloy-substitute bounded searches of §5: shapes, deadness, counter-examples."""

from .shapes import AccessSpec, SearchBounds, count_accesses, generate_programs
from .deadness import semantically_dead, syntactically_dead
from .counterexamples import (
    ScDrfCounterExample,
    SearchReport,
    confirm_program_compilation_violation,
    materialise_hit,
    search_compilation_violation,
    search_sc_drf_violation,
    sweep_slice,
    sweep_slice_task,
)

__all__ = [
    "AccessSpec",
    "SearchBounds",
    "count_accesses",
    "generate_programs",
    "semantically_dead",
    "syntactically_dead",
    "ScDrfCounterExample",
    "SearchReport",
    "confirm_program_compilation_violation",
    "materialise_hit",
    "search_compilation_violation",
    "search_sc_drf_violation",
    "sweep_slice",
    "sweep_slice_task",
]
