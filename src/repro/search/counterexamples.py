"""The §5 counter-example searches (SC-DRF and ARMv8-compilation violations).

These are the explicit-state analogues of the paper's two Alloy searches:

* :func:`search_sc_drf_violation` looks for a data-race-free program with a
  model-allowed outcome no sequential interleaving explains (§5.4); run
  against the original model it rediscovers the 4-event, 1-location
  counter-example of Fig. 8, and against the corrected model it finds
  nothing within the bound.
* :func:`search_compilation_violation` looks for a program whose compiled
  ARMv8 executions include one whose translated JavaScript execution is
  invalid for *every* total order — a dead counter-example in the sense of
  §5.2 (§5.1); run against the original model over a bound including the
  R-shaped programs it rediscovers the 6-event, 2-location counter-example
  of Fig. 6, and against the corrected model it finds nothing (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..compile.correctness import (
    CompilationCounterExample,
    find_compilation_violation,
)
from ..core.data_race import data_races
from ..core.js_model import FINAL_MODEL, JsModel, ORIGINAL_MODEL
from ..dispatch import (
    VerdictCache,
    imap_ordered,
    program_fingerprint,
    resolve_cache,
    resolve_workers,
    shard_ranges,
    sized_shard_ranges,
)
from ..lang.ast import Outcome, Program
from ..lang.enumeration import allowed_executions
from ..lang.interpreter import sc_outcomes
from .shapes import (
    SearchBounds,
    count_accesses,
    generate_programs,
    install_shape_tables,
    program_cost_hints,
    program_count,
    shape_tables,
)


@dataclass(frozen=True)
class ScDrfCounterExample:
    """A data-race-free program with a non-sequentially-consistent outcome."""

    program: Program
    outcome: Outcome
    event_count: int
    location_count: int

    def describe(self) -> str:
        return (
            f"SC-DRF violation: {self.program.name} "
            f"({self.event_count} events, {self.location_count} location(s)) "
            f"allows non-SC outcome {self.outcome}"
        )


@dataclass
class SearchReport:
    """Statistics of one bounded search."""

    model: str
    programs_examined: int = 0
    counterexample: Optional[object] = None

    @property
    def found(self) -> bool:
        return self.counterexample is not None


def _location_count(program: Program) -> int:
    footprints = set()
    for thread in program.threads:
        stack = list(thread.statements)
        while stack:
            stmt = stack.pop()
            access = getattr(stmt, "access", None)
            if access is not None:
                rng = access.byte_range()
                footprints.add((access.block, rng.start, rng.stop))
            for attr in ("then", "otherwise"):
                stack.extend(getattr(stmt, attr, ()))
    return len(footprints)


def _sc_drf_counterexample(
    program: Program, model: JsModel
) -> Optional[ScDrfCounterExample]:
    """The per-program §5.4 check (the independent unit the sweeps shard).

    Data-race freedom and the allowed-outcome set are established in a
    *single* pass over the program's model-allowed executions: the first
    race disqualifies the program immediately, otherwise the (deduplicated)
    outcomes are collected as the executions stream by and only then
    compared against the sequential-interleaving oracle.
    """
    racy = False
    outcomes: List[Outcome] = []
    seen = set()
    for execution, outcome in allowed_executions(program, model):
        if data_races(execution, model):
            racy = True
            break
        key = tuple(sorted(outcome.items()))
        if key not in seen:
            seen.add(key)
            outcomes.append(outcome)
    if racy:
        # The SC-DRF guarantee is vacuous for racy programs.
        return None
    sc = {tuple(sorted(o.items())) for o in sc_outcomes(program)}
    weird = [o for o in outcomes if tuple(sorted(o.items())) not in sc]
    if not weird:
        return None
    return ScDrfCounterExample(
        program=program,
        outcome=weird[0],
        event_count=count_accesses(program),
        location_count=_location_count(program),
    )


def _sc_drf_hit(program: Program, model: JsModel) -> bool:
    return _sc_drf_counterexample(program, model) is not None


def _compilation_hit(
    program: Program, model: JsModel, use_operational: bool
) -> bool:
    return (
        find_compilation_violation(program, model, use_operational=use_operational)
        is not None
    )


# Per-program hit predicates by sweep kind; the kind tag is also part of the
# verdict-cache key.
_SWEEP_KINDS = {
    "sc-drf": lambda program, model, _use_operational: _sc_drf_hit(program, model),
    "arm-compilation": _compilation_hit,
}


def _sweep_chunk_worker(
    task,
) -> Tuple[int, Optional[int]]:
    """Scan one contiguous slice of the program enumeration.

    Returns ``(programs examined, global index of the first hit or None)``.
    With a verdict cache, per-program hit/miss verdicts are read and
    recorded; examined counts are unaffected, so warm-cache reports are
    bit-identical to cold ones.
    """
    kind, bounds, model, use_operational, start, stop, cache_spec = task
    check = _SWEEP_KINDS[kind]
    # Serial sweeps pass the live cache through (so hit/miss statistics land
    # on the caller's object); shard workers get the picklable spec.
    if isinstance(cache_spec, VerdictCache):
        cache = cache_spec
    else:
        cache = VerdictCache.from_spec(cache_spec)
    examined = 0
    for index, program in zip(
        range(start, stop), generate_programs(bounds, start, stop)
    ):
        examined += 1
        if cache is None:
            hit = check(program, model, use_operational)
        else:
            key = cache.key(
                kind, program_fingerprint(program), model, use_operational
            )
            hit = bool(
                cache.get_or_compute(
                    key, lambda: check(program, model, use_operational)
                )
            )
        if hit:
            return examined, index
    return examined, None


def _swept_search(
    kind: str,
    bounds: SearchBounds,
    model: JsModel,
    use_operational: bool,
    workers: Optional[int],
    cache,
    materialise,
    chunking: str = "sized",
) -> SearchReport:
    """The shared driver of both §5 sweeps.

    Chunks are scanned in generation order and the scan stops at the first
    hit, so the verdict, the counter-example, and ``programs_examined`` are
    identical to the serial search whatever ``workers`` is.  ``materialise``
    recomputes the full counter-example for the hit program in-process (the
    shard workers only report indices, keeping IPC payloads tiny).

    ``chunking`` selects the shard layout: ``"sized"`` (default) balances
    chunks by estimated program cost — the enumeration is sorted by access
    count and extremely tail-heavy, so equal-*count* chunks strand the
    expensive tail in the last worker — while ``"static"`` keeps the
    equal-count split (retained for benchmarking the difference).  Chunk
    boundaries never affect the report.
    """
    workers = resolve_workers(workers)
    cache = resolve_cache(cache)
    report = SearchReport(model=model.name)
    total = program_count(bounds)
    if cache is None:
        cache_spec = None
    elif workers <= 1:
        cache_spec = cache
    else:
        cache_spec = cache.spec
    if chunking == "static":
        ranges = shard_ranges(total, workers)
    else:
        ranges = sized_shard_ranges(
            total, workers, costs=program_cost_hints(bounds, kind=kind)
        )
    tasks = [
        (kind, bounds, model, use_operational, start, stop, cache_spec)
        for (start, stop) in ranges
    ]
    # The shape tables this sweep scans are already warm in this process
    # (the shard layout above consulted them); ship the snapshot to every
    # worker once at pool start instead of letting each worker process
    # rebuild it on its first chunk.
    results = imap_ordered(
        _sweep_chunk_worker,
        tasks,
        workers=workers,
        initializer=install_shape_tables,
        initargs=(shape_tables(bounds),),
    )
    for task, (examined, hit_index) in zip(tasks, results):
        report.programs_examined += examined
        chunk_stop = task[5]
        while hit_index is not None:
            program = next(generate_programs(bounds, hit_index, hit_index + 1))
            counterexample = materialise(program)
            if counterexample is not None:
                report.counterexample = counterexample
                return report
            # A stale cache entry claimed a hit the checker disowns (e.g. a
            # cache shared across an unbumped local edit): repair the entry,
            # then rescan the *rest of this chunk* — the worker returned at
            # the false hit, so the remainder has not been examined yet.
            if cache is not None:
                cache.put(
                    cache.key(
                        kind, program_fingerprint(program), model, use_operational
                    ),
                    False,
                )
            examined, hit_index = _sweep_chunk_worker(
                (kind, bounds, model, use_operational, hit_index + 1, chunk_stop, cache)
            )
            report.programs_examined += examined
    return report


def search_sc_drf_violation(
    bounds: SearchBounds,
    model: JsModel = ORIGINAL_MODEL,
    workers: Optional[int] = None,
    cache=None,
    chunking: str = "sized",
) -> SearchReport:
    """Search for an SC-DRF violation within ``bounds`` (§5.4).

    ``workers`` shards the program enumeration over the dispatch pool
    (cost-balanced chunks by default; ``chunking="static"`` restores the
    equal-count split); ``cache`` persists per-program hit/miss verdicts.
    Reports are bit-identical to the serial, uncached search.
    """
    return _swept_search(
        "sc-drf",
        bounds,
        model,
        False,
        workers,
        cache,
        lambda program: _sc_drf_counterexample(program, model),
        chunking=chunking,
    )


def search_compilation_violation(
    bounds: SearchBounds,
    model: JsModel = ORIGINAL_MODEL,
    use_operational: bool = False,
    workers: Optional[int] = None,
    cache=None,
    chunking: str = "sized",
) -> SearchReport:
    """Search for an ARMv8 compilation-scheme violation within ``bounds`` (§5.1).

    A hit is a program with an ARMv8-allowed execution whose translated
    JavaScript execution is invalid for every total order — i.e. a *dead*
    counter-example.  Shardable and cacheable like
    :func:`search_sc_drf_violation`.
    """
    return _swept_search(
        "arm-compilation",
        bounds,
        model,
        use_operational,
        workers,
        cache,
        lambda program: find_compilation_violation(
            program, model, use_operational=use_operational
        ),
        chunking=chunking,
    )


def confirm_program_compilation_violation(
    program: Program, model: JsModel = ORIGINAL_MODEL
) -> Optional[CompilationCounterExample]:
    """Check a specific (e.g. hand-found) program for a compilation violation.

    This mirrors §5.1's first use of the Alloy models: confirming that the
    hand-discovered counter-examples are real before searching for smaller
    ones automatically.
    """
    return find_compilation_violation(program, model)
