"""The §5 counter-example searches (SC-DRF and ARMv8-compilation violations).

These are the explicit-state analogues of the paper's two Alloy searches:

* :func:`search_sc_drf_violation` looks for a data-race-free program with a
  model-allowed outcome no sequential interleaving explains (§5.4); run
  against the original model it rediscovers the 4-event, 1-location
  counter-example of Fig. 8, and against the corrected model it finds
  nothing within the bound.
* :func:`search_compilation_violation` looks for a program whose compiled
  ARMv8 executions include one whose translated JavaScript execution is
  invalid for *every* total order — a dead counter-example in the sense of
  §5.2 (§5.1); run against the original model over a bound including the
  R-shaped programs it rediscovers the 6-event, 2-location counter-example
  of Fig. 6, and against the corrected model it finds nothing (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..compile.correctness import (
    CompilationCounterExample,
    find_compilation_violation,
)
from ..core.data_race import data_races
from ..core.js_model import FINAL_MODEL, JsModel, ORIGINAL_MODEL
from ..lang.ast import Outcome, Program
from ..lang.enumeration import allowed_executions
from ..lang.interpreter import sc_outcomes
from .shapes import SearchBounds, count_accesses, generate_programs


@dataclass(frozen=True)
class ScDrfCounterExample:
    """A data-race-free program with a non-sequentially-consistent outcome."""

    program: Program
    outcome: Outcome
    event_count: int
    location_count: int

    def describe(self) -> str:
        return (
            f"SC-DRF violation: {self.program.name} "
            f"({self.event_count} events, {self.location_count} location(s)) "
            f"allows non-SC outcome {self.outcome}"
        )


@dataclass
class SearchReport:
    """Statistics of one bounded search."""

    model: str
    programs_examined: int = 0
    counterexample: Optional[object] = None

    @property
    def found(self) -> bool:
        return self.counterexample is not None


def _location_count(program: Program) -> int:
    footprints = set()
    for thread in program.threads:
        stack = list(thread.statements)
        while stack:
            stmt = stack.pop()
            access = getattr(stmt, "access", None)
            if access is not None:
                rng = access.byte_range()
                footprints.add((access.block, rng.start, rng.stop))
            for attr in ("then", "otherwise"):
                stack.extend(getattr(stmt, attr, ()))
    return len(footprints)


def search_sc_drf_violation(
    bounds: SearchBounds,
    model: JsModel = ORIGINAL_MODEL,
) -> SearchReport:
    """Search for an SC-DRF violation within ``bounds`` (§5.4).

    Data-race freedom and the allowed-outcome set are established in a
    *single* pass over the program's model-allowed executions: the first
    race disqualifies the program immediately, otherwise the (deduplicated)
    outcomes are collected as the executions stream by and only then
    compared against the sequential-interleaving oracle.
    """
    report = SearchReport(model=model.name)
    for program in generate_programs(bounds):
        report.programs_examined += 1
        racy = False
        outcomes: List[Outcome] = []
        seen = set()
        for execution, outcome in allowed_executions(program, model):
            if data_races(execution, model):
                racy = True
                break
            key = tuple(sorted(outcome.items()))
            if key not in seen:
                seen.add(key)
                outcomes.append(outcome)
        if racy:
            # The SC-DRF guarantee is vacuous for racy programs.
            continue
        sc = {tuple(sorted(o.items())) for o in sc_outcomes(program)}
        weird = [o for o in outcomes if tuple(sorted(o.items())) not in sc]
        if weird:
            report.counterexample = ScDrfCounterExample(
                program=program,
                outcome=weird[0],
                event_count=count_accesses(program),
                location_count=_location_count(program),
            )
            return report
    return report


def search_compilation_violation(
    bounds: SearchBounds,
    model: JsModel = ORIGINAL_MODEL,
    use_operational: bool = False,
) -> SearchReport:
    """Search for an ARMv8 compilation-scheme violation within ``bounds`` (§5.1).

    A hit is a program with an ARMv8-allowed execution whose translated
    JavaScript execution is invalid for every total order — i.e. a *dead*
    counter-example.
    """
    report = SearchReport(model=model.name)
    for program in generate_programs(bounds):
        report.programs_examined += 1
        violation = find_compilation_violation(
            program, model, use_operational=use_operational
        )
        if violation is not None:
            report.counterexample = violation
            return report
    return report


def confirm_program_compilation_violation(
    program: Program, model: JsModel = ORIGINAL_MODEL
) -> Optional[CompilationCounterExample]:
    """Check a specific (e.g. hand-found) program for a compilation violation.

    This mirrors §5.1's first use of the Alloy models: confirming that the
    hand-discovered counter-examples are real before searching for smaller
    ones automatically.
    """
    return find_compilation_violation(program, model)
