"""The §5 counter-example searches (SC-DRF and ARMv8-compilation violations).

These are the explicit-state analogues of the paper's two Alloy searches:

* :func:`search_sc_drf_violation` looks for a data-race-free program with a
  model-allowed outcome no sequential interleaving explains (§5.4); run
  against the original model it rediscovers the 4-event, 1-location
  counter-example of Fig. 8, and against the corrected model it finds
  nothing within the bound.
* :func:`search_compilation_violation` looks for a program whose compiled
  ARMv8 executions include one whose translated JavaScript execution is
  invalid for *every* total order — a dead counter-example in the sense of
  §5.2 (§5.1); run against the original model over a bound including the
  R-shaped programs it rediscovers the 6-event, 2-location counter-example
  of Fig. 6, and against the corrected model it finds nothing (§5.3).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from .. import analyze
from ..analyze import symmetry
from ..compile.correctness import (
    CompilationCounterExample,
    find_compilation_violation,
)
from ..core.data_race import data_races
from ..core.js_model import FINAL_MODEL, JsModel, ORIGINAL_MODEL
from ..dispatch import (
    SEMANTICS_REVISION,
    SupervisionReport,
    SweepJournal,
    VerdictCache,
    chain_initializers,
    fingerprint,
    get_or_compute_aliased,
    program_fingerprint,
    resolve_cache,
    resolve_checkpoint,
    resolve_workers,
    shard_ranges,
    sized_shard_ranges,
    supervised_imap,
    warm_spec,
)
from ..lang.ast import Outcome, Program
from ..lang.enumeration import allowed_executions
from ..lang.interpreter import sc_outcomes
from .shapes import (
    SearchBounds,
    count_accesses,
    generate_programs,
    install_shape_tables,
    program_cost_hints,
    program_count,
    shape_tables,
)


@dataclass(frozen=True)
class ScDrfCounterExample:
    """A data-race-free program with a non-sequentially-consistent outcome."""

    program: Program
    outcome: Outcome
    event_count: int
    location_count: int

    def describe(self) -> str:
        return (
            f"SC-DRF violation: {self.program.name} "
            f"({self.event_count} events, {self.location_count} location(s)) "
            f"allows non-SC outcome {self.outcome}"
        )


@dataclass
class SearchReport:
    """Statistics of one bounded search."""

    model: str
    programs_examined: int = 0
    counterexample: Optional[object] = None
    quarantined: Tuple[int, ...] = ()
    """Global indices of poison programs skipped under supervision.

    Empty on every healthy run.  Non-empty means the per-program check
    itself kept failing for these enumeration indices (after retries and
    chunk bisection); their verdicts are unknown and the rest of the sweep
    is unaffected.
    """

    cache_stats: Optional[dict] = None
    """The verdict cache's stats snapshot after the sweep (``None`` uncached).

    Multi-worker sweeps count the parent's view only — workers' hit/miss
    counters live in their own processes.
    """

    analyze_stats: Optional[dict] = None
    """The static analyzer's counter increments over this sweep
    (:class:`repro.analyze.AnalyzeStats`), or ``None`` when ``REPRO_ANALYZE``
    is off.  Parent's view only, like :attr:`cache_stats`: sharded workers
    count hits and misses in their own processes, and cached verdicts never
    reach the analyzer at all.
    """

    symmetry_stats: Optional[dict] = None
    """The symmetry engine's counter increments over this sweep
    (:class:`repro.analyze.SymmetryStats`), or ``None`` when
    ``REPRO_SYMMETRY`` is off.  Parent's view only, like
    :attr:`analyze_stats`.
    """

    @property
    def found(self) -> bool:
        return self.counterexample is not None

    def describe(self) -> str:
        lines = [
            f"sweep [{self.model}]: {self.programs_examined} program(s) "
            + (
                "examined, counterexample found"
                if self.found
                else "examined, no counterexample"
            )
        ]
        if self.quarantined:
            lines.append(
                "quarantined indices: "
                + ", ".join(str(i) for i in self.quarantined)
            )
        for label, stats in (
            ("verdict cache", self.cache_stats),
            ("static analyzer", self.analyze_stats),
            ("symmetry", self.symmetry_stats),
        ):
            if stats is not None:
                pairs = ", ".join(f"{k}={v}" for k, v in sorted(stats.items()))
                lines.append(f"{label}: {pairs}")
        if self.found and hasattr(self.counterexample, "describe"):
            lines.append(self.counterexample.describe())
        return "\n".join(lines)


def _location_count(program: Program) -> int:
    footprints = set()
    for thread in program.threads:
        stack = list(thread.statements)
        while stack:
            stmt = stack.pop()
            access = getattr(stmt, "access", None)
            if access is not None:
                rng = access.byte_range()
                footprints.add((access.block, rng.start, rng.stop))
            for attr in ("then", "otherwise"):
                stack.extend(getattr(stmt, attr, ()))
    return len(footprints)


def _sc_drf_counterexample(
    program: Program, model: JsModel
) -> Optional[ScDrfCounterExample]:
    """The per-program §5.4 check (the independent unit the sweeps shard).

    Data-race freedom and the allowed-outcome set are established in a
    *single* pass over the program's model-allowed executions: the first
    race disqualifies the program immediately, otherwise the (deduplicated)
    outcomes are collected as the executions stream by and only then
    compared against the sequential-interleaving oracle.

    Statically race-free programs under the final (simplified-sw, final
    SC-atomics) models short-circuit to ``None``: every execution is
    race-free and the allowed outcomes equal the SC outcomes (Theorem 6.1
    plus its converse), so no weird outcome can exist.  Under the ORIGINAL
    and ARMV8_FIX models the fast path never answers — Fig. 8's DRF
    counterexample must still be found.
    """
    if analyze.sc_fast_path_applies(program, model):
        return None
    racy = False
    outcomes: List[Outcome] = []
    seen = set()
    for execution, outcome in allowed_executions(program, model):
        if data_races(execution, model):
            racy = True
            break
        key = tuple(sorted(outcome.items()))
        if key not in seen:
            seen.add(key)
            outcomes.append(outcome)
    if racy:
        # The SC-DRF guarantee is vacuous for racy programs.
        return None
    sc = {tuple(sorted(o.items())) for o in sc_outcomes(program)}
    weird = [o for o in outcomes if tuple(sorted(o.items())) not in sc]
    if not weird:
        return None
    return ScDrfCounterExample(
        program=program,
        outcome=weird[0],
        event_count=count_accesses(program),
        location_count=_location_count(program),
    )


def _sc_drf_hit(program: Program, model: JsModel) -> bool:
    return _sc_drf_counterexample(program, model) is not None


def _compilation_hit(
    program: Program, model: JsModel, use_operational: bool
) -> bool:
    return (
        find_compilation_violation(program, model, use_operational=use_operational)
        is not None
    )


# Per-program hit predicates by sweep kind; the kind tag is also part of the
# verdict-cache key.
# lint: allow(mutable-state) — read-only dispatch table, never mutated after
# import; both entries are verdict functions of their arguments alone.
_SWEEP_KINDS = {
    "sc-drf": lambda program, model, _use_operational: _sc_drf_hit(program, model),
    "arm-compilation": _compilation_hit,
}


def _sweep_chunk_worker(
    task,
) -> Tuple[int, Optional[int]]:
    """Scan one contiguous slice of the program enumeration.

    Returns ``(programs examined, global index of the first hit or None)``.
    With a verdict cache, per-program hit/miss verdicts are read and
    recorded; examined counts are unaffected, so warm-cache reports are
    bit-identical to cold ones.
    """
    kind, bounds, model, use_operational, start, stop, cache_spec = task
    check = _SWEEP_KINDS[kind]
    # Serial sweeps pass the live cache object through (so hit/miss
    # statistics land on the caller's object — any object with the cache
    # surface, including a TieredVerdictCache); shard workers get the
    # picklable spec tuple.
    if isinstance(cache_spec, tuple):
        cache = VerdictCache.from_spec(cache_spec)
    else:
        cache = cache_spec
    quotient = symmetry.symmetry_enabled()
    # Orbit quotient: one representative evaluated per isomorphism class,
    # its verdict replayed onto the members.  Reuse is observationally
    # identical to recomputation — the hit predicates are invariant under
    # the relabeling group — and a True verdict returns at the
    # representative, so replayed verdicts are always False and examined
    # counts, first-hit indices and reports stay bit-identical.
    orbit_verdicts: dict = {}
    examined = 0
    for index, program in zip(
        range(start, stop), generate_programs(bounds, start, stop)
    ):
        examined += 1
        canon = symmetry.analyze_symmetry(program) if quotient else None
        if canon is not None and canon.canonical_key in orbit_verdicts:
            symmetry.STATS.members_skipped += 1
            hit = orbit_verdicts[canon.canonical_key]
            if cache is not None:
                # Replay onto the member's own primary key so later
                # symmetry-off runs stay warm too.
                cache.put(
                    cache.key(
                        kind, program_fingerprint(program), model, use_operational
                    ),
                    hit,
                )
            if hit:
                return examined, index
            continue
        if cache is None:
            hit = check(program, model, use_operational)
        else:
            key = cache.key(
                kind, program_fingerprint(program), model, use_operational
            )

            def alias_and_parity(canon=canon):
                # Lazy (only built on a primary miss): the canonical
                # fingerprint hash costs more than the warm hit it
                # would ride on.
                if canon is None:
                    return None, None
                return (
                    cache.key(
                        kind, canon.canonical_fingerprint, model, use_operational
                    ),
                    symmetry.alias_parity(canon),
                )

            hit = bool(
                get_or_compute_aliased(
                    cache,
                    key,
                    alias_and_parity,
                    lambda: check(program, model, use_operational),
                    on_alias_hit=symmetry.count_canonical_hit,
                )
            )
        if canon is not None:
            symmetry.STATS.orbits_seen += 1
            orbit_verdicts[canon.canonical_key] = hit
        if hit:
            return examined, index
    return examined, None


def sweep_slice(
    kind: str,
    bounds: SearchBounds,
    model: JsModel,
    start: int,
    stop: int,
    use_operational: bool = False,
    cache=None,
) -> Tuple[int, Optional[int]]:
    """Scan one ``[start, stop)`` slice of a §5 sweep in this process.

    The verdict-service request adapter: returns ``(programs examined,
    global index of the first hit or None)`` with exactly the cache keys
    and early-exit semantics of the batch sweeps, so slices served one at
    a time compose to the same verdicts :func:`search_sc_drf_violation` /
    :func:`search_compilation_violation` report.
    """
    if kind not in _SWEEP_KINDS:
        raise ValueError(
            f"unknown sweep kind {kind!r} (expected one of "
            f"{sorted(_SWEEP_KINDS)})"
        )
    cache = resolve_cache(cache)
    return _sweep_chunk_worker(
        (kind, bounds, model, use_operational, start, stop, cache)
    )


def sweep_slice_task(task) -> Tuple[int, Optional[int]]:
    """Picklable task-tuple form of :func:`sweep_slice` for dispatch fan-out.

    ``task`` is ``(kind, bounds, model, use_operational, start, stop,
    cache_spec)`` — the exact tuple the batch sweeps dispatch — so the
    verdict service can shard its slices through
    :func:`repro.dispatch.supervised_imap` with the same worker semantics.
    """
    return _sweep_chunk_worker(task)


def materialise_hit(
    kind: str,
    bounds: SearchBounds,
    model: JsModel,
    hit_index: int,
    use_operational: bool = False,
):
    """Recompute the full counter-example at enumeration index ``hit_index``.

    Sweep workers report bare indices (IPC payloads stay tiny); this
    rebuilds the program and re-runs the checker in-process.  Returns
    ``None`` when the checker disowns the hit — the stale-cache false-hit
    case the batch driver also repairs.
    """
    program = next(generate_programs(bounds, hit_index, hit_index + 1))
    if kind == "sc-drf":
        return _sc_drf_counterexample(program, model)
    if kind == "arm-compilation":
        return find_compilation_violation(
            program, model, use_operational=use_operational
        )
    raise ValueError(
        f"unknown sweep kind {kind!r} (expected one of {sorted(_SWEEP_KINDS)})"
    )


def _split_sweep_task(task):
    """Bisect one sweep chunk for poison isolation (None when single-program)."""
    kind, bounds, model, use_operational, start, stop, cache_spec = task
    if stop - start <= 1:
        return None
    mid = (start + stop) // 2
    return (
        (kind, bounds, model, use_operational, start, mid, cache_spec),
        (kind, bounds, model, use_operational, mid, stop, cache_spec),
    )


def _merge_sweep_results(parts):
    """Fold ordered sub-chunk results back into one chunk result.

    Reproduces the serial scan semantics: programs after the first hit are
    not counted as examined, whichever sub-chunk they landed in.
    """
    examined, hit = 0, None
    for part_examined, part_hit in parts:
        examined += part_examined
        if part_hit is not None:
            hit = part_hit
            break
    return examined, hit


def _quarantined_sweep_result(task):
    """The neutral result of a quarantined single-program chunk.

    The poison program counts as examined (the sweep did attempt it) but
    never as a hit; it is reported separately on
    :attr:`SearchReport.quarantined`.
    """
    _kind, _bounds, _model, _use_op, start, stop, _cache_spec = task
    return (stop - start, None)


def _swept_search(
    kind: str,
    bounds: SearchBounds,
    model: JsModel,
    use_operational: bool,
    workers: Optional[int],
    cache,
    materialise,
    chunking: str = "sized",
    checkpoint=None,
    fault_plan=None,
) -> SearchReport:
    """The shared driver of both §5 sweeps.

    Chunks are scanned in generation order and the scan stops at the first
    hit, so the verdict, the counter-example, and ``programs_examined`` are
    identical to the serial search whatever ``workers`` is.  ``materialise``
    recomputes the full counter-example for the hit program in-process (the
    shard workers only report indices, keeping IPC payloads tiny).

    ``chunking`` selects the shard layout: ``"sized"`` (default) balances
    chunks by estimated program cost — the enumeration is sorted by access
    count and extremely tail-heavy, so equal-*count* chunks strand the
    expensive tail in the last worker — while ``"static"`` keeps the
    equal-count split (retained for benchmarking the difference).  Chunk
    boundaries never affect the report.

    Resilience: chunks run under the supervised engine (retries, deadlines,
    worker respawn; see :mod:`repro.dispatch.supervise`), a chunk that
    keeps failing is bisected down to the poison program which lands on
    ``report.quarantined`` instead of killing the sweep, and with a
    checkpoint directory (``checkpoint=`` / ``$REPRO_CHECKPOINT_DIR``)
    completed chunk results are journaled so a killed sweep resumes
    recomputing only unfinished chunks.  The journal is keyed by a
    fingerprint of everything the chunk results depend on — kind, bounds,
    model, flags, the chunk layout itself, and the semantics revision — so
    a changed sweep can never resume from a stale journal.
    """
    workers = resolve_workers(workers)
    cache = resolve_cache(cache)
    report = SearchReport(model=model.name)
    analyze_before = analyze.stats_snapshot() if analyze.analyze_enabled() else None
    symmetry_before = (
        symmetry.symmetry_stats_snapshot() if symmetry.symmetry_enabled() else None
    )
    total = program_count(bounds)
    if cache is None:
        cache_spec = None
    elif workers <= 1:
        cache_spec = cache
    else:
        cache_spec = cache.spec
    if chunking == "static":
        ranges = shard_ranges(total, workers)
    else:
        ranges = sized_shard_ranges(
            total, workers, costs=program_cost_hints(bounds, kind=kind)
        )
    tasks = [
        (kind, bounds, model, use_operational, start, stop, cache_spec)
        for (start, stop) in ranges
    ]
    journal = None
    checkpoint_dir = resolve_checkpoint(checkpoint, cache=cache)
    if checkpoint_dir is not None:
        journal = SweepJournal.open(
            checkpoint_dir,
            f"sweep-{kind}",
            fingerprint("sweep", kind, bounds, model, use_operational, list(ranges)),
            SEMANTICS_REVISION,
            len(tasks),
        )
    recorded = journal.completed() if journal is not None else {}
    live = [(i, task) for i, task in enumerate(tasks) if i not in recorded]
    supervision = SupervisionReport()

    def on_chunk_complete(live_index: int, result) -> None:
        if journal is not None:
            journal.record(live[live_index][0], list(result))

    # The shape tables this sweep scans are already warm in this process
    # (the shard layout above consulted them); ship the snapshot to every
    # worker once at pool start instead of letting each worker process
    # rebuild it on its first chunk.  A segment-store cache likewise pays
    # its index scan once at worker start, not inside the first chunk.
    initializer, initargs = chain_initializers(
        (install_shape_tables, (shape_tables(bounds),)),
        (warm_spec, (cache_spec,)) if isinstance(cache_spec, tuple) else None,
    )
    stream = supervised_imap(
        _sweep_chunk_worker,
        [task for _index, task in live],
        workers=workers,
        initializer=initializer,
        initargs=initargs,
        split=_split_sweep_task,
        merge=_merge_sweep_results,
        quarantine=True,
        quarantine_result=_quarantined_sweep_result,
        on_complete=on_chunk_complete,
        fault_plan=fault_plan,
        report=supervision,
    )
    try:
        for index, task in enumerate(tasks):
            if index in recorded:
                entry = recorded[index]
                examined, hit_index = int(entry[0]), entry[1]
            else:
                examined, hit_index = next(stream)
            report.programs_examined += examined
            chunk_stop = task[5]
            while hit_index is not None:
                program = next(generate_programs(bounds, hit_index, hit_index + 1))
                counterexample = materialise(program)
                if counterexample is not None:
                    report.counterexample = counterexample
                    return report
                # A stale cache entry claimed a hit the checker disowns (e.g. a
                # cache shared across an unbumped local edit): repair the entry,
                # then rescan the *rest of this chunk* — the worker returned at
                # the false hit, so the remainder has not been examined yet.
                if cache is not None:
                    cache.put(
                        cache.key(
                            kind, program_fingerprint(program), model, use_operational
                        ),
                        False,
                    )
                examined, hit_index = _sweep_chunk_worker(
                    (
                        kind,
                        bounds,
                        model,
                        use_operational,
                        hit_index + 1,
                        chunk_stop,
                        cache,
                    )
                )
                report.programs_examined += examined
        return report
    finally:
        stream.close()
        report.quarantined = tuple(
            sorted(q.task[4] for q in supervision.quarantined)
        )
        if cache is not None:
            report.cache_stats = cache.stats()
        if analyze_before is not None:
            report.analyze_stats = analyze.stats_delta(analyze_before)
        if symmetry_before is not None:
            report.symmetry_stats = symmetry.symmetry_stats_delta(symmetry_before)
        # Returning at all (hit, exhausted, or quarantine-degraded) means
        # the sweep is decided; the journal has served its purpose.  An
        # exception (including KeyboardInterrupt/SIGTERM unwinding) keeps
        # it for the resume.
        if journal is not None:
            if sys.exc_info()[0] is None:
                journal.finish()
            else:
                journal.close()


def search_sc_drf_violation(
    bounds: SearchBounds,
    model: JsModel = ORIGINAL_MODEL,
    workers: Optional[int] = None,
    cache=None,
    chunking: str = "sized",
    checkpoint=None,
    fault_plan=None,
) -> SearchReport:
    """Search for an SC-DRF violation within ``bounds`` (§5.4).

    ``workers`` shards the program enumeration over the dispatch pool
    (cost-balanced chunks by default; ``chunking="static"`` restores the
    equal-count split); ``cache`` persists per-program hit/miss verdicts;
    ``checkpoint`` (or ``$REPRO_CHECKPOINT_DIR``) journals completed chunks
    so a killed sweep resumes instead of restarting.  Reports are
    bit-identical to the serial, uncached search; worker crashes, hangs and
    corrupt payloads are absorbed by the supervised engine, and a poison
    program ends up on ``report.quarantined`` rather than killing the run.
    ``fault_plan`` injects deterministic faults (testing only).
    """
    return _swept_search(
        "sc-drf",
        bounds,
        model,
        False,
        workers,
        cache,
        lambda program: _sc_drf_counterexample(program, model),
        chunking=chunking,
        checkpoint=checkpoint,
        fault_plan=fault_plan,
    )


def search_compilation_violation(
    bounds: SearchBounds,
    model: JsModel = ORIGINAL_MODEL,
    use_operational: bool = False,
    workers: Optional[int] = None,
    cache=None,
    chunking: str = "sized",
    checkpoint=None,
    fault_plan=None,
) -> SearchReport:
    """Search for an ARMv8 compilation-scheme violation within ``bounds`` (§5.1).

    A hit is a program with an ARMv8-allowed execution whose translated
    JavaScript execution is invalid for every total order — i.e. a *dead*
    counter-example.  Shardable, cacheable, checkpointable and supervised
    like :func:`search_sc_drf_violation`.
    """
    return _swept_search(
        "arm-compilation",
        bounds,
        model,
        use_operational,
        workers,
        cache,
        lambda program: find_compilation_violation(
            program, model, use_operational=use_operational
        ),
        chunking=chunking,
        checkpoint=checkpoint,
        fault_plan=fault_plan,
    )


def confirm_program_compilation_violation(
    program: Program, model: JsModel = ORIGINAL_MODEL
) -> Optional[CompilationCounterExample]:
    """Check a specific (e.g. hand-found) program for a compilation violation.

    This mirrors §5.1's first use of the Alloy models: confirming that the
    hand-discovered counter-examples are real before searching for smaller
    ones automatically.
    """
    return find_compilation_violation(program, model)
