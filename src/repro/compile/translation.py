"""The translation relation between ARMv8 and JavaScript candidate executions (§5.1).

A counter-example to compilation correctness is an ARMv8-allowed execution
of a compiled program whose corresponding JavaScript execution is invalid.
"Corresponding" is made precise by a *translation relation* which

* maps events according to the compilation scheme (``Racq ↔ RSC``,
  ``Wrel ↔ WSC``, plain accesses ↔ ``Unordered``, an exclusive pair ↔ one
  JavaScript RMW event),
* preserves program structure (``po`` ↔ ``sequenced-before``), and
* preserves the observable behaviour (``reads-byte-from``).

:func:`translate_arm_execution` applies the relation in the direction the
correctness argument needs: from an ARM execution back to the JavaScript
candidate execution it witnesses (without a ``total-order``; that witness
is constructed separately, see :mod:`repro.compile.totorder`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..armv8.axiomatic import ArmExecution
from ..armv8.events import ArmEvent
from ..core.events import Event, INIT, SEQCST, UNORDERED, make_init_event
from ..core.execution import CandidateExecution
from ..core.relations import Relation
from .scheme import CompiledProgram, MemoryLayout

# Typed-array accesses of at most four bytes are tear-free (§6.4).
_TEARFREE_MAX_WIDTH = 4


@dataclass(frozen=True)
class TranslatedExecution:
    """A JavaScript candidate execution obtained from an ARM execution.

    ``js_eid_of_arm`` records the event mapping (both halves of an exclusive
    pair map to the single JavaScript RMW event).
    """

    execution: CandidateExecution
    js_eid_of_arm: Dict[int, int]


def _arm_mode(event: ArmEvent):
    """The JavaScript mode an ARM event translates back to."""
    if event.is_read:
        return SEQCST if event.acquire else UNORDERED
    return SEQCST if event.release else UNORDERED


def translate_arm_execution(
    compiled: CompiledProgram, arm_execution: ArmExecution
) -> TranslatedExecution:
    """Translate an ARM execution of the compiled program back to JavaScript.

    The ARM execution must come from ``compiled.arm`` (single init event,
    exclusive accesses only in ``ldaxr``/``stlxr`` pairs); violations raise
    ``ValueError``.
    """
    layout = compiled.layout
    source = compiled.source

    # JavaScript-side init events: one per SharedArrayBuffer.
    events: List[Event] = []
    next_eid = 0
    init_of_block: Dict[str, int] = {}
    for buffer in source.buffers:
        events.append(make_init_event(buffer.block, buffer.byte_length, eid=next_eid))
        init_of_block[buffer.block] = next_eid
        next_eid += 1

    arm_init = [e for e in arm_execution.events if e.is_init]
    if len(arm_init) != 1:
        raise ValueError("expected exactly one ARM initialising write")
    arm_init_eid = arm_init[0].eid

    # Pair up exclusives into RMW events.
    partner_of: Dict[int, int] = {}
    for (lr, sw) in arm_execution.rmw:
        partner_of[lr] = sw
        partner_of[sw] = lr

    js_eid_of_arm: Dict[int, int] = {}
    merged_store_of: Dict[int, int] = {}
    memory_events = [
        e for e in arm_execution.events if e.is_memory and not e.is_init
    ]
    for event in sorted(memory_events, key=lambda e: e.eid):
        if event.eid in js_eid_of_arm:
            continue
        block, index = layout.block_of(event.addr)
        if event.exclusive and event.eid in partner_of:
            if event.is_write:
                continue  # handled together with its load half
            store = arm_execution.event(partner_of[event.eid])
            js_event = Event(
                eid=next_eid,
                tid=event.tid,
                ord=SEQCST,
                block=block,
                index=index,
                reads=event.data,
                writes=store.data,
                tearfree=len(event.data) <= _TEARFREE_MAX_WIDTH,
            )
            js_eid_of_arm[event.eid] = next_eid
            js_eid_of_arm[store.eid] = next_eid
            merged_store_of[store.eid] = next_eid
        else:
            js_event = Event(
                eid=next_eid,
                tid=event.tid,
                ord=_arm_mode(event),
                block=block,
                index=index,
                reads=event.data if event.is_read else (),
                writes=event.data if event.is_write else (),
                tearfree=event.size <= _TEARFREE_MAX_WIDTH,
            )
            js_eid_of_arm[event.eid] = next_eid
        events.append(js_event)
        next_eid += 1

    # The ARM init event corresponds to whichever JS init event covers the byte.
    def js_writer_for(arm_writer: int, arm_byte: int) -> Tuple[int, int]:
        """Map an ARM (writer, byte) pair to the JS (writer, byte) pair."""
        block, local = layout.block_of(arm_byte)
        if arm_writer == arm_init_eid:
            return init_of_block[block], local
        return js_eid_of_arm[arm_writer], local

    # sequenced-before: program order among translated events (merged RMW
    # halves collapse onto a single JS event, so duplicate pairs disappear).
    sb_pairs: Set[Tuple[int, int]] = set()
    for (a, b) in arm_execution.po:
        if a not in js_eid_of_arm or b not in js_eid_of_arm:
            continue
        ja, jb = js_eid_of_arm[a], js_eid_of_arm[b]
        if ja != jb:
            sb_pairs.add((ja, jb))

    rbf: Set[Tuple[int, int, int]] = set()
    for (k, w, r) in arm_execution.rbf:
        if r not in js_eid_of_arm:
            continue
        reader = js_eid_of_arm[r]
        writer, local = js_writer_for(w, k)
        if writer == reader:
            # A store-exclusive forwarding to its own load half would make a
            # JavaScript RMW read from itself, which well-formedness forbids
            # (the EMME issue); such ARM executions do not translate.
            raise ValueError("RMW reads from its own store half")
        rbf.add((local, writer, reader))

    execution = CandidateExecution.build(
        events=events, sb=sb_pairs, asw=(), rbf=rbf
    )
    # Structural well-formedness holds by construction: sb comes from the
    # (intra-thread, acyclic) ARM po; every rbf triple carries over an ARM
    # assignment that picked exactly one covering writer per byte with
    # matching byte values; and the one malformation the translation could
    # introduce — an RMW reading from its own store half — raised above.
    # Seeding the verdict keeps check_well_formed off this path's per-
    # execution O(|rbf|) cost (the JS enumeration path already does this).
    execution._cache["wf_structure"] = True
    return TranslatedExecution(execution=execution, js_eid_of_arm=js_eid_of_arm)
