"""Constructing the JavaScript ``total-order`` witness from an ARM execution (§5.3).

The compilation-correctness proof must, for every ARMv8-allowed execution,
exhibit a ``total-order`` making the translated JavaScript execution valid.
The paper model-checks (and then mechanises) the construction

    ``tot := some linear extension of  sb ∪ (obs ∩ (L ∪ A)²)``

where ``obs`` is ARM's observed-before relation and ``L``/``A`` are the
release writes / acquire reads — i.e. precisely the events that compile
JavaScript SeqCst accesses.  This module implements that construction on
translated executions, additionally seeding the extension with the
JavaScript-side ``happens-before``-generating edges (``Init`` before every
overlapping access and ``asw``), which the JavaScript model requires of any
valid ``tot`` via Happens-Before Consistency (1).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..armv8.axiomatic import ArmExecution
from ..core.execution import CandidateExecution
from ..core.relations import Relation, some_linear_extension
from .translation import TranslatedExecution


def release_acquire_obs(arm_execution: ArmExecution) -> Relation:
    """``obs ∩ (L ∪ A)²``: observations between release writes and acquire reads."""
    special = frozenset(
        e.eid
        for e in arm_execution.events
        if e.is_memory and (e.is_release or e.is_acquire)
    )
    return arm_execution.obs().restrict(domain=special, codomain=special)


def construct_total_order(
    translated: TranslatedExecution, arm_execution: ArmExecution
) -> Optional[Tuple[int, ...]]:
    """The §5.3 ``tot`` construction; ``None`` if the seed order is cyclic.

    For ARM-valid executions the seed is acyclic (it is contained in ARM's
    ordered-before plus intra-thread order), so a linear extension exists;
    a ``None`` result on an ARM-valid input would itself falsify the
    construction and is reported by the correctness checker.
    """
    execution = translated.execution
    mapping = translated.js_eid_of_arm

    mapped_obs_pairs = []
    for (a, b) in release_acquire_obs(arm_execution):
        if a in mapping and b in mapping and mapping[a] != mapping[b]:
            mapped_obs_pairs.append((mapping[a], mapping[b]))

    seed = execution.sb.union(
        Relation(mapped_obs_pairs),
        execution.asw,
        execution.init_overlap(),
    )
    eids = sorted(execution.eids)
    return some_linear_extension(eids, seed)


def witnessed_execution(
    translated: TranslatedExecution, arm_execution: ArmExecution
) -> Optional[CandidateExecution]:
    """The translated execution equipped with the constructed ``tot`` witness."""
    tot = construct_total_order(translated, arm_execution)
    if tot is None:
        return None
    return translated.execution.with_witness(tot=tot)
