"""The JavaScript → ARMv8 compilation scheme (§5.1, Thm 6.2).

The scheme is the one implemented by V8 and assumed throughout the paper:

===============================  =========================
JavaScript                       AArch64
===============================  =========================
``Atomics.load``                 ``ldar``
``Atomics.store``                ``stlr``
``r = x[k]``                     ``ldr``
``x[k] = v``                     ``str``
``Atomics.exchange`` / ``add``   ``ldaxr`` ; ``stlxr``
``if (r == c) { … }``            compare-and-branch (ctrl)
===============================  =========================

DataView (unaligned) accesses and ``Atomics.wait``/``notify`` are outside
the scope of the mechanised compilation proof (§6.2) and are rejected here
with :class:`CompilationError`.

Multiple SharedArrayBuffers are laid out at disjoint offsets of the single
flat ARM memory; the layout is recorded so executions can be translated
back (see :mod:`repro.compile.translation`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..armv8.program import (
    ArmCtrl,
    ArmInstruction,
    ArmLoad,
    ArmProgram,
    ArmRegister,
    ArmStore,
    ArmThread,
)
from ..lang.ast import (
    AtomicAdd,
    DataViewAccess,
    Exchange,
    IfEq,
    Load,
    Notify,
    Program,
    Register,
    Statement,
    Store,
    TypedAccess,
    Wait,
)


class CompilationError(ValueError):
    """Raised for programs outside the compiled fragment."""


@dataclass(frozen=True)
class MemoryLayout:
    """Placement of each SharedArrayBuffer within the flat ARM memory."""

    offsets: Tuple[Tuple[str, int], ...]
    total_size: int

    def offset_of(self, block: str) -> int:
        for name, offset in self.offsets:
            if name == block:
                return offset
        raise KeyError(f"unknown block {block!r}")

    def block_of(self, address: int) -> Tuple[str, int]:
        """The (block, block-relative byte) containing an absolute ARM address."""
        best = None
        for name, offset in self.offsets:
            if offset <= address and (best is None or offset > best[1]):
                best = (name, offset)
        if best is None:
            raise KeyError(f"address {address} below every block")
        return best[0], address - best[1]


@dataclass(frozen=True)
class CompiledProgram:
    """The result of compiling a JavaScript litmus program to ARMv8."""

    source: Program
    arm: ArmProgram
    layout: MemoryLayout


def _layout(program: Program) -> MemoryLayout:
    offsets = []
    total = 0
    for buffer in program.buffers:
        offsets.append((buffer.block, total))
        total += buffer.byte_length
    return MemoryLayout(offsets=tuple(offsets), total_size=total)


def _compile_access(access, layout: MemoryLayout) -> Tuple[int, int]:
    """The (absolute ARM address, size) of a JS access."""
    if isinstance(access, DataViewAccess):
        raise CompilationError(
            "DataView (possibly unaligned) accesses are outside the compiled "
            "fragment of the mechanised proof (§6.2)"
        )
    if not isinstance(access, TypedAccess):
        raise CompilationError(f"unsupported access {access!r}")
    rng = access.byte_range()
    return layout.offset_of(access.block) + rng.start, access.width


def _compile_value(value):
    if isinstance(value, Register):
        return ArmRegister(value.name)
    return int(value)


def _compile_statements(
    statements: Sequence[Statement], layout: MemoryLayout
) -> List[ArmInstruction]:
    instructions: List[ArmInstruction] = []
    for stmt in statements:
        if isinstance(stmt, Store):
            addr, size = _compile_access(stmt.access, layout)
            instructions.append(
                ArmStore(
                    src=_compile_value(stmt.value),
                    addr=addr,
                    size=size,
                    release=stmt.atomic,
                )
            )
        elif isinstance(stmt, Load):
            addr, size = _compile_access(stmt.access, layout)
            instructions.append(
                ArmLoad(
                    dest=ArmRegister(stmt.dest.name),
                    addr=addr,
                    size=size,
                    acquire=stmt.atomic,
                )
            )
        elif isinstance(stmt, Exchange):
            addr, size = _compile_access(stmt.access, layout)
            instructions.append(
                ArmLoad(
                    dest=ArmRegister(stmt.dest.name),
                    addr=addr,
                    size=size,
                    acquire=True,
                    exclusive=True,
                )
            )
            instructions.append(
                ArmStore(
                    src=_compile_value(stmt.value),
                    addr=addr,
                    size=size,
                    release=True,
                    exclusive=True,
                )
            )
        elif isinstance(stmt, AtomicAdd):
            addr, size = _compile_access(stmt.access, layout)
            instructions.append(
                ArmLoad(
                    dest=ArmRegister(stmt.dest.name),
                    addr=addr,
                    size=size,
                    acquire=True,
                    exclusive=True,
                )
            )
            instructions.append(
                ArmStore(
                    src=ArmRegister(stmt.dest.name),
                    addr=addr,
                    size=size,
                    release=True,
                    exclusive=True,
                    add_immediate=stmt.value,
                )
            )
        elif isinstance(stmt, IfEq):
            if stmt.otherwise:
                raise CompilationError(
                    "else-branches are outside the litmus fragment compiled here"
                )
            body = _compile_statements(stmt.then, layout)
            instructions.append(
                ArmCtrl(
                    register=ArmRegister(stmt.register.name),
                    constant=stmt.constant,
                    body=tuple(body),
                )
            )
        elif isinstance(stmt, (Wait, Notify)):
            raise CompilationError(
                "Atomics.wait/notify are outside the compiled memory-access fragment"
            )
        else:
            raise CompilationError(f"unsupported statement {stmt!r}")
    return instructions


def compile_program(program: Program) -> CompiledProgram:
    """Compile a JavaScript litmus program to ARMv8 under the V8 scheme."""
    layout = _layout(program)
    threads = []
    for thread in program.threads:
        instructions = _compile_statements(thread.statements, layout)
        threads.append(ArmThread(tuple(instructions), name=thread.name))
    arm = ArmProgram(
        name=f"{program.name}-armv8",
        threads=tuple(threads),
        memory_size=layout.total_size,
    )
    return CompiledProgram(source=program, arm=arm, layout=layout)
