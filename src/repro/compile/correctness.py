"""Bounded compilation-scheme correctness checking (§5.3, Thm 6.2).

Compilation correctness says: every behaviour an ARMv8 machine can exhibit
for the compiled program is allowed by the JavaScript memory model for the
source program.  The paper proves this in Coq for the *corrected* model and
shows with Alloy that the *original* model falsifies it (Fig. 6).

:func:`check_program_compilation` performs the per-program bounded check:
it enumerates the ARMv8-allowed executions of the compiled program (with
the axiomatic model by default, or the operational model), translates each
back to a JavaScript candidate execution, constructs the ``tot`` witness of
§5.3, and asks whether the result is valid.  If the constructed witness
fails, an exhaustive search over all total orders decides whether the
construction or the compilation scheme itself is at fault — the latter is a
genuine counter-example (and is what the §5 search reports against the
original model).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

from .. import analyze
from ..armv8.axiomatic import ArmExecution, arm_allowed_execution_classes
from ..armv8.operational import arm_operational_runs
from ..core.execution import CandidateExecution
from ..core.js_model import (
    FINAL_MODEL,
    JsModel,
    exists_valid_total_order,
    is_valid_for_witness,
)
from ..dispatch import (
    MISS,
    SEMANTICS_REVISION,
    SweepJournal,
    VerdictCache,
    fingerprint,
    program_fingerprint,
    resolve_cache,
    resolve_checkpoint,
    resolve_workers,
    supervised_imap,
    warm_spec,
)
from ..lang.ast import Program
from .scheme import CompiledProgram, compile_program
from .totorder import construct_total_order
from .translation import TranslatedExecution, translate_arm_execution

_UNTRANSLATED = object()
"""Memo sentinel: distinguishes 'not translated yet' from a ``ValueError``."""


@dataclass(frozen=True)
class CompilationCounterExample:
    """An ARM-allowed execution whose JavaScript translation is invalid for every ``tot``."""

    program: Program
    arm_execution: ArmExecution
    js_execution: CandidateExecution

    @property
    def event_count(self) -> int:
        """Number of JavaScript access events (the paper's counting excludes Init)."""
        return sum(1 for e in self.js_execution.events if not e.is_init)

    @property
    def byte_location_count(self) -> int:
        """Number of distinct byte footprints accessed (excluding Init)."""
        footprints = {
            (e.block, e.footprint.start, e.footprint.stop)
            for e in self.js_execution.events
            if not e.is_init
        }
        return len(footprints)


@dataclass
class CompilationCheckResult:
    """The outcome of the bounded compilation check for one program."""

    program: str
    model: str
    arm_executions: int = 0
    valid_with_construction: int = 0
    valid_with_search: int = 0
    counterexamples: List[CompilationCounterExample] = field(default_factory=list)
    construction_failures: int = 0
    statically_race_free: Optional[bool] = None
    """The static analyzer's race-freedom verdict for the source program
    (``None`` when ``REPRO_ANALYZE`` is off).  Metadata only: compilation
    correctness compares ARM-allowed behaviours against the JS model, and an
    ARM execution outside the model is a genuine violation even for a
    race-free source program — so this never short-circuits the check.
    """

    @property
    def correct(self) -> bool:
        """True iff no ARM-allowed behaviour falls outside the JS model."""
        return not self.counterexamples

    @property
    def construction_complete(self) -> bool:
        """True iff the §5.3 ``tot`` construction witnessed every valid case."""
        return self.construction_failures == 0 and self.correct

    def summary(self) -> str:
        status = "correct" if self.correct else (
            f"VIOLATED ({len(self.counterexamples)} counter-examples)"
        )
        return (
            f"compilation of {self.program} under {self.model}: {status} "
            f"[{self.arm_executions} ARM executions, "
            f"{self.valid_with_construction} witnessed by the §5.3 construction, "
            f"{self.construction_failures} needing a fallback search]"
        )


def _arm_execution_classes(
    compiled: CompiledProgram, use_operational: bool, group_coherence: bool
) -> Iterator[Tuple[ArmExecution, Iterable[ArmExecution]]]:
    """``(class prototype, allowed variants)`` pairs of the compiled program.

    The axiomatic model enumerates ``(events, rbf)`` classes natively; the
    operational model yields raw runs, so its classes are recovered by
    memo — consecutive runs of one class are not guaranteed there, hence
    each run forms its own singleton batch and the translation is memoised
    by the caller-visible prototype instead.
    """
    if use_operational:
        for run in arm_operational_runs(compiled.arm):
            yield run.execution, (run.execution,)
    else:
        for allowed_class in arm_allowed_execution_classes(
            compiled.arm, group_coherence=group_coherence
        ):
            yield allowed_class.prototype, allowed_class.executions


def check_program_compilation(
    program: Program,
    model: JsModel = FINAL_MODEL,
    use_operational: bool = False,
    group_coherence: bool = True,
    max_counterexamples: int = 3,
) -> CompilationCheckResult:
    """Bounded compilation-correctness check for one JavaScript program."""
    compiled = compile_program(program)
    result = CompilationCheckResult(
        program=program.name,
        model=model.name,
        statically_race_free=analyze.static_race_verdict(program),
    )
    # The translation ignores the coherence witness, so every coherence
    # variant of one ARM (events, rbf) class — often the vast majority of
    # the allowed executions — maps to the *same* JavaScript candidate
    # execution.  The axiomatic enumeration hands over whole classes, so
    # each class is translated exactly once from its prototype (no
    # per-variant memo hashing) and the translated execution's
    # shape-quotient caches (sw/hb/tot-independent verdict) are shared by
    # every variant; only the per-variant ``tot`` construction and its
    # realisation check remain.  The operational path still deduplicates
    # by memo, since its runs arrive unclassed.
    translation_memo: dict = {}
    for prototype, variants in _arm_execution_classes(
        compiled, use_operational, group_coherence
    ):
        if use_operational:
            memo_key = (prototype.events, prototype.rbf)
            translated = translation_memo.get(memo_key, _UNTRANSLATED)
        else:
            translated = _UNTRANSLATED
        if translated is _UNTRANSLATED:
            try:
                translated = translate_arm_execution(compiled, prototype)
            except ValueError:
                # Executions that do not translate (e.g. an RMW reading from
                # its own store half) have no JavaScript counterpart to
                # compare with.
                translated = None
            if use_operational:
                translation_memo[memo_key] = translated
        for arm_execution in variants:
            result.arm_executions += 1
            if translated is None:
                continue
            tot = construct_total_order(translated, arm_execution)
            if tot is not None and is_valid_for_witness(
                translated.execution, tot, model
            ):
                result.valid_with_construction += 1
                continue
            # The constructed witness failed: fall back to the exhaustive
            # search.
            result.construction_failures += 1
            witness = exists_valid_total_order(translated.execution, model)
            if witness is not None:
                result.valid_with_search += 1
                continue
            result.counterexamples.append(
                CompilationCounterExample(
                    program=program,
                    arm_execution=arm_execution,
                    js_execution=translated.execution,
                )
            )
            if len(result.counterexamples) >= max_counterexamples:
                return result
    return result


def _checked_with_cache(
    program: Program,
    model: JsModel,
    use_operational: bool,
    group_coherence: bool,
    cache: Optional[VerdictCache],
) -> CompilationCheckResult:
    """One per-program check, consulting/recording the verdict cache.

    Only *correct* results are cached (as their count summary): violating
    results carry whole counter-example executions, which are cheap to
    recompute for the rare hit and not worth serialising.
    """
    if cache is None:
        return check_program_compilation(
            program,
            model=model,
            use_operational=use_operational,
            group_coherence=group_coherence,
        )
    key = cache.key(
        "arm-corpus",
        program_fingerprint(program),
        model,
        use_operational,
        group_coherence,
    )
    entry = cache.get(key)
    if entry is not MISS and isinstance(entry, dict) and entry.get("correct"):
        return CompilationCheckResult(
            program=program.name,
            model=model.name,
            arm_executions=int(entry["arm_executions"]),
            valid_with_construction=int(entry["valid_with_construction"]),
            valid_with_search=int(entry["valid_with_search"]),
            construction_failures=int(entry["construction_failures"]),
            statically_race_free=analyze.static_race_verdict(program),
        )
    result = check_program_compilation(
        program,
        model=model,
        use_operational=use_operational,
        group_coherence=group_coherence,
    )
    if result.correct:
        cache.put(
            key,
            {
                "correct": True,
                "arm_executions": result.arm_executions,
                "valid_with_construction": result.valid_with_construction,
                "valid_with_search": result.valid_with_search,
                "construction_failures": result.construction_failures,
            },
        )
    return result


def _corpus_worker(task) -> CompilationCheckResult:
    program, model, use_operational, group_coherence, cache_spec = task
    # The serial path hands the live cache object through (statistics land
    # on the caller's object — any object with the cache surface, including
    # a TieredVerdictCache); shard workers get the picklable spec tuple.
    if isinstance(cache_spec, tuple):
        cache = VerdictCache.from_spec(cache_spec)
    else:
        cache = cache_spec
    return _checked_with_cache(
        program, model, use_operational, group_coherence, cache
    )


def _corpus_fingerprint(
    programs: List[Program],
    model: JsModel,
    use_operational: bool,
    group_coherence: bool,
) -> str:
    """A content hash over everything a corpus check's results depend on."""
    return fingerprint(
        "arm-corpus-batch",
        [program_fingerprint(program) for program in programs],
        model,
        use_operational,
        group_coherence,
    )


def corpus_check_task(task) -> CompilationCheckResult:
    """Picklable per-program corpus-check task (the verdict-service adapter).

    ``task`` is ``(program, model, use_operational, group_coherence,
    cache_spec)`` — exactly what :func:`check_corpus_compilation`
    dispatches — so the service can stream per-program results through
    :func:`repro.dispatch.supervised_imap` with identical verdicts.
    """
    return _corpus_worker(task)


def check_corpus_compilation(
    programs: Iterable[Program],
    model: JsModel = FINAL_MODEL,
    use_operational: bool = False,
    group_coherence: bool = True,
    workers: Optional[int] = None,
    cache=None,
    checkpoint=None,
    fault_plan=None,
) -> List[CompilationCheckResult]:
    """Run the bounded check over a corpus of source programs.

    Per-program checks are independent: ``workers=N`` fans them out over
    the supervised dispatch engine (order-preserving, fault-tolerant) and
    ``cache=`` persists the verdicts of correct programs across runs.  With
    a checkpoint directory (``checkpoint=`` / ``$REPRO_CHECKPOINT_DIR``)
    every *correct* per-program result is journaled as it completes, so a
    killed corpus check resumes recomputing only unfinished programs —
    violating results carry whole counter-example executions and are
    recomputed on resume instead of being serialised, mirroring the
    verdict-cache policy.
    """
    programs = list(programs)
    workers = resolve_workers(workers)
    cache = resolve_cache(cache)
    journal = None
    checkpoint_dir = resolve_checkpoint(checkpoint, cache=cache)
    if checkpoint_dir is not None and programs:
        journal = SweepJournal.open(
            checkpoint_dir,
            "arm-corpus",
            _corpus_fingerprint(programs, model, use_operational, group_coherence),
            SEMANTICS_REVISION,
            len(programs),
        )
    recorded = journal.completed() if journal is not None else {}
    results_by_index = {
        index: CompilationCheckResult(
            program=programs[index].name,
            model=model.name,
            arm_executions=int(entry["arm_executions"]),
            valid_with_construction=int(entry["valid_with_construction"]),
            valid_with_search=int(entry["valid_with_search"]),
            construction_failures=int(entry["construction_failures"]),
            statically_race_free=analyze.static_race_verdict(programs[index]),
        )
        for index, entry in recorded.items()
    }
    live = [i for i in range(len(programs)) if i not in recorded]
    if cache is None or workers <= 1:
        cache_spec = cache
    else:
        cache_spec = cache.spec

    def on_program_complete(live_index: int, result: CompilationCheckResult) -> None:
        if journal is not None and result.correct:
            journal.record(
                live[live_index],
                {
                    "correct": True,
                    "arm_executions": result.arm_executions,
                    "valid_with_construction": result.valid_with_construction,
                    "valid_with_search": result.valid_with_search,
                    "construction_failures": result.construction_failures,
                },
            )

    stream = supervised_imap(
        _corpus_worker,
        [
            (programs[i], model, use_operational, group_coherence, cache_spec)
            for i in live
        ],
        workers=workers,
        on_complete=on_program_complete,
        # Segment stores pay their index scan once at worker start, not
        # inside the first program of every worker.
        initializer=warm_spec if isinstance(cache_spec, tuple) else None,
        initargs=(cache_spec,) if isinstance(cache_spec, tuple) else (),
        fault_plan=fault_plan,
    )
    try:
        for index, result in zip(live, stream):
            results_by_index[index] = result
        return [results_by_index[i] for i in range(len(programs))]
    finally:
        stream.close()
        if journal is not None:
            if sys.exc_info()[0] is None:
                journal.finish()
            else:
                journal.close()


def find_compilation_violation(
    program: Program,
    model: JsModel,
    use_operational: bool = False,
    group_coherence: bool = True,
) -> Optional[CompilationCounterExample]:
    """The first compilation counter-example for ``program`` under ``model``, if any."""
    result = check_program_compilation(
        program,
        model=model,
        use_operational=use_operational,
        group_coherence=group_coherence,
        max_counterexamples=1,
    )
    return result.counterexamples[0] if result.counterexamples else None
