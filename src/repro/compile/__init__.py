"""JavaScript → ARMv8 compilation: scheme, execution translation, correctness."""

from .scheme import (
    CompilationError,
    CompiledProgram,
    MemoryLayout,
    compile_program,
)
from .translation import TranslatedExecution, translate_arm_execution
from .totorder import construct_total_order, release_acquire_obs, witnessed_execution
from .correctness import (
    CompilationCheckResult,
    CompilationCounterExample,
    check_corpus_compilation,
    check_program_compilation,
    corpus_check_task,
    find_compilation_violation,
)

__all__ = [
    "CompilationError",
    "CompiledProgram",
    "MemoryLayout",
    "compile_program",
    "TranslatedExecution",
    "translate_arm_execution",
    "construct_total_order",
    "release_acquire_obs",
    "witnessed_execution",
    "CompilationCheckResult",
    "CompilationCounterExample",
    "check_corpus_compilation",
    "check_program_compilation",
    "corpus_check_task",
    "find_compilation_violation",
]
