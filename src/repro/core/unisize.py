"""The uni-size JavaScript model (Fig. 12) and the mixed-size → uni-size reduction.

§6.3 of the paper defines a more standard, non-mixed-size ("uni-size") model
for JavaScript: disjoint byte ranges are treated as distinct abstract
locations, ``reads-byte-from`` collapses to an event-level ``reads-from``,
and the range comparisons of the validity rules become a ``same-location``
predicate.  The Tear-Free Reads rule is trivially true and disappears.

The reduction theorem mechanised in the paper states that for mixed-size
executions with *no partial overlaps* and *no tearing* (``rf⁻¹`` functional)
validity in the mixed-size model coincides with validity in the uni-size
model.  :func:`reduction_agrees` performs this check for one execution and
is exercised over enumerated executions by :mod:`repro.core.theorems`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .events import Event, SEQCST, ranges_equal
from .execution import CandidateExecution
from .js_model import FINAL_MODEL, JsModel, is_valid
from .relations import Relation


def same_location(a: Event, b: Event) -> bool:
    """The uni-size ``same-location`` predicate: identical footprints.

    In the uni-size reading of an execution every access footprint is an
    abstract location, so two events are at the same location exactly when
    their (block, footprint) coincide.
    """
    return a.block == b.block and ranges_equal(a.footprint, b.footprint)


def is_unisize_compatible(execution: CandidateExecution) -> bool:
    """Can the execution be read as a uni-size execution at all?

    Requires that overlapping non-Init events always have identical
    footprints (no partial overlaps).  The Init event is exempt: the
    reduction treats it as a family of per-location initialising writes.
    """
    return not execution.has_partial_overlaps()


# ---------------------------------------------------------------------------
# uni-size derived relations
# ---------------------------------------------------------------------------


def unisize_synchronizes_with(execution: CandidateExecution) -> Relation:
    """Uni-size ``sw``: same-location SeqCst write/read pairs in ``rf``, plus ``asw``."""
    cached = execution._cache.get("unisize_sw")
    if cached is not None:
        return cached
    rf = execution.reads_from()
    pairs = set()
    for (w_eid, r_eid) in rf:
        writer = execution.event(w_eid)
        reader = execution.event(r_eid)
        if writer.ord is SEQCST and reader.ord is SEQCST and same_location(writer, reader):
            pairs.add((w_eid, r_eid))
    sw = Relation(pairs).union(execution.asw)
    execution._cache["unisize_sw"] = sw
    return sw


def unisize_happens_before(execution: CandidateExecution) -> Relation:
    """Uni-size ``hb``: ``(sb ∪ sw ∪ init-overlap)⁺`` with the uni-size ``sw``."""
    cached = execution._cache.get("unisize_hb")
    if cached is not None:
        return cached
    base = execution.sb.union(
        unisize_synchronizes_with(execution), execution.init_overlap()
    )
    hb = base.transitive_closure()
    execution._cache["unisize_hb"] = hb
    return hb


# ---------------------------------------------------------------------------
# uni-size validity (Fig. 12)
# ---------------------------------------------------------------------------


def _unisize_hb_consistency_2_3(
    execution: CandidateExecution, hb: Relation
) -> bool:
    """Fig. 12 Happens-Before Consistency (2) and (3) — tot-independent.

    Shared by :func:`unisize_is_valid` and the incremental witness search.
    """
    rf = execution.reads_from()
    # Happens-Before Consistency (2)
    for (w_eid, r_eid) in rf:
        if (r_eid, w_eid) in hb:
            return False
    # Happens-Before Consistency (3)
    for (w_eid, r_eid) in rf:
        reader = execution.event(r_eid)
        for candidate in execution.events:
            if candidate.eid in (w_eid, r_eid) or not candidate.is_write:
                continue
            if not same_location(candidate, reader):
                continue
            if (w_eid, candidate.eid) in hb and (candidate.eid, r_eid) in hb:
                return False
    return True


def unisize_is_valid(
    execution: CandidateExecution, check_well_formed: bool = True
) -> bool:
    """Validity of an execution under the uni-size model of Fig. 12.

    The SC-atomics side-conditions live in
    :func:`_unisize_forbidden_triples`, shared with the witness search; the
    complete-witness check only adds the "does ``tot`` realise a forbidden
    triple" test.
    """
    from .js_model import _sc_atomics_holds

    if check_well_formed and not execution.is_well_formed(require_tot=True):
        return False
    hb = unisize_happens_before(execution)
    sw = unisize_synchronizes_with(execution)
    tot = execution.total_order()

    # Happens-Before Consistency (1)
    if not tot.contains_relation(hb):
        return False
    if not _unisize_hb_consistency_2_3(execution, hb):
        return False
    # Sequentially Consistent Atomics (final, uni-size reading)
    return _sc_atomics_holds(
        execution, _unisize_forbidden_triples(execution, hb, sw)
    )


def _unisize_forbidden_triples(
    execution: CandidateExecution, hb: Relation, sw: Relation
) -> Dict[int, Tuple[Tuple[int, int], ...]]:
    """Per-reader (writer, intervener) pairs of the uni-size SC rule.

    Mirrors :func:`repro.core.js_model._sc_atomics_forbidden_triples`: the
    Fig. 12 SC side-conditions only consult ``hb``/``sw`` and static event
    attributes, so which triples are forbidden is tot-independent.
    """
    triples: Dict[int, List[Tuple[int, int]]] = {}
    for (w_eid, r_eid) in execution.reads_from():
        if (w_eid, r_eid) not in hb:
            continue
        writer = execution.event(w_eid)
        reader = execution.event(r_eid)
        for candidate in execution.events:
            if candidate.eid in (w_eid, r_eid):
                continue
            if not candidate.is_write or candidate.ord is not SEQCST:
                continue
            first = same_location(candidate, reader) and (w_eid, r_eid) in sw
            second = (
                same_location(writer, candidate)
                and writer.ord is SEQCST
                and (candidate.eid, r_eid) in hb
            )
            third = (
                same_location(candidate, reader)
                and (w_eid, candidate.eid) in hb
                and reader.ord is SEQCST
            )
            if first or second or third:
                triples.setdefault(r_eid, []).append((w_eid, candidate.eid))
    return {r: tuple(pairs) for r, pairs in triples.items()}


def unisize_exists_valid_total_order(
    execution: CandidateExecution,
) -> Optional[Tuple[int, ...]]:
    """Search for a ``tot`` witness under the uni-size model.

    Same incremental scheme as the mixed-size search: the tot-independent
    rules are checked once, and the SC-atomics triples prune the
    backtracking enumeration of the linear extensions of ``hb``.
    """
    from .js_model import WitnessVerdict, _search_witness

    if not execution.is_well_formed(require_tot=False):
        return None
    cached = execution._cache.get("unisize_verdict")
    if cached is None:
        hb = unisize_happens_before(execution)
        sw = unisize_synchronizes_with(execution)
        ok = hb.is_acyclic() and _unisize_hb_consistency_2_3(execution, hb)
        if ok:
            cached = WitnessVerdict(
                ok=True,
                hb=hb,
                triples=_unisize_forbidden_triples(execution, hb, sw),
                # The unisize verdict is cached per execution (and shared
                # through any shape-quotient cache it sits on), so its
                # dead-prefix memo rides along the same way.
                search_dead=set(),
            )
        else:
            cached = WitnessVerdict(ok=False)
        execution._cache["unisize_verdict"] = cached
    if not cached.ok:
        return None
    return _search_witness(execution, cached)


# ---------------------------------------------------------------------------
# the reduction theorem (§6.3 / §6.4)
# ---------------------------------------------------------------------------


def reduction_applicable(execution: CandidateExecution) -> bool:
    """The reduction's premises: no partial overlaps and no tearing."""
    return is_unisize_compatible(execution) and execution.rf_inverse_functional()


def reduction_agrees(
    execution: CandidateExecution, model: JsModel = FINAL_MODEL
) -> bool:
    """Check the reduction theorem on one execution carrying a full witness.

    For executions satisfying :func:`reduction_applicable`, validity under
    the mixed-size (corrected) model and under the uni-size model must
    coincide.  Returns ``True`` when the theorem holds on this instance
    (vacuously ``True`` when the premises fail).
    """
    if not reduction_applicable(execution):
        return True
    mixed = is_valid(execution, model)
    uni = unisize_is_valid(execution)
    return mixed == uni
