"""Finite binary relations and order-theoretic helpers.

The axiomatic memory models in this package (the JavaScript model of
ECMAScript 2019 / the corrected model of Watt et al. [PLDI 2020], the
mixed-size ARMv8 model, IMM and the per-architecture models) are all stated
as constraints over finite binary relations between events.  This module
provides a small relation-algebra toolkit in the style used by ``herd``'s
``cat`` language and by the paper's Alloy/Coq developments:

* union, intersection, difference, composition, inverse,
* (reflexive) transitive closure,
* restriction to domains / ranges,
* acyclicity and irreflexivity checks,
* linear extensions (Szpilrajn-style enumeration with pruning), used to
  search for a witnessing ``total-order`` component of a JavaScript
  candidate execution.

Relations are immutable value objects over arbitrary hashable elements
(in practice: integer event identifiers).
"""

from __future__ import annotations

import itertools
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

Element = Hashable
Pair = Tuple[Element, Element]


class Relation:
    """An immutable finite binary relation (a set of ordered pairs)."""

    __slots__ = ("_pairs",)

    def __init__(self, pairs: Iterable[Pair] = ()):
        self._pairs: FrozenSet[Pair] = frozenset(pairs)

    # -- basic protocol ----------------------------------------------------

    @property
    def pairs(self) -> FrozenSet[Pair]:
        """The underlying set of ordered pairs."""
        return self._pairs

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __bool__(self) -> bool:
        return bool(self._pairs)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._pairs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._pairs == other._pairs

    def __hash__(self) -> int:
        return hash(self._pairs)

    def __repr__(self) -> str:
        pairs = sorted(self._pairs, key=repr)
        return f"Relation({pairs!r})"

    # -- constructors ------------------------------------------------------

    @staticmethod
    def empty() -> "Relation":
        """The empty relation."""
        return _EMPTY

    @staticmethod
    def identity(elements: Iterable[Element]) -> "Relation":
        """The identity relation over ``elements``."""
        return Relation((e, e) for e in elements)

    @staticmethod
    def full(elements: Iterable[Element]) -> "Relation":
        """The complete relation ``elements × elements``."""
        elems = list(elements)
        return Relation((a, b) for a in elems for b in elems)

    @staticmethod
    def from_total_order(ordering: Sequence[Element]) -> "Relation":
        """The strict total order induced by the sequence ``ordering``.

        ``ordering[i]`` is related to ``ordering[j]`` for every ``i < j``.
        """
        pairs = []
        for i, a in enumerate(ordering):
            for b in ordering[i + 1:]:
                pairs.append((a, b))
        return Relation(pairs)

    # -- boolean algebra ---------------------------------------------------

    def union(self, *others: "Relation") -> "Relation":
        """Set union with one or more relations."""
        pairs: Set[Pair] = set(self._pairs)
        for other in others:
            pairs |= other._pairs
        return Relation(pairs)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection with ``other``."""
        return Relation(self._pairs & other._pairs)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference ``self \\ other``."""
        return Relation(self._pairs - other._pairs)

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    # -- relational algebra ------------------------------------------------

    def inverse(self) -> "Relation":
        """The converse relation (``rel⁻¹``)."""
        return Relation((b, a) for (a, b) in self._pairs)

    def compose(self, other: "Relation") -> "Relation":
        """Relational composition ``self ; other``.

        ``(a, c)`` is in the result iff there is some ``b`` with
        ``(a, b) ∈ self`` and ``(b, c) ∈ other``.
        """
        by_source: Dict[Element, List[Element]] = {}
        for (b, c) in other._pairs:
            by_source.setdefault(b, []).append(c)
        pairs = set()
        for (a, b) in self._pairs:
            for c in by_source.get(b, ()):
                pairs.add((a, c))
        return Relation(pairs)

    def transitive_closure(self) -> "Relation":
        """The (strict) transitive closure ``rel⁺``."""
        succ: Dict[Element, Set[Element]] = {}
        for (a, b) in self._pairs:
            succ.setdefault(a, set()).add(b)
        closure: Set[Pair] = set()
        for start in succ:
            seen: Set[Element] = set()
            stack = list(succ.get(start, ()))
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(succ.get(node, ()))
            closure.update((start, node) for node in seen)
        return Relation(closure)

    def reflexive_transitive_closure(
        self, elements: Iterable[Element]
    ) -> "Relation":
        """``rel*`` over the given carrier set."""
        return self.transitive_closure().union(Relation.identity(elements))

    def restrict(
        self,
        domain: Optional[Iterable[Element]] = None,
        codomain: Optional[Iterable[Element]] = None,
    ) -> "Relation":
        """Restrict the relation to pairs whose endpoints lie in the sets."""
        dom = set(domain) if domain is not None else None
        cod = set(codomain) if codomain is not None else None
        pairs = []
        for (a, b) in self._pairs:
            if dom is not None and a not in dom:
                continue
            if cod is not None and b not in cod:
                continue
            pairs.append((a, b))
        return Relation(pairs)

    def filter(self, predicate: Callable[[Element, Element], bool]) -> "Relation":
        """Keep only the pairs satisfying ``predicate``."""
        return Relation((a, b) for (a, b) in self._pairs if predicate(a, b))

    def map(self, mapping: Callable[[Element], Element]) -> "Relation":
        """Apply ``mapping`` to both components of every pair."""
        return Relation((mapping(a), mapping(b)) for (a, b) in self._pairs)

    # -- queries -----------------------------------------------------------

    def domain(self) -> FrozenSet[Element]:
        """The set of left components."""
        return frozenset(a for (a, _b) in self._pairs)

    def codomain(self) -> FrozenSet[Element]:
        """The set of right components."""
        return frozenset(b for (_a, b) in self._pairs)

    def elements(self) -> FrozenSet[Element]:
        """All elements mentioned in the relation."""
        return self.domain() | self.codomain()

    def successors(self, element: Element) -> FrozenSet[Element]:
        """All ``b`` with ``(element, b)`` in the relation."""
        return frozenset(b for (a, b) in self._pairs if a == element)

    def predecessors(self, element: Element) -> FrozenSet[Element]:
        """All ``a`` with ``(a, element)`` in the relation."""
        return frozenset(a for (a, b) in self._pairs if b == element)

    def is_irreflexive(self) -> bool:
        """True iff no element is related to itself."""
        return all(a != b for (a, b) in self._pairs)

    def is_acyclic(self) -> bool:
        """True iff the relation, viewed as a directed graph, has no cycle."""
        succ: Dict[Element, Set[Element]] = {}
        for (a, b) in self._pairs:
            succ.setdefault(a, set()).add(b)
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[Element, int] = {}

        for start in list(succ):
            if colour.get(start, WHITE) != WHITE:
                continue
            stack: List[Tuple[Element, Iterator[Element]]] = [
                (start, iter(succ.get(start, ())))
            ]
            colour[start] = GREY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    state = colour.get(child, WHITE)
                    if state == GREY:
                        return False
                    if state == WHITE:
                        colour[child] = GREY
                        stack.append((child, iter(succ.get(child, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return True

    def is_transitive(self) -> bool:
        """True iff the relation is transitively closed."""
        return self.transitive_closure().pairs <= self._pairs

    def is_strict_total_order_over(self, elements: Iterable[Element]) -> bool:
        """True iff the relation is a strict total order over ``elements``."""
        elems = list(elements)
        if not self.is_irreflexive():
            return False
        if not self.is_transitive():
            return False
        for a, b in itertools.combinations(elems, 2):
            if (a, b) not in self._pairs and (b, a) not in self._pairs:
                return False
        return True

    def is_functional(self) -> bool:
        """True iff every left component is related to at most one element."""
        seen: Dict[Element, Element] = {}
        for (a, b) in self._pairs:
            if a in seen and seen[a] != b:
                return False
            seen[a] = b
        return True

    def contains_relation(self, other: "Relation") -> bool:
        """True iff ``other ⊆ self``."""
        return other._pairs <= self._pairs


_EMPTY = Relation(())


# ---------------------------------------------------------------------------
# order-theoretic helpers
# ---------------------------------------------------------------------------


def topological_sort(
    elements: Sequence[Element], order: Relation
) -> Optional[List[Element]]:
    """Return one linear extension of ``order`` over ``elements``.

    Returns ``None`` if ``order`` (restricted to ``elements``) is cyclic.
    """
    elems = list(elements)
    elem_set = set(elems)
    indegree: Dict[Element, int] = {e: 0 for e in elems}
    succ: Dict[Element, List[Element]] = {e: [] for e in elems}
    for (a, b) in order:
        if a in elem_set and b in elem_set and a != b:
            succ[a].append(b)
            indegree[b] += 1
    ready = [e for e in elems if indegree[e] == 0]
    result: List[Element] = []
    while ready:
        node = ready.pop()
        result.append(node)
        for child in succ[node]:
            indegree[child] -= 1
            if indegree[child] == 0:
                ready.append(child)
    if len(result) != len(elems):
        return None
    return result


def linear_extensions(
    elements: Sequence[Element], order: Relation
) -> Iterator[Tuple[Element, ...]]:
    """Enumerate every linear extension of ``order`` over ``elements``.

    A linear extension is a total ordering of ``elements`` compatible with
    the (acyclic) partial order ``order``.  The enumeration is a standard
    backtracking search; candidate executions in this package are small
    (litmus-test sized) so exhaustive enumeration is feasible, as in the
    paper's Alloy bounded search.
    """
    elems = list(elements)
    elem_set = set(elems)
    preds: Dict[Element, Set[Element]] = {e: set() for e in elems}
    for (a, b) in order:
        if a in elem_set and b in elem_set and a != b:
            preds[b].add(a)

    def backtrack(placed: List[Element], remaining: Set[Element]):
        if not remaining:
            yield tuple(placed)
            return
        placed_set = set(placed)
        # Deterministic iteration order keeps the search reproducible.
        for candidate in sorted(remaining, key=repr):
            if preds[candidate] <= placed_set:
                placed.append(candidate)
                remaining.remove(candidate)
                yield from backtrack(placed, remaining)
                remaining.add(candidate)
                placed.pop()

    yield from backtrack([], set(elems))


def some_linear_extension(
    elements: Sequence[Element], order: Relation
) -> Optional[Tuple[Element, ...]]:
    """Return an arbitrary linear extension, or ``None`` if ``order`` is cyclic."""
    result = topological_sort(elements, order)
    if result is None:
        return None
    return tuple(result)


def strict_total_orders(elements: Sequence[Element]) -> Iterator[Tuple[Element, ...]]:
    """Enumerate every strict total order (as an ordered tuple) over ``elements``."""
    yield from itertools.permutations(elements)
