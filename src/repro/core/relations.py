"""Finite binary relations and order-theoretic helpers.

The axiomatic memory models in this package (the JavaScript model of
ECMAScript 2019 / the corrected model of Watt et al. [PLDI 2020], the
mixed-size ARMv8 model, IMM and the per-architecture models) are all stated
as constraints over finite binary relations between events.  This module
provides a small relation-algebra toolkit in the style used by ``herd``'s
``cat`` language and by the paper's Alloy/Coq developments:

* union, intersection, difference, composition, inverse,
* (reflexive) transitive closure,
* restriction to domains / ranges,
* acyclicity and irreflexivity checks,
* linear extensions (Szpilrajn-style enumeration with pruning), used to
  search for a witnessing ``total-order`` component of a JavaScript
  candidate execution.

Relations are immutable value objects over arbitrary hashable elements
(in practice: integer event identifiers).

Representation.  Each relation is backed by a dense *bitset kernel*: the
elements appearing in the relation are interned into a small universe, and
the adjacency of each element is a Python-int bitmask over that universe.
Graph-shaped operations (composition, transitive closure, acyclicity,
transitivity) run bit-parallel on the masks, and the per-element
``successors``/``predecessors``/``domain``/``codomain`` queries are served
from the kernel's cached indexes in O(1) after the first call.  The
historical frozenset-of-pairs view (:attr:`Relation.pairs`) is kept as a
lazily materialised view, so the full pair-level API keeps working.
"""

from __future__ import annotations

import itertools
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

Element = Hashable
Pair = Tuple[Element, Element]

try:  # Python >= 3.10
    _popcount = int.bit_count  # type: ignore[attr-defined]
except AttributeError:  # pragma: no cover - older interpreters
    def _popcount(x: int) -> int:
        return bin(x).count("1")


def _iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class _BitKernel:
    """Dense bitmask adjacency over an interned element universe.

    ``elems[i]`` is the element at bit position ``i``; ``rows[i]`` is the
    bitmask of successors of ``elems[i]``.  The universe covers exactly the
    elements mentioned by the relation (domain ∪ codomain).
    """

    __slots__ = (
        "elems",
        "index",
        "rows",
        "_cols",
        "_succ_sets",
        "_pred_sets",
        "_dom",
        "_cod",
        "_npairs",
        "_acyclic",
    )

    def __init__(self, elems: Tuple[Element, ...], rows: List[int]):
        self.elems = elems
        self.index: Dict[Element, int] = {e: i for i, e in enumerate(elems)}
        self.rows = rows
        self._cols: Optional[List[int]] = None
        self._succ_sets: Dict[Element, FrozenSet[Element]] = {}
        self._pred_sets: Dict[Element, FrozenSet[Element]] = {}
        self._dom: Optional[FrozenSet[Element]] = None
        self._cod: Optional[FrozenSet[Element]] = None
        self._npairs: Optional[int] = None
        self._acyclic: Optional[bool] = None

    @classmethod
    def from_pairs(cls, pairs: Iterable[Pair]) -> "_BitKernel":
        pair_list = list(pairs)
        universe: Set[Element] = set()
        for (a, b) in pair_list:
            universe.add(a)
            universe.add(b)
        elems = tuple(sorted(universe, key=repr))
        kernel = cls(elems, [0] * len(elems))
        index = kernel.index
        rows = kernel.rows
        for (a, b) in pair_list:
            rows[index[a]] |= 1 << index[b]
        return kernel

    # -- derived masks -----------------------------------------------------

    @property
    def cols(self) -> List[int]:
        """Predecessor masks (the transpose of ``rows``), computed lazily."""
        if self._cols is None:
            n = len(self.elems)
            cols = [0] * n
            for i, row in enumerate(self.rows):
                bit_i = 1 << i
                for j in _iter_bits(row):
                    cols[j] |= bit_i
            self._cols = cols
        return self._cols

    def npairs(self) -> int:
        if self._npairs is None:
            self._npairs = sum(_popcount(row) for row in self.rows)
        return self._npairs

    def mask_to_set(self, mask: int) -> FrozenSet[Element]:
        elems = self.elems
        return frozenset(elems[i] for i in _iter_bits(mask))

    # -- queries -----------------------------------------------------------

    def contains(self, a: Element, b: Element) -> bool:
        i = self.index.get(a)
        j = self.index.get(b)
        if i is None or j is None:
            return False
        return bool(self.rows[i] >> j & 1)

    def successors(self, element: Element) -> FrozenSet[Element]:
        cached = self._succ_sets.get(element)
        if cached is None:
            i = self.index.get(element)
            mask = self.rows[i] if i is not None else 0
            cached = self.mask_to_set(mask)
            self._succ_sets[element] = cached
        return cached

    def predecessors(self, element: Element) -> FrozenSet[Element]:
        cached = self._pred_sets.get(element)
        if cached is None:
            i = self.index.get(element)
            mask = self.cols[i] if i is not None else 0
            cached = self.mask_to_set(mask)
            self._pred_sets[element] = cached
        return cached

    def domain(self) -> FrozenSet[Element]:
        if self._dom is None:
            self._dom = frozenset(
                self.elems[i] for i, row in enumerate(self.rows) if row
            )
        return self._dom

    def codomain(self) -> FrozenSet[Element]:
        if self._cod is None:
            union = 0
            for row in self.rows:
                union |= row
            self._cod = self.mask_to_set(union)
        return self._cod

    # -- bit-parallel algorithms -------------------------------------------

    def closure_rows(self) -> List[int]:
        """Rows of the strict transitive closure (bitset Floyd–Warshall)."""
        rows = list(self.rows)
        for k in range(len(rows)):
            row_k = rows[k]
            if not row_k:
                continue
            bit_k = 1 << k
            for i, row_i in enumerate(rows):
                if row_i & bit_k:
                    rows[i] = row_i | row_k
        return rows

    def is_acyclic(self) -> bool:
        """Kahn's algorithm over the bitmask adjacency (verdict memoised)."""
        if self._acyclic is None:
            self._acyclic = self._compute_acyclic()
        return self._acyclic

    def _compute_acyclic(self) -> bool:
        n = len(self.elems)
        if n == 0:
            return True
        rows = self.rows
        indegree = [0] * n
        for row in rows:
            for j in _iter_bits(row):
                indegree[j] += 1
        # A self-loop is a cycle regardless of degrees.
        for i, row in enumerate(rows):
            if row >> i & 1:
                return False
        ready = [i for i in range(n) if indegree[i] == 0]
        removed = 0
        while ready:
            node = ready.pop()
            removed += 1
            for j in _iter_bits(rows[node]):
                indegree[j] -= 1
                if indegree[j] == 0:
                    ready.append(j)
        return removed == n

    def is_transitive(self) -> bool:
        return self.closure_rows() == self.rows


class Relation:
    """An immutable finite binary relation (a set of ordered pairs)."""

    __slots__ = ("_pairs", "_kernel", "_hash")

    def __init__(self, pairs: Iterable[Pair] = ()):
        self._pairs: Optional[FrozenSet[Pair]] = frozenset(pairs)
        self._kernel: Optional[_BitKernel] = None
        self._hash: Optional[int] = None

    @classmethod
    def _from_kernel(cls, kernel: _BitKernel) -> "Relation":
        """Wrap a kernel without materialising the pair view."""
        self = object.__new__(cls)
        self._pairs = None
        self._kernel = kernel
        self._hash = None
        return self

    def _k(self) -> _BitKernel:
        """This relation's bitset kernel, built on first use."""
        if self._kernel is None:
            assert self._pairs is not None
            self._kernel = _BitKernel.from_pairs(self._pairs)
        return self._kernel

    # -- basic protocol ----------------------------------------------------

    @property
    def pairs(self) -> FrozenSet[Pair]:
        """The underlying set of ordered pairs (materialised lazily)."""
        if self._pairs is None:
            kernel = self._kernel
            assert kernel is not None
            elems = kernel.elems
            self._pairs = frozenset(
                (elems[i], elems[j])
                for i, row in enumerate(kernel.rows)
                for j in _iter_bits(row)
            )
        return self._pairs

    def __iter__(self) -> Iterator[Pair]:
        return iter(self.pairs)

    def __len__(self) -> int:
        if self._pairs is not None:
            return len(self._pairs)
        return self._k().npairs()

    def __bool__(self) -> bool:
        if self._pairs is not None:
            return bool(self._pairs)
        return any(self._k().rows)

    def __contains__(self, pair: Pair) -> bool:
        if self._pairs is not None:
            return pair in self._pairs
        return self._k().contains(pair[0], pair[1])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.pairs == other.pairs

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self.pairs)
        return self._hash

    def __repr__(self) -> str:
        pairs = sorted(self.pairs, key=repr)
        return f"Relation({pairs!r})"

    # -- constructors ------------------------------------------------------

    @staticmethod
    def empty() -> "Relation":
        """The empty relation."""
        return _EMPTY

    @staticmethod
    def identity(elements: Iterable[Element]) -> "Relation":
        """The identity relation over ``elements``."""
        return Relation((e, e) for e in elements)

    @staticmethod
    def full(elements: Iterable[Element]) -> "Relation":
        """The complete relation ``elements × elements``."""
        elems = list(elements)
        return Relation((a, b) for a in elems for b in elems)

    @staticmethod
    def from_total_order(ordering: Sequence[Element]) -> "Relation":
        """The strict total order induced by the sequence ``ordering``.

        ``ordering[i]`` is related to ``ordering[j]`` for every ``i < j``.
        The relation is built directly in kernel form (each element's
        successor mask is "everything later in the sequence"), so the O(n²)
        pair set is only materialised if a caller asks for it.
        """
        elems = tuple(sorted(set(ordering), key=repr))
        if len(elems) != len(ordering):
            # Duplicate elements: fall back to the explicit pair view.
            pairs = []
            for i, a in enumerate(ordering):
                for b in ordering[i + 1:]:
                    pairs.append((a, b))
            return Relation(pairs)
        kernel = _BitKernel(elems, [0] * len(elems))
        index = kernel.index
        later = 0
        for element in reversed(ordering):
            i = index[element]
            kernel.rows[i] = later
            later |= 1 << i
        return Relation._from_kernel(kernel)

    # -- boolean algebra ---------------------------------------------------
    #
    # The set operations run in kernel space (remap into a shared universe,
    # then OR/AND/AND-NOT the adjacency rows, as ``compose`` already does),
    # so pipelines like ``hb = (sb ∪ sw ∪ init-overlap)⁺`` stay in bitmask
    # form end-to-end: no operand's pair view is materialised and the result
    # feeds the bit-parallel closure directly.

    def union(self, *others: "Relation") -> "Relation":
        """Set union with one or more relations (kernel-space)."""
        operands = [rel for rel in (self, *others) if rel]
        if not operands:
            return _EMPTY
        if len(operands) == 1:
            return operands[0]
        kernels = [rel._k() for rel in operands]
        base = kernels[0].elems
        if all(kernel.elems == base for kernel in kernels[1:]):
            rows = list(kernels[0].rows)
            for kernel in kernels[1:]:
                rows = [a | b for a, b in zip(rows, kernel.rows)]
            return Relation._from_kernel(_BitKernel(base, rows))
        merged = tuple(
            sorted({e for kernel in kernels for e in kernel.elems}, key=repr)
        )
        index = {e: i for i, e in enumerate(merged)}
        rows = [0] * len(merged)
        for kernel in kernels:
            elems = kernel.elems
            for i, row in enumerate(kernel.rows):
                if not row:
                    continue
                mask = 0
                for j in _iter_bits(row):
                    mask |= 1 << index[elems[j]]
                rows[index[elems[i]]] |= mask
        return Relation._from_kernel(_BitKernel(merged, rows))

    def _remapped_rows_of(self, other: "Relation") -> List[int]:
        """``other``'s rows embedded into this relation's universe.

        Elements of ``other`` outside this universe are dropped — correct
        for intersection and difference, where such pairs cannot affect the
        result.
        """
        target = self._k()
        source = other._k()
        if source.elems == target.elems:
            return source.rows
        index = target.index
        rows = [0] * len(target.elems)
        elems = source.elems
        for i, row in enumerate(source.rows):
            ti = index.get(elems[i])
            if ti is None or not row:
                continue
            mask = 0
            for j in _iter_bits(row):
                tj = index.get(elems[j])
                if tj is not None:
                    mask |= 1 << tj
            rows[ti] = mask
        return rows

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection with ``other`` (kernel-space)."""
        if self._pairs is not None and other._pairs is not None:
            # Both pair views already exist: the frozenset op is cheapest.
            return Relation(self._pairs & other._pairs)
        kernel = self._k()
        rows = [a & b for a, b in zip(kernel.rows, self._remapped_rows_of(other))]
        return Relation._from_kernel(_BitKernel(kernel.elems, rows))

    def difference(self, other: "Relation") -> "Relation":
        """Set difference ``self \\ other`` (kernel-space)."""
        if self._pairs is not None and other._pairs is not None:
            return Relation(self._pairs - other._pairs)
        kernel = self._k()
        rows = [a & ~b for a, b in zip(kernel.rows, self._remapped_rows_of(other))]
        return Relation._from_kernel(_BitKernel(kernel.elems, rows))

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    # -- relational algebra ------------------------------------------------

    def inverse(self) -> "Relation":
        """The converse relation (``rel⁻¹``)."""
        kernel = self._k()
        return Relation._from_kernel(_BitKernel(kernel.elems, list(kernel.cols)))

    def compose(self, other: "Relation") -> "Relation":
        """Relational composition ``self ; other``.

        ``(a, c)`` is in the result iff there is some ``b`` with
        ``(a, b) ∈ self`` and ``(b, c) ∈ other``.
        """
        left = self._k()
        right = other._k()
        if not left.rows or not right.rows:
            return _EMPTY
        if left.elems == right.elems:
            elems = left.elems
            left_rows = left.rows
            right_rows = right.rows
        else:
            # Re-embed both operands into the merged universe.
            elems = tuple(sorted(set(left.elems) | set(right.elems), key=repr))
            index = {e: i for i, e in enumerate(elems)}

            def remap(kernel: _BitKernel) -> List[int]:
                rows = [0] * len(elems)
                for i, e in enumerate(kernel.elems):
                    mask = 0
                    for j in _iter_bits(kernel.rows[i]):
                        mask |= 1 << index[kernel.elems[j]]
                    rows[index[e]] = mask
                return rows

            left_rows = remap(left)
            right_rows = remap(right)
        result_rows = [0] * len(elems)
        for i, row in enumerate(left_rows):
            acc = 0
            for b in _iter_bits(row):
                acc |= right_rows[b]
            result_rows[i] = acc
        return Relation._from_kernel(_BitKernel(elems, result_rows))

    def transitive_closure(self) -> "Relation":
        """The (strict) transitive closure ``rel⁺`` (bit-parallel)."""
        kernel = self._k()
        return Relation._from_kernel(_BitKernel(kernel.elems, kernel.closure_rows()))

    def reflexive_transitive_closure(
        self, elements: Iterable[Element]
    ) -> "Relation":
        """``rel*`` over the given carrier set."""
        return self.transitive_closure().union(Relation.identity(elements))

    def restrict(
        self,
        domain: Optional[Iterable[Element]] = None,
        codomain: Optional[Iterable[Element]] = None,
    ) -> "Relation":
        """Restrict the relation to pairs whose endpoints lie in the sets."""
        dom = set(domain) if domain is not None else None
        cod = set(codomain) if codomain is not None else None
        pairs = []
        for (a, b) in self.pairs:
            if dom is not None and a not in dom:
                continue
            if cod is not None and b not in cod:
                continue
            pairs.append((a, b))
        return Relation(pairs)

    def filter(self, predicate: Callable[[Element, Element], bool]) -> "Relation":
        """Keep only the pairs satisfying ``predicate``."""
        return Relation((a, b) for (a, b) in self.pairs if predicate(a, b))

    def map(self, mapping: Callable[[Element], Element]) -> "Relation":
        """Apply ``mapping`` to both components of every pair."""
        return Relation((mapping(a), mapping(b)) for (a, b) in self.pairs)

    # -- queries -----------------------------------------------------------

    def domain(self) -> FrozenSet[Element]:
        """The set of left components (cached in the kernel)."""
        return self._k().domain()

    def codomain(self) -> FrozenSet[Element]:
        """The set of right components (cached in the kernel)."""
        return self._k().codomain()

    def elements(self) -> FrozenSet[Element]:
        """All elements mentioned in the relation (domain ∪ codomain).

        Kernel-derived relations (closures, compositions) may intern a
        larger universe than their pairs mention; only endpoints of actual
        pairs are reported.
        """
        kernel = self._k()
        return kernel.domain() | kernel.codomain()

    def successors(self, element: Element) -> FrozenSet[Element]:
        """All ``b`` with ``(element, b)`` in the relation (O(1) amortised)."""
        return self._k().successors(element)

    def predecessors(self, element: Element) -> FrozenSet[Element]:
        """All ``a`` with ``(a, element)`` in the relation (O(1) amortised)."""
        return self._k().predecessors(element)

    def is_irreflexive(self) -> bool:
        """True iff no element is related to itself."""
        kernel = self._k()
        return all(not (row >> i & 1) for i, row in enumerate(kernel.rows))

    def is_acyclic(self) -> bool:
        """True iff the relation, viewed as a directed graph, has no cycle."""
        return self._k().is_acyclic()

    def is_transitive(self) -> bool:
        """True iff the relation is transitively closed."""
        return self._k().is_transitive()

    def is_strict_total_order_over(self, elements: Iterable[Element]) -> bool:
        """True iff the relation is a strict total order over ``elements``."""
        elems = list(elements)
        if not self.is_irreflexive():
            return False
        if not self.is_transitive():
            return False
        for a, b in itertools.combinations(elems, 2):
            if (a, b) not in self and (b, a) not in self:
                return False
        return True

    def is_functional(self) -> bool:
        """True iff every left component is related to at most one element."""
        return all(_popcount(row) <= 1 for row in self._k().rows)

    def contains_relation(self, other: "Relation") -> bool:
        """True iff ``other ⊆ self``."""
        if self._pairs is not None and other._pairs is not None:
            return other._pairs <= self._pairs
        return all(pair in self for pair in other.pairs)


_EMPTY = Relation(())


# ---------------------------------------------------------------------------
# order-theoretic helpers
# ---------------------------------------------------------------------------


def acyclic_pairs(pairs: Iterable[Pair]) -> bool:
    """Acyclicity of a plain edge list, without building a :class:`Relation`.

    Hot validity checks (e.g. the per-byte ARMv8 ``internal`` axiom) test
    one-shot unions of small relations for cycles; this helper runs the
    three-colour DFS directly over the edges so no interning / kernel
    construction is paid for a single query.
    """
    succ: Dict[Element, List[Element]] = {}
    for (a, b) in pairs:
        if a == b:
            return False
        succ.setdefault(a, []).append(b)
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[Element, int] = {}
    for start in succ:
        if colour.get(start, WHITE) != WHITE:
            continue
        stack: List[Tuple[Element, Iterator[Element]]] = [
            (start, iter(succ.get(start, ())))
        ]
        colour[start] = GREY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                state = colour.get(child, WHITE)
                if state == GREY:
                    return False
                if state == WHITE:
                    colour[child] = GREY
                    stack.append((child, iter(succ.get(child, ()))))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return True


def topological_sort(
    elements: Sequence[Element], order: Relation
) -> Optional[List[Element]]:
    """Return one linear extension of ``order`` over ``elements``.

    Returns ``None`` if ``order`` (restricted to ``elements``) is cyclic.
    """
    elems = list(elements)
    elem_set = set(elems)
    indegree: Dict[Element, int] = {e: 0 for e in elems}
    succ: Dict[Element, List[Element]] = {e: [] for e in elems}
    for (a, b) in order:
        if a in elem_set and b in elem_set and a != b:
            succ[a].append(b)
            indegree[b] += 1
    ready = [e for e in elems if indegree[e] == 0]
    result: List[Element] = []
    while ready:
        node = ready.pop()
        result.append(node)
        for child in succ[node]:
            indegree[child] -= 1
            if indegree[child] == 0:
                ready.append(child)
    if len(result) != len(elems):
        return None
    return result


def linear_extensions(
    elements: Sequence[Element], order: Relation
) -> Iterator[Tuple[Element, ...]]:
    """Enumerate every linear extension of ``order`` over ``elements``.

    A linear extension is a total ordering of ``elements`` compatible with
    the (acyclic) partial order ``order``.  The enumeration is a standard
    backtracking search; candidate executions in this package are small
    (litmus-test sized) so exhaustive enumeration is feasible, as in the
    paper's Alloy bounded search.
    """
    elems = list(elements)
    elem_set = set(elems)
    preds: Dict[Element, Set[Element]] = {e: set() for e in elems}
    for (a, b) in order:
        if a in elem_set and b in elem_set and a != b:
            preds[b].add(a)

    def backtrack(placed: List[Element], remaining: Set[Element]):
        if not remaining:
            yield tuple(placed)
            return
        placed_set = set(placed)
        # Deterministic iteration order keeps the search reproducible.
        for candidate in sorted(remaining, key=repr):
            if preds[candidate] <= placed_set:
                placed.append(candidate)
                remaining.remove(candidate)
                yield from backtrack(placed, remaining)
                remaining.add(candidate)
                placed.pop()

    yield from backtrack([], set(elems))


def some_linear_extension(
    elements: Sequence[Element], order: Relation
) -> Optional[Tuple[Element, ...]]:
    """Return an arbitrary linear extension, or ``None`` if ``order`` is cyclic."""
    result = topological_sort(elements, order)
    if result is None:
        return None
    return tuple(result)


def strict_total_orders(elements: Sequence[Element]) -> Iterator[Tuple[Element, ...]]:
    """Enumerate every strict total order (as an ordered tuple) over ``elements``.

    This is the degenerate case of :func:`linear_extensions` with no
    ordering constraints; callers that know a partial order should pass it
    to :func:`linear_extensions` directly so the backtracker can prune
    instead of enumerating all ``n!`` permutations.
    """
    yield from linear_extensions(elements, _EMPTY)
