"""Bounded checks of the paper's mechanised theorems.

The paper proves Theorems 6.1–6.3 in Coq.  We cannot re-run a proof
assistant here, so — exactly as the paper itself does in §5.3 before the
Coq proof — we *model-check the theorem statements up to a bound*: the
functions in this module take a stream of candidate executions (produced by
the litmus-program enumerator of :mod:`repro.lang.enumeration` or by the
shape generator of :mod:`repro.search.shapes`) and verify the theorem on
every instance, reporting any counter-example found.

* :func:`check_internal_sc_drf`   — Theorem 6.1: every valid, race-free
  execution of the revised model is sequentially consistent.
* :func:`check_unisize_reduction` — §6.3: validity of mixed-size executions
  with no partial overlaps and no tearing coincides with uni-size validity.

Compilation-scheme correctness (Theorems 6.2 and 6.3) lives in
:mod:`repro.compile.correctness` and :mod:`repro.imm.compilation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from .data_race import is_race_free_execution
from .execution import CandidateExecution
from .js_model import FINAL_MODEL, JsModel, is_valid
from .sc import is_sequentially_consistent
from .unisize import reduction_agrees, reduction_applicable


@dataclass
class TheoremCheckReport:
    """The result of a bounded theorem check.

    ``checked``       — number of executions inspected,
    ``relevant``      — number satisfying the theorem's premises,
    ``counterexamples`` — executions violating the conclusion.
    """

    theorem: str
    checked: int = 0
    relevant: int = 0
    counterexamples: List[CandidateExecution] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        """True iff no counter-example was found within the bound."""
        return not self.counterexamples

    def summary(self) -> str:
        """A one-line human-readable summary."""
        status = "holds" if self.holds else (
            f"FAILS ({len(self.counterexamples)} counter-examples)"
        )
        return (
            f"{self.theorem}: {status} "
            f"[checked {self.checked} executions, {self.relevant} relevant]"
        )


def check_internal_sc_drf(
    executions: Iterable[CandidateExecution],
    model: JsModel = FINAL_MODEL,
    max_counterexamples: int = 5,
) -> TheoremCheckReport:
    """Bounded check of Theorem 6.1 (``internal_sc_drf``).

    Every execution supplied that is (a) well formed, (b) valid under
    ``model`` and (c) free of data races must be sequentially consistent.
    The *model-internal* qualifier of §3.2 is reflected in premise (c)
    applying to the execution itself, not only to SC executions of its
    program.
    """
    report = TheoremCheckReport(theorem=f"internal SC-DRF under {model.name}")
    for execution in executions:
        report.checked += 1
        if not execution.is_well_formed(require_tot=True):
            continue
        if not is_valid(execution, model):
            continue
        if not is_race_free_execution(execution, model):
            continue
        report.relevant += 1
        if not is_sequentially_consistent(execution):
            report.counterexamples.append(execution)
            if len(report.counterexamples) >= max_counterexamples:
                break
    return report


def check_unisize_reduction(
    executions: Iterable[CandidateExecution],
    model: JsModel = FINAL_MODEL,
    max_counterexamples: int = 5,
) -> TheoremCheckReport:
    """Bounded check of the mixed-size → uni-size reduction (§6.3).

    For every execution with no partial overlaps and functional ``rf⁻¹``,
    validity under the mixed-size corrected model must coincide with
    validity under the uni-size model of Fig. 12.
    """
    report = TheoremCheckReport(theorem="mixed-size/uni-size reduction")
    for execution in executions:
        report.checked += 1
        if not execution.is_well_formed(require_tot=True):
            continue
        if not reduction_applicable(execution):
            continue
        report.relevant += 1
        if not reduction_agrees(execution, model):
            report.counterexamples.append(execution)
            if len(report.counterexamples) >= max_counterexamples:
                break
    return report
