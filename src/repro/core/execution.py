"""JavaScript candidate executions and their derived relations.

This module implements Fig. 3 of Watt et al. (PLDI 2020): the
``candidate_execution`` record and the derived relations ``reads-from``
(``rf``), ``synchronizes-with`` (``sw``) and ``happens-before`` (``hb``),
including both the *original* (ES2019) definition of ``sw`` — with its
special case for ``Init`` events — and the *simplified* definition adopted
in the corrected model.

A candidate execution contains

* ``events``                         — all events of the execution,
* ``sequenced_before`` (``sb``)      — intra-thread control-flow order,
* ``additional_synchronizes_with``   — ``asw``: thread creation / join and,
                                       after §7, wait/notify critical-section
                                       ordering,
* ``reads_byte_from`` (``rbf``)      — the byte-wise justification of reads,
* ``total_order`` (``tot``)          — a strict total order over all events.

``rbf`` and ``tot`` are the *execution witness*: they are existentially
quantified by the model, while the first three components are fixed by the
thread-local semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .events import Event, EventSet, AccessMode, INIT, SEQCST, UNORDERED
from .relations import Relation

RbfTriple = Tuple[int, int, int]
"""A ``reads-byte-from`` entry ``(byte location, writer eid, reader eid)``."""


class MalformedExecutionError(ValueError):
    """Raised when a candidate execution violates a structural invariant."""


@dataclass(frozen=True)
class CandidateExecution:
    """A JavaScript candidate execution (Fig. 3).

    All relations are stored over event identifiers (``eid``).  ``tot`` is
    stored as an explicit ordering tuple; :meth:`total_order` exposes it as
    a relation.  ``tot`` may be ``None`` while a witness is being searched
    for (e.g. during enumeration); validity checks require it.
    """

    events: EventSet
    sb: Relation = field(default_factory=Relation)
    asw: Relation = field(default_factory=Relation)
    rbf: FrozenSet[RbfTriple] = frozenset()
    tot: Optional[Tuple[int, ...]] = None
    # Memoisation of derived relations (rf, sw, hb, init-overlap, …).  The
    # cache is keyed by (name, parameters) and is *deliberately shared*: by
    # :meth:`with_witness` variants that differ only in ``tot``, and — via
    # the enumeration's shape-quotient layer — by sibling executions of one
    # pre-execution whose byte-wise ``rbf`` patterns differ but project to
    # the same event-level rf signature.  Every entry must therefore be a
    # function of the rf signature plus witness-independent structure (sw,
    # hb, init-overlap, the unisize relations, the rf-level shape verdict),
    # keyed by the ``tot`` it was computed for, or keyed by the full
    # ``rbf`` (the per-witness verdict, whose HB-Consistency (3) clause
    # reads the byte-wise triples).  Never memoise a byte-value- or
    # byte-pattern-dependent result under an unkeyed name.  ``with_witness``
    # installs a fresh cache whenever ``rbf`` changes.
    _cache: Dict[object, object] = field(
        default_factory=dict, compare=False, repr=False
    )

    # -- constructors --------------------------------------------------------

    @staticmethod
    def build(
        events: Iterable[Event],
        sb: Iterable[Tuple[int, int]] = (),
        asw: Iterable[Tuple[int, int]] = (),
        rbf: Iterable[RbfTriple] = (),
        tot: Optional[Sequence[int]] = None,
    ) -> "CandidateExecution":
        """Convenience constructor from plain iterables."""
        return CandidateExecution(
            events=EventSet(tuple(events)),
            sb=Relation(sb),
            asw=Relation(asw),
            rbf=frozenset(rbf),
            tot=tuple(tot) if tot is not None else None,
        )

    def with_witness(
        self,
        rbf: Optional[Iterable[RbfTriple]] = None,
        tot: Optional[Sequence[int]] = None,
    ) -> "CandidateExecution":
        """A copy of this execution with a (possibly partial) new witness.

        Copies that differ only in ``tot`` share this execution's derived-
        relation cache (everything cached is tot-independent or keyed by
        tot); a changed ``rbf`` invalidates the cache.
        """
        new_rbf = frozenset(rbf) if rbf is not None else self.rbf
        return replace(
            self,
            rbf=new_rbf,
            tot=tuple(tot) if tot is not None else self.tot,
            _cache=self._cache if new_rbf == self.rbf else {},
        )

    # -- basic lookups -------------------------------------------------------

    def event(self, eid: int) -> Event:
        """The event with identifier ``eid``."""
        return self.events.by_eid(eid)

    @property
    def eids(self) -> FrozenSet[int]:
        """All event identifiers."""
        return self.events.eids

    def threads(self) -> Tuple[int, ...]:
        """The thread identifiers occurring in the execution (excluding Init)."""
        return tuple(sorted({e.tid for e in self.events if e.tid >= 0}))

    # -- witness relations -----------------------------------------------------

    def total_order(self) -> Relation:
        """``tot`` as a strict-total-order relation over event identifiers."""
        if self.tot is None:
            raise MalformedExecutionError("execution has no total-order witness")
        return Relation.from_total_order(self.tot)

    def tot_index(self) -> Dict[int, int]:
        """Position of each event identifier within ``tot`` (memoised)."""
        if self.tot is None:
            raise MalformedExecutionError("execution has no total-order witness")
        key = ("tot_index", self.tot)
        index = self._cache.get(key)
        if index is None:
            index = {eid: i for i, eid in enumerate(self.tot)}
            self._cache[key] = index
        return index

    def tot_before(self, a: int, b: int) -> bool:
        """True iff event ``a`` precedes event ``b`` in ``tot``."""
        index = self.tot_index()
        return index[a] < index[b]

    # -- derived relations (Fig. 3) --------------------------------------------

    def reads_from(self) -> Relation:
        """``rf ≜ {⟨A,B⟩ | ∃k. ⟨k,A,B⟩ ∈ rbf}`` (writer on the left, memoised)."""
        rf = self._cache.get("rf")
        if rf is None:
            rf = Relation({(w, r) for (_k, w, r) in self.rbf})
            self._cache["rf"] = rf
        return rf

    def synchronizes_with(self, simplified: bool = False) -> Relation:
        """``sw`` — the synchronisation edges created by SeqCst atomics.

        With ``simplified=False`` this is the original ES2019 definition
        (Fig. 3), which includes the special case for reads that read only
        from ``Init`` events.  With ``simplified=True`` it is the corrected
        model's simplified definition (§3.2): a SeqCst read synchronises
        with a same-range SeqCst write it reads from, plus ``asw``.
        """
        key = ("sw", simplified)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        rf = self.reads_from()
        pairs: Set[Tuple[int, int]] = set()
        writers_of: Dict[int, List[int]] = {}
        for (w, r) in rf:
            writers_of.setdefault(r, []).append(w)
        for (w_eid, r_eid) in rf:
            writer = self.event(w_eid)
            reader = self.event(r_eid)
            if reader.ord is not SEQCST:
                continue
            same_range_sc = (
                writer.same_range_w_as_r(reader) and writer.ord is SEQCST
            )
            if simplified:
                if same_range_sc:
                    pairs.add((w_eid, r_eid))
            else:
                only_init = all(
                    self.event(other).ord is INIT
                    for other in writers_of.get(r_eid, ())
                )
                if same_range_sc or only_init:
                    pairs.add((w_eid, r_eid))
        sw = Relation(pairs).union(self.asw)
        self._cache[key] = sw
        return sw

    def init_overlap(self) -> Relation:
        """``{⟨A,B⟩ | A.ord = Init ∧ overlap(A,B)}`` — Init precedes everything it overlaps."""
        cached = self._cache.get("init_overlap")
        if cached is not None:
            return cached
        pairs = set()
        for init in self.events.inits():
            for other in self.events:
                if other.eid == init.eid:
                    continue
                if init.overlaps(other):
                    pairs.add((init.eid, other.eid))
        overlap_rel = Relation(pairs)
        self._cache["init_overlap"] = overlap_rel
        return overlap_rel

    def happens_before(self, simplified_sw: bool = False) -> Relation:
        """``hb ≜ (sb ∪ sw ∪ init-overlap)⁺`` (memoised)."""
        key = ("hb", simplified_sw)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        base = self.sb.union(
            self.synchronizes_with(simplified=simplified_sw), self.init_overlap()
        )
        hb = base.transitive_closure()
        self._cache[key] = hb
        return hb

    # -- well-formedness --------------------------------------------------------

    def check_well_formed(self, require_tot: bool = True) -> None:
        """Raise :class:`MalformedExecutionError` if structurally ill-formed.

        Well-formedness captures the conditions the specification places on
        candidate executions before the memory-model axioms apply:

        * ``sb`` relates only events of the same thread and is a strict
          partial order (per thread it is total in practice);
        * every ``rbf`` triple associates a read with a write covering the
          byte, with matching byte values, and no event reads from itself
          (the RMW self-read issue identified by EMME);
        * every byte of every read is justified by exactly one write;
        * ``tot`` (when present) is a strict total order over all events.
        """
        self._check_structure()
        if self.tot is not None:
            self._check_tot()
        elif require_tot:
            raise MalformedExecutionError("execution has no total-order witness")

    def _check_structure(self) -> None:
        """The tot-independent well-formedness conditions (O(|sb| + |rbf|))."""
        eids = self.eids
        for (a, b) in self.sb:
            if a not in eids or b not in eids:
                raise MalformedExecutionError(f"sb mentions unknown event: {(a, b)}")
            if self.event(a).tid != self.event(b).tid:
                raise MalformedExecutionError(
                    f"sb relates events of different threads: {(a, b)}"
                )
        if not self.sb.is_acyclic():
            raise MalformedExecutionError("sb is cyclic")
        for (a, b) in self.asw:
            if a not in eids or b not in eids:
                raise MalformedExecutionError(f"asw mentions unknown event: {(a, b)}")

        justified: Dict[Tuple[int, int], int] = {}
        for (k, w_eid, r_eid) in self.rbf:
            if w_eid not in eids or r_eid not in eids:
                raise MalformedExecutionError(
                    f"rbf mentions unknown event: {(k, w_eid, r_eid)}"
                )
            if w_eid == r_eid:
                raise MalformedExecutionError(
                    f"event {r_eid} reads byte {k} from itself"
                )
            writer = self.event(w_eid)
            reader = self.event(r_eid)
            if writer.block != reader.block:
                raise MalformedExecutionError(
                    f"rbf crosses blocks: {(k, w_eid, r_eid)}"
                )
            if k not in writer.range_w:
                raise MalformedExecutionError(
                    f"event {w_eid} does not write byte {k}"
                )
            if k not in reader.range_r:
                raise MalformedExecutionError(
                    f"event {r_eid} does not read byte {k}"
                )
            if writer.written_byte(k) != reader.read_byte(k):
                raise MalformedExecutionError(
                    f"byte value mismatch at {(k, w_eid, r_eid)}: "
                    f"write {writer.written_byte(k)} vs read {reader.read_byte(k)}"
                )
            key = (k, r_eid)
            if key in justified:
                raise MalformedExecutionError(
                    f"byte {k} of event {r_eid} justified by multiple writes"
                )
            justified[key] = w_eid

        for reader in self.events.reads():
            for k in reader.range_r:
                if (k, reader.eid) not in justified:
                    raise MalformedExecutionError(
                        f"byte {k} of read event {reader.eid} has no justification"
                    )

    def _check_tot(self) -> None:
        """The witness condition: ``tot`` is a permutation of the events."""
        eids = self.eids
        if set(self.tot) != set(eids) or len(self.tot) != len(eids):
            raise MalformedExecutionError(
                "tot is not a permutation of the event identifiers"
            )

    def is_well_formed(self, require_tot: bool = True) -> bool:
        """Boolean form of :meth:`check_well_formed` (memoised).

        The structural verdict (everything except the ``tot`` permutation
        check) is tot-independent: it is cached once under ``"wf_structure"``
        and shared across every :meth:`with_witness` copy.  Construction
        paths that guarantee structure — the pruned enumeration and the
        ARM → JS translation — seed that entry directly, so only the cheap
        O(|events|) ``tot`` check remains per witness.
        """
        structural = self._cache.get("wf_structure")
        if structural is None:
            try:
                self._check_structure()
                structural = True
            except MalformedExecutionError:
                structural = False
            self._cache["wf_structure"] = structural
        if not structural:
            return False
        if self.tot is None:
            return not require_tot
        key = ("wf_tot", self.tot)
        tot_ok = self._cache.get(key)
        if tot_ok is None:
            try:
                self._check_tot()
                tot_ok = True
            except MalformedExecutionError:
                tot_ok = False
            self._cache[key] = tot_ok
        return tot_ok

    # -- misc queries -------------------------------------------------------------

    def rf_inverse_functional(self) -> bool:
        """True iff no read reads (bytes) from more than one write.

        ``rf⁻¹`` being functional is the key premise of the mixed-size →
        uni-size reduction of §6.3/§6.4.
        """
        writers_of: Dict[int, Set[int]] = {}
        for (_k, w, r) in self.rbf:
            writers_of.setdefault(r, set()).add(w)
        return all(len(ws) <= 1 for ws in writers_of.values())

    def has_partial_overlaps(self) -> bool:
        """True iff some pair of overlapping events has unequal footprints."""
        events = list(self.events)
        for i, a in enumerate(events):
            for b in events[i + 1:]:
                if a.is_init or b.is_init:
                    continue
                if a.overlaps(b) and not a.same_footprint(b):
                    return True
        return False

    def describe(self) -> str:
        """A multi-line human-readable rendering of the execution."""
        lines = ["CandidateExecution:"]
        for event in sorted(self.events, key=lambda e: (e.tid, e.eid)):
            lines.append(f"  {event.describe()}  (tid={event.tid})")
        lines.append(f"  sb:  {sorted(self.sb.pairs)}")
        lines.append(f"  asw: {sorted(self.asw.pairs)}")
        lines.append(f"  rbf: {sorted(self.rbf)}")
        lines.append(f"  tot: {self.tot}")
        return "\n".join(lines)


def project_outcome(
    execution: CandidateExecution, registers: Dict[str, int]
) -> Dict[str, int]:
    """Helper used by the litmus runner: pair an execution with its outcome."""
    return dict(registers)
