"""Data races and data-race freedom (Fig. 7 of the paper).

Two events of a candidate execution race if they overlap, at least one of
them writes, they are not both same-range SeqCst atomics, and they are
unordered by ``happens-before``.  A *program* is data-race-free when no
model-allowed execution of it contains a data-race; that program-level
notion lives in :mod:`repro.lang.enumeration` — this module provides the
execution-level predicates it builds on.
"""

from __future__ import annotations

from typing import List, Tuple

from .events import Event, SEQCST, ranges_equal
from .execution import CandidateExecution
from .js_model import FINAL_MODEL, JsModel
from .relations import Relation


def is_data_race(
    a: Event, b: Event, hb: Relation
) -> bool:
    """The Fig. 7 data-race predicate for two events under ``happens-before``.

    ``(A.ord = Un ∨ B.ord = Un ∨ range(A) ≠ range(B)) ∧ overlap(A,B) ∧
    (write(A) ∨ write(B)) ∧ ¬(A hb B ∨ B hb A)``
    """
    if a.eid == b.eid:
        return False
    if not a.overlaps(b):
        return False
    if not (a.is_write or b.is_write):
        return False
    same_range = a.block == b.block and ranges_equal(a.footprint, b.footprint)
    both_sc_same_range = a.ord is SEQCST and b.ord is SEQCST and same_range
    if both_sc_same_range:
        return False
    if (a.eid, b.eid) in hb or (b.eid, a.eid) in hb:
        return False
    return True


def data_races(
    execution: CandidateExecution, model: JsModel = FINAL_MODEL
) -> List[Tuple[int, int]]:
    """All racing event pairs of the execution (each pair reported once)."""
    hb = model.happens_before(execution)
    races: List[Tuple[int, int]] = []
    events = sorted(execution.events, key=lambda e: e.eid)
    for i, a in enumerate(events):
        for b in events[i + 1:]:
            if is_data_race(a, b, hb):
                races.append((a.eid, b.eid))
    return races


def is_race_free_execution(
    execution: CandidateExecution, model: JsModel = FINAL_MODEL
) -> bool:
    """True iff the execution contains no data-race."""
    return not data_races(execution, model)
