"""Sequential consistency of candidate executions.

The SC-DRF property of §3.2 says that data-race-free programs only exhibit
results "corresponding to a sequential interleaving of [their] accesses"
(Lamport's definition of sequential consistency).  This module gives the
execution-level notion used by the paper's internal SC-DRF theorem
(Theorem 6.1): a candidate execution is *sequentially consistent* if there
is an interleaving of all its events — compatible with ``sequenced-before``,
``additional-synchronizes-with`` and the Init event coming first — in which
every read reads, byte by byte, the value left by the most recent preceding
write of that byte.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

from .events import Event
from .execution import CandidateExecution
from .relations import Relation, linear_extensions


def _interleaving_base(execution: CandidateExecution) -> Relation:
    """The order any SC interleaving must respect: ``sb ∪ asw ∪ init-overlap``."""
    return execution.sb.union(execution.asw, execution.init_overlap())


def _reads_explained_by(
    execution: CandidateExecution, interleaving: Sequence[int]
) -> bool:
    """Does the interleaving explain every read's byte values?

    Memory is replayed along the interleaving; each read must observe, for
    every byte it covers, exactly the latest value written to that byte so
    far (and some write must have covered the byte — the Init event ensures
    this for well-formed program executions).
    """
    memory: Dict[Tuple[str, int], int] = {}
    for eid in interleaving:
        event = execution.event(eid)
        if event.is_read:
            for k in event.range_r:
                current = memory.get((event.block, k))
                if current is None or current != event.read_byte(k):
                    return False
        if event.is_write:
            for k in event.range_w:
                memory[(event.block, k)] = event.written_byte(k)
    return True


def sc_interleavings(
    execution: CandidateExecution,
) -> Iterator[Tuple[int, ...]]:
    """Enumerate the interleavings witnessing sequential consistency."""
    base = _interleaving_base(execution)
    eids = sorted(execution.eids)
    if not base.is_acyclic():
        return
    for interleaving in linear_extensions(eids, base):
        if _reads_explained_by(execution, interleaving):
            yield interleaving


def is_sequentially_consistent(execution: CandidateExecution) -> bool:
    """True iff some interleaving of the events explains all read values."""
    for _ in sc_interleavings(execution):
        return True
    return False


def sc_witness(execution: CandidateExecution) -> Optional[Tuple[int, ...]]:
    """A witnessing interleaving, or ``None`` if the execution is not SC."""
    for interleaving in sc_interleavings(execution):
        return interleaving
    return None
