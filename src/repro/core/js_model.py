"""Validity of JavaScript candidate executions — original and corrected models.

This module implements Fig. 4 (the ES2019 model), the two repairs of §3
(the ARMv8-compilation fix and the SC-DRF fix), the combined final rule of
Fig. 10, the simplified ``synchronizes-with`` of §3.2, and the strengthened
*Tear-Free Reads* condition of §6.4.

A model variant is described by a :class:`JsModel` value; the named presets

* :data:`ORIGINAL_MODEL`   — ES2019, 10th edition (Fig. 4),
* :data:`ARMV8_FIX_MODEL`  — the "second attempt" SC-atomics rule of §3.1,
* :data:`FINAL_MODEL`      — the combined rule of Fig. 10 adopted by TC39,
* :data:`FINAL_MODEL_STRONG_TEAR` — Fig. 10 plus strong Tear-Free Reads,

are the ones exercised throughout the test-suite and benchmarks.

The central entry points are :func:`is_valid` (check one candidate execution
with a complete witness) and :func:`exists_valid_total_order` (search for a
witnessing ``total-order``, given the events and ``reads-byte-from``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .events import Event, SEQCST, INIT, ranges_equal
from .execution import CandidateExecution
from .relations import Relation, linear_extensions


class ScAtomicsRule(enum.Enum):
    """Which *Sequentially Consistent Atomics* condition is enforced."""

    ORIGINAL = "original"          # Fig. 4 ("first attempt")
    ARMV8_FIX = "armv8-fix"        # §3.1 ("second attempt")
    FINAL = "final"                # Fig. 10 (combined, adopted by TC39)


@dataclass(frozen=True)
class JsModel:
    """A configuration of the JavaScript memory model.

    ``sc_atomics``      — which SC-atomics rule to apply;
    ``simplified_sw``   — use the simplified ``synchronizes-with`` (§3.2);
    ``strong_tearfree`` — use the strengthened Tear-Free Reads rule (§6.4).
    """

    name: str
    sc_atomics: ScAtomicsRule
    simplified_sw: bool = False
    strong_tearfree: bool = False

    def happens_before(self, execution: CandidateExecution) -> Relation:
        """``hb`` computed with this model's ``synchronizes-with``."""
        return execution.happens_before(simplified_sw=self.simplified_sw)

    def synchronizes_with(self, execution: CandidateExecution) -> Relation:
        """``sw`` computed with this model's definition."""
        return execution.synchronizes_with(simplified=self.simplified_sw)


ORIGINAL_MODEL = JsModel(
    name="es2019-original",
    sc_atomics=ScAtomicsRule.ORIGINAL,
    simplified_sw=False,
    strong_tearfree=False,
)

ARMV8_FIX_MODEL = JsModel(
    name="armv8-fix-only",
    sc_atomics=ScAtomicsRule.ARMV8_FIX,
    simplified_sw=False,
    strong_tearfree=False,
)

FINAL_MODEL = JsModel(
    name="final-tc39",
    sc_atomics=ScAtomicsRule.FINAL,
    simplified_sw=True,
    strong_tearfree=False,
)

FINAL_MODEL_STRONG_TEAR = replace(
    FINAL_MODEL, name="final-tc39-strong-tearfree", strong_tearfree=True
)

ALL_MODELS: Tuple[JsModel, ...] = (
    ORIGINAL_MODEL,
    ARMV8_FIX_MODEL,
    FINAL_MODEL,
    FINAL_MODEL_STRONG_TEAR,
)


# ---------------------------------------------------------------------------
# individual validity conditions
# ---------------------------------------------------------------------------


def happens_before_consistency_1(
    execution: CandidateExecution, hb: Relation
) -> bool:
    """Fig. 4 rule (1): ``happens-before ⊆ total-order``."""
    tot = execution.total_order()
    return tot.contains_relation(hb)


def happens_before_consistency_2(
    execution: CandidateExecution, hb: Relation
) -> bool:
    """Fig. 4 rule (2): a read never happens-before a write it reads from."""
    for (w_eid, r_eid) in execution.reads_from():
        if (r_eid, w_eid) in hb:
            return False
    return True


def happens_before_consistency_3(
    execution: CandidateExecution, hb: Relation
) -> bool:
    """Fig. 4 rule (3): no read observes a byte hidden by a newer hb-write.

    For every ``⟨k, Ew, Er⟩ ∈ reads-byte-from`` there must be no write
    ``E'w`` with ``Ew hb E'w hb Er`` that also writes byte ``k``.
    """
    for (k, w_eid, r_eid) in execution.rbf:
        for candidate in execution.events.writers_of_location(k):
            if candidate.eid in (w_eid, r_eid):
                continue
            if (w_eid, candidate.eid) in hb and (candidate.eid, r_eid) in hb:
                return False
    return True


def tear_free_reads(execution: CandidateExecution, strong: bool = False) -> bool:
    """The *Tear-Free Reads* rule (Fig. 4), optionally strengthened (§6.4).

    A tear-free read may read from at most one tear-free write of identical
    range.  The strong variant additionally counts ``Init`` writes, closing
    the Fig. 14 loophole where an aligned tear-free read mixes bytes of the
    initialising write with bytes of a tear-free write.
    """
    rf = execution.reads_from()
    for reader in execution.events.reads():
        if not reader.tearfree:
            continue
        matching = set()
        for (w_eid, r_eid) in rf:
            if r_eid != reader.eid:
                continue
            writer = execution.event(w_eid)
            if not writer.tearfree:
                continue
            same_range = writer.same_range_w_as_r(reader)
            if same_range or (strong and writer.ord is INIT):
                matching.add(w_eid)
        if len(matching) > 1:
            return False
    return True


def _is_seqcst_write(event: Event) -> bool:
    return event.is_write and event.ord is SEQCST


# The SC-atomics rules all have the shape "no forbidden (writer, intervener,
# reader) triple may occur in the order writer <tot intervener <tot reader",
# and *which* triples are forbidden is tot-independent in every rule (the
# side-conditions only consult hb/sw and static event attributes).  The
# single source of truth for the side-conditions is
# :func:`_sc_atomics_forbidden_triples`; the complete-witness checkers below
# and the incremental witness search both consume its triples, so the two
# paths cannot drift apart.


def _sc_atomics_holds(
    execution: CandidateExecution,
    triples: "Dict[int, Tuple[Tuple[int, int], ...]]",
) -> bool:
    """Does ``tot`` realise none of the forbidden triples?"""
    index = execution.tot_index()
    for r_eid, pairs in triples.items():
        r_pos = index[r_eid]
        for (w_eid, c_eid) in pairs:
            if index[w_eid] < index[c_eid] < r_pos:
                return False
    return True


def sc_atomics_original(
    execution: CandidateExecution, sw: Relation
) -> bool:
    """Fig. 4 *Sequentially Consistent Atomics* ("first attempt").

    Forbids any write with the read's range from appearing tot-between a
    synchronising write/read pair — including non-SeqCst writes, which is
    precisely what breaks the ARMv8 compilation scheme (§3.1, Fig. 5).
    """
    return _sc_atomics_holds(
        execution,
        _sc_atomics_forbidden_triples(execution, ScAtomicsRule.ORIGINAL, None, sw),
    )


def sc_atomics_armv8_fix(
    execution: CandidateExecution, sw: Relation
) -> bool:
    """§3.1 *SC Atomics (second attempt)*: the intervener must be SeqCst."""
    return _sc_atomics_holds(
        execution,
        _sc_atomics_forbidden_triples(execution, ScAtomicsRule.ARMV8_FIX, None, sw),
    )


def sc_atomics_final(
    execution: CandidateExecution, sw: Relation, hb: Relation
) -> bool:
    """Fig. 10: the combined *Sequentially Consistent Atomics* rule.

    For every ``Ew reads-from Er`` with ``Ew happens-before Er``, there is no
    SeqCst write ``E'w`` tot-between them such that one of the three listed
    range/ordering side-conditions holds.  The rule simultaneously

    * weakens Fig. 4 (the intervener must be SeqCst — the ARMv8 fix), and
    * strengthens it (the two extra disjuncts forbid the Fig. 9 SC-DRF
      violation shapes).
    """
    return _sc_atomics_holds(
        execution,
        _sc_atomics_forbidden_triples(execution, ScAtomicsRule.FINAL, hb, sw),
    )


# ---------------------------------------------------------------------------
# whole-execution validity
# ---------------------------------------------------------------------------


def is_valid(
    execution: CandidateExecution,
    model: JsModel = FINAL_MODEL,
    check_well_formed: bool = True,
) -> bool:
    """Is the candidate execution valid under ``model``?

    The execution must carry a complete witness (``rbf`` and ``tot``).
    """
    if check_well_formed and not execution.is_well_formed(require_tot=True):
        return False
    hb = model.happens_before(execution)
    sw = model.synchronizes_with(execution)
    if not happens_before_consistency_1(execution, hb):
        return False
    if not happens_before_consistency_2(execution, hb):
        return False
    if not happens_before_consistency_3(execution, hb):
        return False
    if not tear_free_reads(execution, strong=model.strong_tearfree):
        return False
    if model.sc_atomics is ScAtomicsRule.ORIGINAL:
        return sc_atomics_original(execution, sw)
    if model.sc_atomics is ScAtomicsRule.ARMV8_FIX:
        return sc_atomics_armv8_fix(execution, sw)
    return sc_atomics_final(execution, sw, hb)


def validity_violations(
    execution: CandidateExecution, model: JsModel = FINAL_MODEL
) -> List[str]:
    """The names of the validity rules the execution violates (for diagnostics)."""
    violations: List[str] = []
    if not execution.is_well_formed(require_tot=True):
        return ["well-formedness"]
    hb = model.happens_before(execution)
    sw = model.synchronizes_with(execution)
    if not happens_before_consistency_1(execution, hb):
        violations.append("happens-before-consistency-1")
    if not happens_before_consistency_2(execution, hb):
        violations.append("happens-before-consistency-2")
    if not happens_before_consistency_3(execution, hb):
        violations.append("happens-before-consistency-3")
    if not tear_free_reads(execution, strong=model.strong_tearfree):
        violations.append("tear-free-reads")
    if model.sc_atomics is ScAtomicsRule.ORIGINAL:
        ok = sc_atomics_original(execution, sw)
    elif model.sc_atomics is ScAtomicsRule.ARMV8_FIX:
        ok = sc_atomics_armv8_fix(execution, sw)
    else:
        ok = sc_atomics_final(execution, sw, hb)
    if not ok:
        violations.append("sequentially-consistent-atomics")
    return violations


def candidate_total_orders(
    execution: CandidateExecution, model: JsModel
) -> Iterator[Tuple[int, ...]]:
    """Enumerate the total orders that could possibly witness validity.

    By *Happens-Before Consistency (1)* every valid ``tot`` is a linear
    extension of ``hb``, so it suffices to enumerate those (and none exist
    when ``hb`` is cyclic).
    """
    hb = model.happens_before(execution)
    eids = sorted(execution.eids)
    if not hb.is_acyclic():
        return
    yield from linear_extensions(eids, hb)


# ---------------------------------------------------------------------------
# incremental witness search
# ---------------------------------------------------------------------------
#
# ``is_valid`` factors into two groups of conditions:
#
# * tot-independent — well-formedness, Happens-Before Consistency (2)/(3)
#   and Tear-Free Reads only mention ``hb``/``rbf``, never ``tot``.  They
#   are decided once per (events, sb, asw, rbf) quadruple and cached.
# * tot-dependent — Happens-Before Consistency (1) says ``tot`` extends
#   ``hb``; every SC-atomics rule forbids certain triples (Ew, E'w, Er)
#   from occurring in the order Ew <tot E'w <tot Er, where *which* triples
#   are forbidden depends only on ``hb``/``sw``/``rf`` and the events'
#   static attributes, never on ``tot`` itself.
#
# The witness search therefore precomputes the forbidden triples and runs a
# single backtracking enumeration of the linear extensions of ``hb``,
# pruning a branch the moment placing an event would realise a forbidden
# triple — instead of generating each complete extension and re-running the
# whole ``is_valid`` pipeline on it.


@dataclass(frozen=True)
class WitnessVerdict:
    """The cached tot-independent part of the validity check.

    ``ok`` is true when every tot-independent rule passes and ``hb`` is
    acyclic (so witnessing total orders can exist at all).  ``triples``
    maps each reader eid to the (writer, intervener) pairs that must not
    end up ordered ``writer <tot intervener <tot reader``.

    ``search_dead`` is the witness search's dead-prefix memo (placed-event
    sets with no valid completion, see :func:`_search_witness`).  The
    search is a pure function of (eids, ``hb``, ``triples``), so the memo
    lives with them: every verdict sharing this object's ``hb``/``triples``
    — in particular all ``rbf`` variants of one rf-signature shape, whose
    per-witness verdicts only re-decide HB-Consistency (3) — reuses the
    search state instead of rediscovering the same dead prefixes.
    """

    ok: bool
    hb: Optional[Relation] = None
    triples: Optional[Dict[int, Tuple[Tuple[int, int], ...]]] = None
    search_dead: Optional[set] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class ShapeVerdict:
    """The rf-signature-level slice of the tot-independent verdict.

    Everything here — ``hb``, the acyclicity/HB-Consistency (2)/Tear-Free
    Reads conjunction, and the forbidden SC-atomics triples — is a function
    of the event-level ``rf`` projection of ``rbf`` plus template-fixed
    event attributes (modes, footprints, ``sb``/``asw``); the byte-wise
    pattern of ``rbf`` and the byte *values* never enter.  Executions that
    share a cache per rf signature (the shape-quotient layer of the
    enumeration) therefore compute this once and share it, while the one
    genuinely ``rbf``-dependent rule — HB-Consistency (3) — is re-decided
    per witness in :func:`witness_verdict`.

    ``search_dead`` is the shared dead-prefix memo of the witness search
    (see :class:`WitnessVerdict`): the search depends on nothing below the
    rf-signature level, so one memo per shape serves every execution of it.
    """

    ok: bool
    hb: Optional[Relation] = None
    triples: Optional[Dict[int, Tuple[Tuple[int, int], ...]]] = None
    search_dead: Optional[set] = field(default=None, compare=False, repr=False)


def _model_cache_key(model: JsModel) -> Tuple[object, ...]:
    return ("shape-verdict", model.sc_atomics, model.simplified_sw, model.strong_tearfree)


def _sc_atomics_forbidden_triples(
    execution: CandidateExecution,
    rule: ScAtomicsRule,
    hb: Optional[Relation],
    sw: Relation,
) -> Dict[int, Tuple[Tuple[int, int], ...]]:
    """Per-reader (writer, intervener) pairs forbidden from tot-between them.

    For the original/ARMv8-fix rules the relevant pairs are the ``sw``
    edges (``hb`` is not consulted and may be ``None``); for the final rule
    they are the ``rf ∩ hb`` edges.  Whether an intervening write completes
    a violation is tot-independent in every rule (the Fig. 10
    side-conditions only consult ``hb``/``sw`` and static event
    attributes), so the triples can be enumerated up front.  This is the
    single definition of the SC-atomics side-conditions, consumed by both
    the complete-witness checkers and the incremental witness search.
    """
    if rule is ScAtomicsRule.FINAL:
        assert hb is not None
        pairs = [(w, r) for (w, r) in execution.reads_from() if (w, r) in hb]
    else:
        pairs = list(sw)
    triples: Dict[int, List[Tuple[int, int]]] = {}
    for (w_eid, r_eid) in pairs:
        reader = execution.event(r_eid)
        if not reader.is_read:
            # asw edges may relate non-read events; the range condition is
            # then vacuously unsatisfiable (a write range is never empty).
            continue
        writer = execution.event(w_eid)
        for candidate in execution.events:
            if candidate.eid in (w_eid, r_eid) or not candidate.is_write:
                continue
            if rule is ScAtomicsRule.ORIGINAL:
                forbidden = candidate.block == reader.block and ranges_equal(
                    candidate.range_w, reader.range_r
                )
            elif rule is ScAtomicsRule.ARMV8_FIX:
                forbidden = (
                    candidate.ord is SEQCST
                    and candidate.block == reader.block
                    and ranges_equal(candidate.range_w, reader.range_r)
                )
            else:  # FINAL (Fig. 10)
                if not _is_seqcst_write(candidate) or candidate.block != reader.block:
                    forbidden = False
                else:
                    same_range_as_read = ranges_equal(
                        candidate.range_w, reader.range_r
                    )
                    same_range_as_write = candidate.block == writer.block and (
                        ranges_equal(candidate.range_w, writer.range_w)
                    )
                    first = same_range_as_read and (w_eid, r_eid) in sw
                    second = (
                        same_range_as_write
                        and writer.ord is SEQCST
                        and (candidate.eid, r_eid) in hb
                    )
                    third = (
                        same_range_as_read
                        and (w_eid, candidate.eid) in hb
                        and reader.ord is SEQCST
                    )
                    forbidden = first or second or third
            if forbidden:
                triples.setdefault(r_eid, []).append((w_eid, candidate.eid))
    return {r: tuple(pairs) for r, pairs in triples.items()}


def shape_verdict(
    execution: CandidateExecution, model: JsModel = FINAL_MODEL
) -> ShapeVerdict:
    """The rf-level slice of the tot-independent verdict, cached on the execution.

    Shared across every execution on the same cache — i.e. across all
    ground executions of one pre-execution with the same event-level rf
    signature, however their byte-wise ``rbf`` patterns or byte values
    differ (see :class:`ShapeVerdict` for why that is sound).
    """
    key = _model_cache_key(model)
    cached = execution._cache.get(key)
    if cached is not None:
        return cached
    hb = model.happens_before(execution)
    sw = model.synchronizes_with(execution)
    if (
        not hb.is_acyclic()
        or not happens_before_consistency_2(execution, hb)
        or not tear_free_reads(execution, strong=model.strong_tearfree)
    ):
        verdict = ShapeVerdict(ok=False)
    else:
        verdict = ShapeVerdict(
            ok=True,
            hb=hb,
            triples=_sc_atomics_forbidden_triples(
                execution, model.sc_atomics, hb, sw
            ),
            search_dead=set(),
        )
    execution._cache[key] = verdict
    return verdict


def witness_verdict(
    execution: CandidateExecution, model: JsModel = FINAL_MODEL
) -> WitnessVerdict:
    """The tot-independent validity verdict, cached on the execution.

    ``verdict.ok`` is false exactly when *no* total order can make the
    execution valid for a tot-independent reason: the execution violates
    HB-Consistency (2)/(3) or Tear-Free Reads, or ``hb`` is cyclic.

    The rf-level slice (everything except HB-Consistency (3)) comes from
    :func:`shape_verdict` and is shared across executions with the same rf
    signature; only the byte-wise rule is decided per ``rbf``, so the
    verdict entry itself is keyed by the execution's ``rbf``.
    """
    key = (
        "verdict",
        model.sc_atomics,
        model.simplified_sw,
        model.strong_tearfree,
        execution.rbf,
    )
    cached = execution._cache.get(key)
    if cached is not None:
        return cached
    shape = shape_verdict(execution, model)
    if not shape.ok or not happens_before_consistency_3(execution, shape.hb):
        verdict = WitnessVerdict(ok=False)
    else:
        verdict = WitnessVerdict(
            ok=True,
            hb=shape.hb,
            triples=shape.triples,
            search_dead=shape.search_dead,
        )
    execution._cache[key] = verdict
    return verdict


def _search_witness(
    execution: CandidateExecution, verdict: WitnessVerdict
) -> Optional[Tuple[int, ...]]:
    """Find one linear extension of ``hb`` realising no forbidden triple.

    A reachable-set DP over precomputed bitmasks (Held–Karp style): the
    search state is the *set* of placed events, as one machine integer
    (litmus sizes, n ≤ 12, fit comfortably).  An event is placeable into a
    prefix set when all its hb-predecessors are in it, and — fusing the
    SC-atomics check into the search — placing the *intervener* ``E'w`` of
    a forbidden triple ``Ew <tot E'w <tot Er`` is rejected exactly when
    ``Ew`` is already placed and ``Er`` is not: every completion then
    orders ``Ew <tot E'w <tot Er``, and conversely any realised triple
    passes through such a placement.  The violation test therefore depends
    only on the placed *set*, never on the order within it, which makes
    prefix sets with no valid completion memoisable: each of the ≤ 2ⁿ
    reachable sets is expanded at most once, instead of once per ordering
    reaching it as the previous pure backtracker did.

    Candidates are tried in ascending event order, so the first witness
    found — and hence the returned ``tot`` — is bit-identical to the
    backtracking implementation's.

    The dead-set memo persists on the verdict (``verdict.search_dead``,
    shared per rf-signature shape): a prefix set marked dead has no valid
    completion under (eids, hb, triples), all of which the verdict fixes,
    so later searches of the same shape — other ``rbf`` members, other
    outcomes of one program, repeated queries — skip those subtrees
    entirely.  Sharing cannot change any result: dead prefixes are exactly
    the ones that contribute no witness, and the candidate order within
    live prefixes is unchanged.
    """
    eids = sorted(execution.eids)
    n = len(eids)
    idx = {eid: i for i, eid in enumerate(eids)}
    assert verdict.hb is not None and verdict.triples is not None
    hb = verdict.hb
    pred_mask = [0] * n
    for eid in eids:
        mask = 0
        for p in hb.predecessors(eid):
            bit = idx.get(p)
            if bit is not None:
                mask |= 1 << bit
        pred_mask[idx[eid]] = mask
    # blockers[c]: the (writer mask, reader mask) pairs of the triples whose
    # intervener is c — the placement-time rejection test reads only these.
    blockers: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for r_eid, pairs in verdict.triples.items():
        r_bit = 1 << idx[r_eid]
        for (w_eid, c_eid) in pairs:
            blockers[idx[c_eid]].append((1 << idx[w_eid], r_bit))

    order: List[int] = []
    full = (1 << n) - 1
    dead: set = set() if verdict.search_dead is None else verdict.search_dead

    def extend(placed_mask: int) -> bool:
        if placed_mask == full:
            return True
        if placed_mask in dead:
            return False
        for i in range(n):
            bit = 1 << i
            if placed_mask & bit or pred_mask[i] & ~placed_mask:
                continue
            violated = False
            for (w_bit, r_bit) in blockers[i]:
                if placed_mask & w_bit and not placed_mask & r_bit:
                    violated = True
                    break
            if violated:
                continue
            order.append(i)
            if extend(placed_mask | bit):
                return True
            order.pop()
        dead.add(placed_mask)
        return False

    if extend(0):
        return tuple(eids[i] for i in order)
    return None


def exists_valid_total_order(
    execution: CandidateExecution, model: JsModel = FINAL_MODEL
) -> Optional[Tuple[int, ...]]:
    """Search for a ``total-order`` witness making the execution valid.

    Returns a witnessing order, or ``None`` if no total order makes the
    (events, sb, asw, rbf) quadruple valid under ``model``.  This realises
    the existential quantification over the execution witness in §2.3.

    The tot-independent validity rules are checked once (and cached on the
    execution); the SC-atomics rule is fused into the backtracking
    enumeration of the linear extensions of ``hb``, so violating prefixes
    are pruned as events are placed instead of after a complete order has
    been generated and revalidated.
    """
    if not execution.is_well_formed(require_tot=False):
        return None
    verdict = witness_verdict(execution, model)
    if not verdict.ok:
        return None
    return _search_witness(execution, verdict)


def is_valid_for_witness(
    execution: CandidateExecution,
    tot: Tuple[int, ...],
    model: JsModel = FINAL_MODEL,
) -> bool:
    """``is_valid(execution.with_witness(tot=tot), model)``, via cached verdicts.

    Decides validity of one concrete ``tot`` against the (cached, shared)
    tot-independent verdict instead of re-running the whole rule pipeline:
    the verdict covers well-formedness-independent rules (2)/(3)/Tear-Free
    Reads and hb-acyclicity, so only HB-Consistency (1) — ``hb ⊆ tot`` —
    and the forbidden-triple realisation test remain per witness.
    Bit-identical to :func:`is_valid` on well-formed inputs; used by the
    compilation-correctness pipeline, which checks one constructed ``tot``
    per ARM execution against a shared translated execution.
    """
    witnessed = execution.with_witness(tot=tot)
    if not witnessed.is_well_formed(require_tot=True):
        return False
    verdict = witness_verdict(witnessed, model)
    if not verdict.ok:
        return False
    index = witnessed.tot_index()
    for (a, b) in verdict.hb:
        if index[a] >= index[b]:
            return False
    return _sc_atomics_holds(witnessed, verdict.triples)


def invalid_for_all_total_orders(
    execution: CandidateExecution, model: JsModel = FINAL_MODEL
) -> bool:
    """True iff *no* choice of ``tot`` makes the execution valid.

    This is the exact (semantic) form of the *deadness* requirement of §5.2:
    a counter-example execution is only meaningful if its invalidity cannot
    be repaired by permuting the total order.  The tot-independent verdict
    short-circuits the common case without enumerating a single order.
    """
    return exists_valid_total_order(execution, model) is None
