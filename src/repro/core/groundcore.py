"""The shared pruned-backtracking core of the ground-execution enumerations.

Both witness enumerations of this package assign, to every byte of every
read, one covering write — and prune the assignment tree against branch
constraints as soon as a read's value can be decoded:

* the JavaScript grounding (:func:`repro.lang.enumeration.ground_candidates`)
  enumerates ``reads-byte-from`` witnesses of a :class:`PreExecution`;
* the ARMv8 grounding (:func:`repro.armv8.axiomatic._arm_assignments`)
  enumerates byte-wise reads-from assignments of an :class:`ArmPreExecution`.

They used to be parallel implementations of the same backtracking search,
which let pruning improvements drift apart (a PERFORMANCE.md hot spot).
This module is the single implementation both layers call: reads are
processed in program order, each read group tries every combination of
per-byte writer choices, a read whose chosen writers' byte values are all
known is decoded immediately and checked against its branch constraints —
discarding the whole subtree of assignments for the remaining reads on a
violation — and newly decodable stores are propagated forward.  Leaves fall
back to a from-scratch fixpoint (via ``finish``) for the value-dependency
chains the incremental resolution cannot order.

The layer-specific parts are injected:

* ``decode`` (per read group) turns resolved bytes into the value the
  branch constraints talk about;
* ``propagate`` extends the known write values after a read resolves;
* ``finish`` consumes one complete assignment and yields the layer's
  results (ground executions / assignment triples);
* ``charge`` (optional) implements the JavaScript-side enumeration budget:
  it is called with ``1`` per examined leaf and with the full subtree size
  per constraint-pruned subtree, so the budget trips for exactly the same
  inputs as an unpruned product enumeration would;
* ``group_hooks`` (optional) are per-slot-group constraint hooks fused into
  the recursion: after a group's slots are assigned, its hook sees the
  partial assignment and either refines a caller-defined state threaded
  down the search or abandons the whole subtree.  The ARMv8 layer uses
  them to AND its per-byte coherence order-bitmask memos into the
  backtracker — a subtree dies the moment some byte's mask empties,
  instead of every member being enumerated, classed and then discarded.

Static writer may-sets from :mod:`repro.analyze` enter one level earlier
still, through :func:`restrict_choices`: facts provable from the program
text alone (an rf edge dead under every model) shrink a group's per-slot
``choices`` before the product enumeration even starts — the degenerate
single-slot form of the ``group_hooks`` constraint layer, legal only when
no enumeration budget is active (``charge`` sizes pruned subtrees from the
unpruned product).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    Optional,
    Sequence,
    Tuple,
)

ByteTuple = Tuple[int, ...]
KnownBytes = Dict[int, ByteTuple]
KnownStart = Dict[int, int]


@dataclass
class SignatureInterner:
    """Order-preserving interning of per-assignment state by signature.

    Both grounding layers quotient the assignments this module enumerates by
    an *equivalence-class signature* and share one piece of derived state
    per class instead of rebuilding it per assignment:

    * the JavaScript layer shares one derived-relation cache per event-level
      rf signature (:func:`repro.lang.enumeration._build_execution`);
    * the ARMv8 layer shares events, outcome, ``ob_fixed`` and the class
      cache per ``(value profile, event-level rf signature)`` class
      (:func:`repro.armv8.axiomatic._arm_groundings`).

    ``intern(signature, build)`` returns the class state for ``signature``,
    calling ``build()`` only on the first member.  Classes are created in
    first-member order and the member stream is never reordered, so callers
    stay bit-identical to the unquotiented enumeration.  ``members`` /
    ``classes`` record how well the quotient collapses (useful in tests and
    profiling: ``members / classes`` is the sharing factor).

    The ARM grounding loop — per-assignment hot path — maintains ``table``
    and the counters directly with the same protocol instead of paying a
    closure and a method call per member; ``intern`` is the one place that
    protocol is specified, so keep the two in step.
    """

    table: Dict[object, object] = field(default_factory=dict)
    members: int = 0
    classes: int = 0

    _MISS = object()

    def intern(self, signature, build: Callable[[], object]):
        self.members += 1
        state = self.table.get(signature, self._MISS)
        if state is self._MISS:
            state = build()
            self.table[signature] = state
            self.classes += 1
        return state


@dataclass(frozen=True)
class ReadGroup:
    """One read of the enumeration: its assignment slots and writer choices.

    ``key`` identifies the read in the ``read_values``/``resolved_reads``
    dictionaries handed to ``propagate``/``finish`` (the layers use their
    template keys).  ``slots[i]`` is the assignment-dictionary key of byte
    ``i``; ``locations[i]`` is that byte's location (used to index into a
    writer's byte tuple); ``choices[i]`` are the candidate writer eids.
    ``constraints`` are the branch constraints sourced at this read, as
    ``(must_equal, constant)`` pairs; ``decode`` turns the resolved byte
    tuple into the value they constrain.
    """

    key: object
    slots: Tuple[object, ...]
    locations: Tuple[int, ...]
    choices: Tuple[Tuple[int, ...], ...]
    constraints: Tuple[Tuple[bool, int], ...]
    decode: Callable[[ByteTuple], int]


def restrict_choices(
    choices: Sequence[int], may: Callable[[int], bool]
) -> Tuple[Tuple[int, ...], int]:
    """Apply a static writer may-set to one slot's candidate writers.

    The static analyzer proves, from the program text alone, that some
    reads-from edges can never appear in a *valid* execution (e.g. a write
    sequenced after the read it would justify — HB-Consistency 2 rejects
    that execution under every model).  Those facts arrive here as a
    per-writer ``may`` predicate and shrink the slot's choice tuple before
    :func:`enumerate_assignments` takes the product.  Returns the kept
    choices and how many edges were pruned; callers only apply a non-empty
    prune when no enumeration budget is active (see module docstring).
    """
    kept = tuple(writer for writer in choices if may(writer))
    return kept, len(choices) - len(kept)


def enumerate_assignments(
    read_groups: Sequence[ReadGroup],
    assignment: Dict[object, int],
    static_bytes: KnownBytes,
    static_start: KnownStart,
    propagate: Callable[
        [KnownBytes, KnownStart, Dict[object, int]], Tuple[KnownBytes, KnownStart]
    ],
    finish: Callable[[Dict[object, ByteTuple], KnownBytes], Iterator],
    charge: Optional[Callable[[int], None]] = None,
    group_hooks: Optional[Sequence[Optional[Callable[[object], object]]]] = None,
    hook_state: object = None,
) -> Iterator:
    """Drive the shared backtracking enumeration (see module docstring).

    ``assignment`` is mutated in place: at each leaf it holds the complete
    slot → writer choice, and ``finish(resolved_reads, known_bytes)`` is
    invoked to yield the layer's results for it (``resolved_reads`` holds
    the incrementally decoded reads; when it covers every group the leaf
    was fully resolved — and constraint-checked — on the way down).
    Callers must consume each yielded result before advancing, exactly as
    with any generator sharing mutable state.

    ``group_hooks``, when given, has one entry per read group (``None``
    entries are skipped).  After group ``i``'s slots are written into
    ``assignment`` — and its branch constraints, if decidable, have passed
    — ``group_hooks[i](state)`` is called with the state threaded down
    this search path (``hook_state`` at the root).  A ``None`` return
    abandons the whole subtree *without* charging the budget (hooks encode
    layer constraints that the post-enumeration filters used to apply, not
    enumeration-budget semantics); any other return value becomes the
    state for the deeper groups.  With hooks active, ``finish`` is called
    as ``finish(resolved_reads, known_bytes, state)`` so the layer can
    reuse what the hooks computed on the way down.
    """
    groups = list(read_groups)
    n = len(groups)

    if charge is not None:
        # subtree_size[i]: assignments below one writer combination of group
        # i — the product of the later groups' choice counts — used to
        # charge constraint-pruned subtrees against the budget.
        subtree_size = [1] * (n + 1)
        for i in range(n - 1, -1, -1):
            group_combos = 1
            for choices in groups[i].choices:
                group_combos *= len(choices)
            subtree_size[i] = group_combos * subtree_size[i + 1]

    def recurse(
        group_index: int,
        known_bytes: KnownBytes,
        known_start: KnownStart,
        read_values: Dict[object, int],
        resolved_reads: Dict[object, ByteTuple],
        state: object,
    ) -> Iterator:
        if group_index == n:
            if charge is not None:
                charge(1)
            if group_hooks is None:
                yield from finish(resolved_reads, known_bytes)
            else:
                yield from finish(resolved_reads, known_bytes, state)
            return

        group = groups[group_index]
        decode = group.decode
        hook = None if group_hooks is None else group_hooks[group_index]
        for combo in itertools.product(*group.choices):
            for slot, writer_eid in zip(group.slots, combo):
                assignment[slot] = writer_eid
            # Try to decode this read's value right away: possible when all
            # its chosen writers' byte values are already known.
            next_bytes = known_bytes
            next_start = known_start
            next_values = read_values
            next_resolved = resolved_reads
            data = []
            complete = True
            for k, writer_eid in zip(group.locations, combo):
                writer_data = known_bytes.get(writer_eid)
                if writer_data is None:
                    complete = False
                    break
                data.append(writer_data[k - known_start[writer_eid]])
            if complete:
                resolved_data = tuple(data)
                value = decode(resolved_data)
                violated = False
                for (must_equal, constant) in group.constraints:
                    if must_equal and value != constant:
                        violated = True
                        break
                    if not must_equal and value == constant:
                        violated = True
                        break
                if violated:
                    if charge is not None:
                        charge(subtree_size[group_index + 1])
                    continue
                next_values = dict(read_values)
                next_values[group.key] = value
                next_resolved = dict(resolved_reads)
                next_resolved[group.key] = resolved_data
                next_bytes, next_start = propagate(
                    known_bytes, known_start, next_values
                )
            next_state = state
            if hook is not None:
                next_state = hook(state)
                if next_state is None:
                    continue
            yield from recurse(
                group_index + 1,
                next_bytes,
                next_start,
                next_values,
                next_resolved,
                next_state,
            )

    yield from recurse(0, static_bytes, static_start, {}, {}, hook_state)
