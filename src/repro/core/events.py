"""Shared-memory events of the JavaScript memory model.

The ECMAScript memory model (§2.2 of Watt et al., PLDI 2020; Fig. 3) works
over *events*: shared-memory reads, writes and read-modify-writes produced
by the thread-local semantics.  Each event carries

* ``ord``      — its mode: ``Init`` (the distinguished initialising write),
                 ``Unordered`` (non-atomic) or ``SeqCst`` (atomic);
* ``block``    — the identity of the SharedArrayBuffer accessed;
* ``index``    — the starting byte offset within the block;
* ``reads``    — the list of byte values read (empty for pure writes);
* ``writes``   — the list of byte values written (empty for pure reads);
* ``tearfree`` — whether the event is guaranteed not to tear.

The model is *mixed-size*: two events may overlap without having the same
footprint, which is what distinguishes it from C/C++11-style models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Optional, Tuple


class AccessMode(enum.Enum):
    """The ordering mode of a shared-memory event (``mode`` in Fig. 3)."""

    INIT = "Init"
    UNORDERED = "Unordered"
    SEQCST = "SeqCst"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AccessMode.{self.name}"

    @property
    def short(self) -> str:
        """The abbreviation used in the paper's execution diagrams."""
        return {"Init": "I", "Unordered": "Un", "SeqCst": "SC"}[self.value]


INIT = AccessMode.INIT
UNORDERED = AccessMode.UNORDERED
SEQCST = AccessMode.SEQCST


@dataclass(frozen=True)
class Event:
    """A single shared-memory event of a JavaScript candidate execution.

    ``eid`` is a unique identifier within one candidate execution and
    ``tid`` identifies the issuing agent (thread); the ``Init`` event uses
    ``tid = -1``.  ``label`` is an optional human-readable name used when
    rendering executions (``a``, ``b``, … in the paper's figures).
    """

    eid: int
    tid: int
    ord: AccessMode
    block: str
    index: int
    reads: Tuple[int, ...] = ()
    writes: Tuple[int, ...] = ()
    tearfree: bool = True
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"event {self.eid}: negative index {self.index}")
        if not self.reads and not self.writes:
            raise ValueError(
                f"event {self.eid}: must read or write at least one byte"
            )
        for byte in tuple(self.reads) + tuple(self.writes):
            if not 0 <= byte <= 0xFF:
                raise ValueError(
                    f"event {self.eid}: byte value {byte} out of range"
                )
        if self.ord is INIT and self.reads:
            raise ValueError(f"event {self.eid}: Init events cannot read")

    # -- footprint ---------------------------------------------------------

    @property
    def range_r(self) -> range:
        """``ranger(E)``: the byte locations read by this event."""
        return range(self.index, self.index + len(self.reads))

    @property
    def range_w(self) -> range:
        """``rangew(E)``: the byte locations written by this event."""
        return range(self.index, self.index + len(self.writes))

    @property
    def footprint(self) -> range:
        """``range(E) = ranger(E) ∪ rangew(E)``.

        For every event produced by the thread-local semantics the read and
        write ranges coincide or one of them is empty, so the union is
        itself a contiguous range.
        """
        return range(
            self.index, self.index + max(len(self.reads), len(self.writes))
        )

    # -- classification ----------------------------------------------------

    @property
    def is_read(self) -> bool:
        """True iff the event reads at least one byte."""
        return bool(self.reads)

    @property
    def is_write(self) -> bool:
        """``write(E)`` of Fig. 3: true iff the event writes at least one byte."""
        return bool(self.writes)

    @property
    def is_rmw(self) -> bool:
        """True iff the event both reads and writes (a read-modify-write)."""
        return bool(self.reads) and bool(self.writes)

    @property
    def is_init(self) -> bool:
        """True iff this is the distinguished initialising write."""
        return self.ord is INIT

    @property
    def is_seqcst(self) -> bool:
        """True iff the event is a sequentially-consistent atomic."""
        return self.ord is SEQCST

    @property
    def is_unordered(self) -> bool:
        """True iff the event is a non-atomic (Unordered) access."""
        return self.ord is UNORDERED

    # -- byte-level accessors ------------------------------------------------

    def read_byte(self, location: int) -> int:
        """The byte value this event reads at absolute byte ``location``."""
        if location not in self.range_r:
            raise KeyError(
                f"event {self.eid} does not read byte location {location}"
            )
        return self.reads[location - self.index]

    def written_byte(self, location: int) -> int:
        """The byte value this event writes at absolute byte ``location``."""
        if location not in self.range_w:
            raise KeyError(
                f"event {self.eid} does not write byte location {location}"
            )
        return self.writes[location - self.index]

    def overlaps(self, other: "Event") -> bool:
        """``overlap(E1, E2)``: same block and intersecting footprints."""
        if self.block != other.block:
            return False
        return ranges_intersect(self.footprint, other.footprint)

    def same_range_w_as_r(self, reader: "Event") -> bool:
        """``rangew(self) = ranger(reader)`` (and same block)."""
        return self.block == reader.block and ranges_equal(
            self.range_w, reader.range_r
        )

    def same_footprint(self, other: "Event") -> bool:
        """Equal blocks and equal footprints (``range(E1) = range(E2)``)."""
        return self.block == other.block and ranges_equal(
            self.footprint, other.footprint
        )

    # -- convenience ---------------------------------------------------------

    def with_values(
        self,
        reads: Optional[Tuple[int, ...]] = None,
        writes: Optional[Tuple[int, ...]] = None,
    ) -> "Event":
        """A copy of this event with the byte values replaced."""
        new_reads = self.reads if reads is None else tuple(reads)
        new_writes = self.writes if writes is None else tuple(writes)
        return replace(self, reads=new_reads, writes=new_writes)

    def describe(self) -> str:
        """A compact rendering in the style of the paper's diagrams."""
        name = self.label or f"e{self.eid}"
        parts = []
        if self.is_read:
            lo, hi = self.range_r.start, self.range_r.stop - 1
            value = int.from_bytes(bytes(self.reads), "little")
            parts.append(f"R{self.ord.short} {self.block}[{lo}..{hi}]={value}")
        if self.is_write:
            lo, hi = self.range_w.start, self.range_w.stop - 1
            value = int.from_bytes(bytes(self.writes), "little")
            parts.append(f"W{self.ord.short} {self.block}[{lo}..{hi}]={value}")
        return f"{name}: " + " / ".join(parts)


def ranges_intersect(a: range, b: range) -> bool:
    """True iff the two (step-1) ranges share at least one location."""
    return a.start < b.stop and b.start < a.stop and len(a) > 0 and len(b) > 0


def ranges_equal(a: range, b: range) -> bool:
    """True iff the two (step-1) ranges denote the same set of locations."""
    if len(a) == 0 and len(b) == 0:
        return True
    return a.start == b.start and a.stop == b.stop


def overlap(a: Event, b: Event) -> bool:
    """``overlap(E1, E2)`` of Fig. 3."""
    return a.overlaps(b)


def make_init_event(
    block: str, size: int, eid: int = 0, value: int = 0
) -> Event:
    """The distinguished initialising write covering a whole buffer.

    The JavaScript specification zero-initialises every SharedArrayBuffer;
    the memory model represents this as a single ``Init``-mode write ranging
    over the entire buffer (see the ``WI b[0..1024]=0`` event of Fig. 2).
    """
    if size <= 0:
        raise ValueError("buffer size must be positive")
    if not 0 <= value <= 0xFF:
        raise ValueError("init byte value out of range")
    return Event(
        eid=eid,
        tid=-1,
        ord=INIT,
        block=block,
        index=0,
        reads=(),
        writes=(value,) * size,
        tearfree=True,
        label="init",
    )


@dataclass(frozen=True)
class EventSet:
    """A finite set of events keyed by ``eid`` with convenience selectors.

    The eid → event index is built once at construction, so
    :meth:`by_eid` — a hot operation in the validity checks — is a single
    dict lookup instead of a linear scan.
    """

    events: Tuple[Event, ...] = field(default_factory=tuple)
    _index: Dict[int, Event] = field(
        default_factory=dict, init=False, compare=False, repr=False
    )
    _writers_by_location: Dict[int, Tuple[Event, ...]] = field(
        default_factory=dict, init=False, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        index = {e.eid: e for e in self.events}
        if len(index) != len(self.events):
            raise ValueError("duplicate event identifiers in EventSet")
        object.__setattr__(self, "_index", index)

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def by_eid(self, eid: int) -> Event:
        """Look an event up by identifier (O(1))."""
        try:
            return self._index[eid]
        except KeyError:
            raise KeyError(f"no event with eid {eid}") from None

    @property
    def eids(self) -> FrozenSet[int]:
        """The set of event identifiers."""
        return frozenset(self._index)

    def reads(self) -> Tuple[Event, ...]:
        """All events that read."""
        return tuple(e for e in self.events if e.is_read)

    def writes(self) -> Tuple[Event, ...]:
        """All events that write."""
        return tuple(e for e in self.events if e.is_write)

    def inits(self) -> Tuple[Event, ...]:
        """All initialising writes."""
        return tuple(e for e in self.events if e.is_init)

    def on_thread(self, tid: int) -> Tuple[Event, ...]:
        """All events issued by thread ``tid``."""
        return tuple(e for e in self.events if e.tid == tid)

    def writers_of_byte(self, block: str, location: int) -> Tuple[Event, ...]:
        """All events writing the given absolute byte location."""
        return tuple(
            e
            for e in self.events
            if e.block == block and location in e.range_w
        )

    def writers_of_location(self, location: int) -> Tuple[Event, ...]:
        """All events writing byte ``location`` in *any* block (cached).

        Used by the hot Happens-Before-Consistency (3) loop, which (like
        the specification text) quantifies over byte locations without a
        per-block restriction.
        """
        index = self._writers_by_location
        if not index and self.events:
            grouped: Dict[int, list] = {}
            for e in self.events:
                for k in e.range_w:
                    grouped.setdefault(k, []).append(e)
            index.update({k: tuple(es) for k, es in grouped.items()})
        return index.get(location, ())
