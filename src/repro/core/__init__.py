"""The JavaScript (ECMAScript) relaxed memory model — the paper's core contribution.

This subpackage contains the axiomatic model itself: events, candidate
executions, derived relations, the validity rules of the original (ES2019)
model and of the corrected model adopted by TC39, the data-race and
sequential-consistency predicates, the uni-size model, and bounded checks of
the paper's mechanised theorems.
"""

from .events import (
    AccessMode,
    Event,
    EventSet,
    INIT,
    SEQCST,
    UNORDERED,
    make_init_event,
    overlap,
    ranges_equal,
    ranges_intersect,
)
from .execution import CandidateExecution, MalformedExecutionError, RbfTriple
from .relations import Relation, linear_extensions, some_linear_extension, topological_sort
from .js_model import (
    ALL_MODELS,
    ARMV8_FIX_MODEL,
    FINAL_MODEL,
    FINAL_MODEL_STRONG_TEAR,
    JsModel,
    ORIGINAL_MODEL,
    ScAtomicsRule,
    exists_valid_total_order,
    invalid_for_all_total_orders,
    is_valid,
    validity_violations,
)
from .data_race import data_races, is_data_race, is_race_free_execution
from .sc import is_sequentially_consistent, sc_witness
from .unisize import (
    reduction_agrees,
    reduction_applicable,
    same_location,
    unisize_exists_valid_total_order,
    unisize_is_valid,
)
from .theorems import TheoremCheckReport, check_internal_sc_drf, check_unisize_reduction

__all__ = [
    "AccessMode",
    "Event",
    "EventSet",
    "INIT",
    "SEQCST",
    "UNORDERED",
    "make_init_event",
    "overlap",
    "ranges_equal",
    "ranges_intersect",
    "CandidateExecution",
    "MalformedExecutionError",
    "RbfTriple",
    "Relation",
    "linear_extensions",
    "some_linear_extension",
    "topological_sort",
    "ALL_MODELS",
    "ARMV8_FIX_MODEL",
    "FINAL_MODEL",
    "FINAL_MODEL_STRONG_TEAR",
    "JsModel",
    "ORIGINAL_MODEL",
    "ScAtomicsRule",
    "exists_valid_total_order",
    "invalid_for_all_total_orders",
    "is_valid",
    "validity_violations",
    "data_races",
    "is_data_race",
    "is_race_free_execution",
    "is_sequentially_consistent",
    "sc_witness",
    "reduction_agrees",
    "reduction_applicable",
    "same_location",
    "unisize_exists_valid_total_order",
    "unisize_is_valid",
    "TheoremCheckReport",
    "check_internal_sc_drf",
    "check_unisize_reduction",
]
