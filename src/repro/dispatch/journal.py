"""Crash-safe checkpoint journaling for resumable sweeps.

A sweep is a bag of independent tasks (chunks of a program enumeration,
litmus tests, corpus programs) whose per-task results are small and
JSON-serialisable.  A :class:`SweepJournal` records each completed task as
one appended line, so a sweep killed mid-run — ``SIGKILL``, OOM, power —
resumes by replaying the journal and recomputing only the tasks that never
completed.

Layout: one file per sweep under the checkpoint directory, named by the
sweep *fingerprint* — a content hash over everything that determines the
task list and its results (the query kind, bounds/programs, model
configuration, chunk layout, and :data:`~repro.dispatch.cache.SEMANTICS_REVISION`).
The first line is a checksummed header; every subsequent line is
``{"i": task_index, "r": result, "s": checksum}``.  Readers drop any line
whose checksum fails — in particular the torn final line of an interrupted
write — and writers only ever append, so no failure mode can corrupt an
already-recorded result.

Stale-journal invalidation: a journal whose header does not match the
opener's (format version, fingerprint, semantics revision, task count) is
discarded and restarted — a changed sweep can never resume from another
sweep's chunks.  Additionally, journals untouched for
:data:`STALE_JOURNAL_SECONDS` are reclaimed on directory open, and a journal
bloated by duplicate entries (retries after partial resumes) is compacted
in place on open.

The checkpoint directory comes from ``REPRO_CHECKPOINT_DIR`` or an explicit
``checkpoint=`` argument on the sweep consumers; unset means no journaling.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
import warnings
from pathlib import Path
from typing import Any, Dict, Optional

CHECKPOINT_ENV = "REPRO_CHECKPOINT_DIR"
_DISABLED_VALUES = {"", "0", "off", "no", "none", "disabled"}

JOURNAL_VERSION = "1"

STALE_JOURNAL_SECONDS = 14 * 24 * 3600.0
"""Journals untouched this long are debris from abandoned sweeps."""

# Directories already swept for stale journals this process.
_swept_directories: set = set()


def _line_checksum(body: Any) -> str:
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def resolve_checkpoint(checkpoint: Any = None, cache: Any = None) -> Optional[Path]:
    """Normalise a consumer-facing ``checkpoint=`` argument.

    ``None`` defers to ``REPRO_CHECKPOINT_DIR``, ``False`` disables
    journaling outright, and a path passes through.  With neither an
    argument nor the environment variable set, a *durable* cache backend
    (one advertising a ``journal_directory``, i.e. the segment store)
    donates a ``journals/`` subdirectory of its own store — a sweep
    against a crash-safe store is resumable by default, journals and
    verdicts live and are backed up together.
    """
    if checkpoint is None:
        raw = os.environ.get(CHECKPOINT_ENV, "").strip()
        if raw.lower() in _DISABLED_VALUES:
            if not raw:
                # Genuinely unconfigured (an explicit "off" stays off).
                journal_dir = getattr(cache, "journal_directory", None)
                if journal_dir is not None:
                    return Path(journal_dir)
            return None
        return Path(raw)
    if checkpoint is False:
        return None
    return Path(checkpoint)


def _sweep_stale_journals(directory: Path) -> None:
    """Reclaim abandoned journals, once per directory per process."""
    key = str(directory)
    if key in _swept_directories:
        return
    _swept_directories.add(key)
    try:
        if not directory.is_dir():
            return
        cutoff = time.time() - STALE_JOURNAL_SECONDS
        for old in directory.glob("*.journal"):
            try:
                if old.stat().st_mtime < cutoff:
                    old.unlink()
            except OSError:
                continue
    except OSError:  # pragma: no cover - host-specific listing failures
        return


class SweepJournal:
    """Append-only journal of one sweep's completed task results."""

    def __init__(
        self,
        path: Path,
        kind: str,
        sweep_fingerprint: str,
        revision: str,
        total: int,
    ):
        self.path = path
        self.kind = kind
        self.fingerprint = sweep_fingerprint
        self.revision = revision
        self.total = total
        self._completed: Dict[int, Any] = {}
        self._handle = None
        self._recorded_lines = 0
        self.degraded = False
        """The journal's directory turned unwritable mid-sweep; appends are
        skipped (one warning) and the sweep continues un-journaled."""

    # -- construction -------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: os.PathLike,
        kind: str,
        sweep_fingerprint: str,
        revision: str,
        total: int,
    ) -> Optional["SweepJournal"]:
        """Open (resuming) or create the journal for one sweep.

        Returns ``None`` when the directory cannot be created or written —
        journaling is an aid, never a reason a sweep fails.
        """
        directory = Path(directory)
        try:
            directory.mkdir(parents=True, exist_ok=True)
        except OSError:
            return None
        _sweep_stale_journals(directory)
        path = directory / f"{kind}-{sweep_fingerprint[:32]}.journal"
        journal = cls(path, kind, sweep_fingerprint, revision, total)
        try:
            journal._load()
        except OSError:
            return None
        return journal

    def _header(self) -> Dict[str, Any]:
        body = {
            "journal": JOURNAL_VERSION,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "revision": self.revision,
            "total": self.total,
        }
        body["s"] = _line_checksum([body["journal"], body["kind"],
                                    body["fingerprint"], body["revision"],
                                    body["total"]])
        return body

    def _header_matches(self, entry: Any) -> bool:
        if not isinstance(entry, dict):
            return False
        expected = self._header()
        return all(entry.get(k) == expected[k] for k in expected)

    def _load(self) -> None:
        """Replay the file: validate the header, collect checksummed entries."""
        raw_lines = []
        if self.path.exists():
            try:
                raw_lines = self.path.read_text(encoding="utf-8").splitlines()
            except (OSError, UnicodeDecodeError):
                raw_lines = []
        entries: Dict[int, Any] = {}
        valid_header = False
        if raw_lines:
            try:
                valid_header = self._header_matches(json.loads(raw_lines[0]))
            except ValueError:
                valid_header = False
        if valid_header:
            for line in raw_lines[1:]:
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn or mangled line: never trusted
                if (
                    not isinstance(entry, dict)
                    or not isinstance(entry.get("i"), int)
                    or "r" not in entry
                    or entry.get("s") != _line_checksum([entry["i"], entry["r"]])
                ):
                    continue
                entries[entry["i"]] = entry["r"]
        elif raw_lines:
            # Stale journal: header mismatch (older format, different sweep
            # hashing to a colliding name, or a bumped semantics revision).
            # Discard; resuming from it could replay wrong results.
            try:
                self.path.unlink()
            except OSError:
                pass
        self._completed = entries
        line_count = max(0, len(raw_lines) - 1) if valid_header else 0
        # Compact when retries/replays have bloated the file well past the
        # unique entry count (also rewrites a missing/invalid header).
        if not valid_header or line_count > 2 * len(entries) + 16:
            self._rewrite()
        else:
            self._recorded_lines = line_count
            self._handle = self.path.open("a", encoding="utf-8")

    def _rewrite(self) -> None:
        """Atomically rewrite header + unique entries (compaction)."""
        fd, tmp = tempfile.mkstemp(dir=str(self.path.parent), suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(self._header(), sort_keys=True) + "\n")
            for index in sorted(self._completed):
                handle.write(self._entry_line(index, self._completed[index]))
        os.replace(tmp, self.path)
        self._recorded_lines = len(self._completed)
        self._handle = self.path.open("a", encoding="utf-8")

    @staticmethod
    def _entry_line(index: int, result: Any) -> str:
        entry = {"i": index, "r": result, "s": _line_checksum([index, result])}
        return json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"

    # -- use ----------------------------------------------------------------

    def completed(self) -> Dict[int, Any]:
        """``{task index: recorded result}`` of every journaled completion."""
        return dict(self._completed)

    def record(self, index: int, result: Any) -> None:
        """Append one completed task (idempotent; best-effort on IO errors).

        The line is flushed to the kernel immediately: a ``SIGKILL`` of
        this process can only lose results not yet recorded, never tear an
        earlier line.
        """
        if index in self._completed:
            return
        self._completed[index] = result
        if self._handle is None:
            return
        try:
            self._handle.write(self._entry_line(index, result))
            self._handle.flush()
            self._recorded_lines += 1
        except (TypeError, ValueError):
            # Unserialisable result: the sweep goes on, this task is simply
            # recomputed on a resume; later (serialisable) results still
            # journal fine.
            self._completed.pop(index, None)
        except OSError as exc:
            # The directory (or disk) turned unwritable mid-sweep — e.g. a
            # checkpoint volume remounted read-only.  Journaling is an aid,
            # never a reason a sweep fails: drop the handle so no later
            # record re-fails the filesystem, warn once, and continue
            # un-journaled.  This task is recomputed on a resume.
            self._completed.pop(index, None)
            self.degraded = True
            self.close()
            warnings.warn(
                f"checkpoint journal {self.path} became unwritable "
                f"({exc!s}); continuing un-journaled — results from here on "
                "are recomputed if this sweep is resumed",
                RuntimeWarning,
                stacklevel=3,
            )

    def finish(self) -> None:
        """The sweep completed: the journal has served its purpose; remove it."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover
                pass
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
