"""Work sharding and verdict persistence for independent per-program checks.

Every §5-style workload in this package — litmus catalogue sweeps,
``generate_programs`` counter-example hunts, bounded compilation-correctness
checks over corpora — is a bag of *independent* per-program queries.  This
subsystem provides the two scale-out primitives they share:

* :mod:`repro.dispatch.pool` — an order-preserving, chunked fan-out over
  ``multiprocessing`` workers with a graceful single-process fallback
  (``workers=1``, tiny inputs, or hosts where a pool cannot start), plus the
  ``REPRO_WORKERS`` environment override;
* :mod:`repro.dispatch.cache` — a persistent, content-addressed verdict
  cache keyed by a canonical fingerprint of (program structure, model
  configuration, semantics revision), so repeated sweeps and overlapping
  corpora skip straight to recorded verdicts.

Consumers (``litmus.runner``, ``search.counterexamples``,
``compile.correctness``) accept ``workers=`` / ``cache=`` and stay
bit-identical to their serial, uncached selves by construction: sharded
searches scan chunks in generation order and stop at the first hit, and the
cache stores only verdicts whose inputs are part of the key.
"""

from .cache import (
    CACHE_ENV,
    MISS,
    SEMANTICS_REVISION,
    VerdictCache,
    canonical,
    fingerprint,
    program_fingerprint,
    resolve_cache,
)
from .pool import (
    WORKERS_ENV,
    imap_ordered,
    parallel_map,
    resolve_workers,
    shard_ranges,
    sized_shard_ranges,
)

__all__ = [
    "CACHE_ENV",
    "MISS",
    "SEMANTICS_REVISION",
    "VerdictCache",
    "canonical",
    "fingerprint",
    "program_fingerprint",
    "resolve_cache",
    "WORKERS_ENV",
    "imap_ordered",
    "parallel_map",
    "resolve_workers",
    "shard_ranges",
    "sized_shard_ranges",
]
