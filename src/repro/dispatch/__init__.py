"""Work sharding, verdict persistence and fault tolerance for sweeps.

Every §5-style workload in this package — litmus catalogue sweeps,
``generate_programs`` counter-example hunts, bounded compilation-correctness
checks over corpora — is a bag of *independent* per-program queries.  This
subsystem provides the scale-out and resilience primitives they share:

* :mod:`repro.dispatch.pool` — an order-preserving, chunked fan-out over
  ``multiprocessing`` workers with a graceful single-process fallback
  (``workers=1``, tiny inputs, or hosts where a pool cannot start), plus the
  ``REPRO_WORKERS`` environment override;
* :mod:`repro.dispatch.supervise` — the fault-tolerant engine behind
  multi-worker runs: task retries with capped backoff, per-task deadlines,
  dead/hung-worker respawn, checksummed result payloads, remote-traceback
  preservation, and poison-task bisection with quarantine reporting;
* :mod:`repro.dispatch.journal` — append-only, crash-safe checkpoint
  journaling (``REPRO_CHECKPOINT_DIR``) so a killed sweep resumes
  recomputing only its unfinished chunks;
* :mod:`repro.dispatch.faults` — deterministic fault injection
  (``REPRO_FAULT_PLAN``) driving the chaos parity suites;
* :mod:`repro.dispatch.cache` — a persistent, content-addressed verdict
  cache keyed by a canonical fingerprint of (program structure, model
  configuration, semantics revision), with checksummed entries,
  corrupt-entry quarantine, a size quota with LRU eviction, and a
  read-only degraded mode;
* :mod:`repro.dispatch.store` — the crash-safe append-only segment-log
  storage backend for that cache (``REPRO_CACHE_BACKEND=segments``):
  checksummed length-prefixed records, flock-coordinated multi-process
  appends, lock-free reads, atomic crash-safe compaction, fsck, and the
  ``repro-cache`` migration/maintenance CLI.

Consumers (``litmus.runner``, ``search.counterexamples``,
``compile.correctness``) accept ``workers=`` / ``cache=`` / ``checkpoint=``
and stay bit-identical to their serial, uncached selves by construction:
sharded searches scan chunks in generation order and stop at the first hit,
the cache stores only verdicts whose inputs are part of the key, and the
journal keys every sweep by a fingerprint of everything its results depend
on.
"""

from .cache import (
    BACKEND_ENV,
    CACHE_ENV,
    LRU_TIER_ENV,
    MISS,
    QUOTA_ENV,
    SEMANTICS_REVISION,
    TieredVerdictCache,
    VerdictCache,
    canonical,
    fingerprint,
    get_or_compute_aliased,
    open_cache,
    program_fingerprint,
    resolve_backend,
    resolve_cache,
    resolve_lru_capacity,
    warm_spec,
)
from .store import (
    SegmentVerdictCache,
    is_segment_store,
    migrate_legacy,
)
from .faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultPlanError,
    resolve_fault_plan,
)
from .journal import (
    CHECKPOINT_ENV,
    SweepJournal,
    resolve_checkpoint,
)
from .pool import (
    SUPERVISE_ENV,
    WORKERS_ENV,
    chain_initializers,
    imap_ordered,
    parallel_map,
    resolve_supervise,
    resolve_workers,
    shard_ranges,
    sized_shard_ranges,
)
from .supervise import (
    QuarantinedTask,
    RETRIES_ENV,
    RemoteTaskError,
    SHUTDOWN_GRACE_ENV,
    ShutdownRequested,
    SupervisionReport,
    TASK_TIMEOUT_ENV,
    clear_shutdown,
    install_shutdown_signals,
    request_shutdown,
    resolve_retries,
    resolve_shutdown_grace,
    resolve_task_timeout,
    shutdown_requested,
    supervised_imap,
    supervised_map,
    uninstall_shutdown_signals,
)

__all__ = [
    "BACKEND_ENV",
    "CACHE_ENV",
    "LRU_TIER_ENV",
    "MISS",
    "QUOTA_ENV",
    "SEMANTICS_REVISION",
    "SegmentVerdictCache",
    "TieredVerdictCache",
    "VerdictCache",
    "resolve_lru_capacity",
    "canonical",
    "chain_initializers",
    "fingerprint",
    "get_or_compute_aliased",
    "is_segment_store",
    "migrate_legacy",
    "open_cache",
    "program_fingerprint",
    "resolve_backend",
    "resolve_cache",
    "warm_spec",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultPlanError",
    "resolve_fault_plan",
    "CHECKPOINT_ENV",
    "SweepJournal",
    "resolve_checkpoint",
    "SUPERVISE_ENV",
    "WORKERS_ENV",
    "imap_ordered",
    "parallel_map",
    "resolve_supervise",
    "resolve_workers",
    "shard_ranges",
    "sized_shard_ranges",
    "QuarantinedTask",
    "RETRIES_ENV",
    "RemoteTaskError",
    "SHUTDOWN_GRACE_ENV",
    "ShutdownRequested",
    "SupervisionReport",
    "TASK_TIMEOUT_ENV",
    "clear_shutdown",
    "install_shutdown_signals",
    "request_shutdown",
    "resolve_retries",
    "resolve_shutdown_grace",
    "resolve_task_timeout",
    "shutdown_requested",
    "supervised_imap",
    "supervised_map",
    "uninstall_shutdown_signals",
]
