"""Order-preserving multiprocessing fan-out with a serial fallback.

The checks dispatched here are pure functions of picklable arguments
(programs, models, bounds), so the only contract the pool layer has to keep
is *ordering*: results come back in task order regardless of which worker
finished first, and early-exit consumers (the bounded searches) can stop
consuming and abandon the still-queued tail.

``workers=1`` — or any environment where a pool cannot be created (no
``/dev/shm``, restricted sandboxes, interpreters without ``fork``/``spawn``)
— degrades to a plain in-process loop with identical results.

Multi-worker runs are *supervised* by default (:mod:`repro.dispatch.supervise`):
task-level retries with backoff, per-task deadlines that kill and respawn
hung or dead workers, checksummed result payloads, and remote tracebacks
chained onto parent-side re-raises.  ``supervise=False`` (or
``REPRO_SUPERVISE=off``) selects the legacy bare ``multiprocessing.Pool``
fan-out, retained for the fault-free-overhead benchmark and as an escape
hatch.
"""

from __future__ import annotations

import os
import warnings
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")

WORKERS_ENV = "REPRO_WORKERS"
SUPERVISE_ENV = "REPRO_SUPERVISE"
_DISABLED_VALUES = {"0", "off", "no", "none", "disabled", "false"}

_warned_workers_values: set = set()


def _warn_once(raw: str) -> None:
    """Warn about one unparseable ``$REPRO_WORKERS`` value, once per value."""
    if raw not in _warned_workers_values:
        _warned_workers_values.add(raw)
        warnings.warn(
            f"ignoring unparseable {WORKERS_ENV}={raw!r} (expected an integer "
            f"or 'auto'); running serially",
            RuntimeWarning,
            stacklevel=3,
        )


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: explicit argument, else ``$REPRO_WORKERS``, else 1.

    ``REPRO_WORKERS=auto`` resolves to the host's CPU count.  Any other
    unparseable value is ignored with a one-shot :class:`RuntimeWarning`
    (per value) instead of being silently coerced — a typo like ``"4x"``
    used to quietly serialise every sweep.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            workers = 1
        elif raw.lower() == "auto":
            workers = os.cpu_count() or 1
        else:
            try:
                workers = int(raw)
            except ValueError:
                _warn_once(raw)
                workers = 1
    return max(1, workers)


def _default_chunk_size(total: int, workers: int) -> int:
    """~4 chunks per worker: small enough that one slow chunk cannot
    serialise the sweep, large enough that per-chunk dispatch overhead
    stays negligible."""
    return max(1, -(-total // (max(1, workers) * 4)))


def shard_ranges(total: int, workers: int, chunk_size: Optional[int] = None) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into contiguous ``(start, stop)`` chunks."""
    if total <= 0:
        return []
    if chunk_size is None:
        chunk_size = _default_chunk_size(total, workers)
    return [(start, min(start + chunk_size, total)) for start in range(0, total, chunk_size)]


def sized_shard_ranges(
    total: int,
    workers: int,
    costs: Optional[Sequence[float]] = None,
    taper: int = 2,
) -> List[Tuple[int, int]]:
    """Cost-tapered contiguous ``(start, stop)`` chunks for tail-heavy bags.

    ``costs[i]`` estimates the cost of item ``i``.  Chunks follow guided
    self-scheduling over the *estimated cost* (rather than the item count):
    each chunk targets ``remaining cost / (workers * taper)``, so early
    chunks batch many cheap head items while chunks shrink toward the tail
    of the enumeration — down to a floor of 1/64th of a worker share.
    Combined with the pool's dynamic task assignment (``imap``/``map`` hand
    chunks to whichever worker frees up first) this is work-stealing at
    chunk granularity: a static equal-count split strands the expensive
    tail of a size-ordered enumeration in the last workers' final chunks,
    while the tapered split keeps every worker busy to within one small
    tail chunk of the ideal makespan.

    With no ``costs`` — or a ``costs`` sequence shorter than ``total``,
    which could otherwise raise ``IndexError`` mid-chunking — this degrades
    to :func:`shard_ranges`; a longer sequence is clamped to the first
    ``total`` entries so stray extra hints cannot skew the taper.  Chunk
    boundaries never affect results: consumers scan chunks in generation
    order, so verdicts, counter-examples and examined counts are identical
    whatever the split.
    """
    if total <= 0:
        return []
    if costs is not None and len(costs) != total:
        costs = costs[:total] if len(costs) > total else None
    if costs is None:
        return shard_ranges(total, workers)
    remaining = float(sum(costs))
    if remaining <= 0:
        return shard_ranges(total, workers)
    workers = max(1, workers)
    floor = remaining / (workers * 64)
    ranges: List[Tuple[int, int]] = []
    start = 0
    accumulated = 0.0
    target = max(floor, remaining / (workers * taper))
    for index in range(total):
        accumulated += costs[index]
        remaining -= costs[index]
        if accumulated >= target:
            ranges.append((start, index + 1))
            start = index + 1
            accumulated = 0.0
            target = max(floor, remaining / (workers * taper))
    if start < total:
        ranges.append((start, total))
    return ranges


def _run_initializers(specs: Tuple[Tuple[Callable, Tuple], ...]) -> None:
    """Run each ``(initializer, initargs)`` pair in order (worker-side)."""
    for initializer, initargs in specs:
        initializer(*initargs)


def chain_initializers(
    *specs: Optional[Tuple[Optional[Callable], Tuple]]
) -> Tuple[Optional[Callable], Tuple]:
    """Compose worker initializers into one ``(initializer, initargs)`` pair.

    Consumers that want both a shape-table warm-up *and* a cache warm-up in
    their workers pass ``initializer, initargs = chain_initializers(
    (install_shape_tables, (tables,)), (warm_spec, (spec,)))``.  ``None``
    entries (and entries with a ``None`` callable) are dropped; zero live
    entries compose to ``(None, ())``, one passes through unchanged.  The
    composition is a top-level function over the specs, hence picklable
    under any start method.
    """
    live = tuple(
        (initializer, tuple(initargs))
        for spec in specs
        if spec is not None
        for initializer, initargs in [spec]
        if initializer is not None
    )
    if not live:
        return None, ()
    if len(live) == 1:
        return live[0]
    return _run_initializers, (live,)


def _check_shutdown() -> None:
    """Honour a pending graceful-shutdown request on the unsupervised paths.

    The supervised engine drains and checkpoints; the legacy bare-``Pool``
    and plain serial loops have nothing to checkpoint, so they simply stop
    before (or between) dispatching more work.
    """
    from .supervise import ShutdownRequested, shutdown_requested

    if shutdown_requested():
        raise ShutdownRequested("graceful shutdown during unsupervised fan-out")


def resolve_supervise(supervise: Optional[bool] = None) -> bool:
    """Is the supervised engine in effect? Argument, else env, else on."""
    if supervise is not None:
        return bool(supervise)
    raw = os.environ.get(SUPERVISE_ENV, "").strip().lower()
    return raw not in _DISABLED_VALUES


def _shutdown_pool(pool) -> None:
    """``terminate()`` always chased by a ``join()`` that survives interrupts.

    A ``KeyboardInterrupt`` landing between ``terminate`` and ``join`` (or
    mid-``join``) used to leave zombie workers behind; the join is retried
    until it completes, and only then does any pending interrupt propagate.
    """
    interrupted = False
    pool.terminate()
    while True:
        try:
            pool.join()
            break
        except KeyboardInterrupt:
            interrupted = True
            continue
    if interrupted:
        raise KeyboardInterrupt


def _make_pool(workers: int, initializer=None, initargs: Tuple = ()):
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        # Fork shares the parent's warmed memos (shape tables, catalogues)
        # with every worker for free.
        context = multiprocessing.get_context("fork")
    else:  # pragma: no cover - non-POSIX hosts
        context = multiprocessing.get_context()
    return context.Pool(
        processes=workers, initializer=initializer, initargs=initargs
    )


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: Tuple = (),
    supervise: Optional[bool] = None,
    **supervise_options,
) -> List[R]:
    """``[func(x) for x in items]``, fanned out over ``workers`` processes.

    Order-preserving; falls back to the serial loop for ``workers<=1``,
    single-item inputs, or hosts where no pool can be started (the
    ``initializer`` is *not* run on the serial paths — the parent already
    has whatever state it would seed).  ``initializer(*initargs)`` runs
    once per worker process at pool start; callers use it to ship
    precomputed tables to spawn-started workers instead of paying a
    rebuild in every process.

    Multi-worker runs go through the supervised engine by default — worker
    deaths, hangs past ``$REPRO_TASK_TIMEOUT`` and corrupt payloads are
    retried (``$REPRO_RETRIES``) instead of aborting the sweep, and
    worker-side exceptions re-raise with the remote traceback chained on.
    Extra keyword options (``retries=``, ``task_timeout=``, ``report=``,
    ``fault_plan=``, …) pass through to
    :func:`repro.dispatch.supervise.supervised_map`; ``supervise=False``
    selects the legacy bare-``Pool`` path.
    """
    items = list(items)
    workers = resolve_workers(workers)
    if workers <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    if resolve_supervise(supervise):
        from .supervise import supervised_map

        return supervised_map(
            func,
            items,
            workers=workers,
            initializer=initializer,
            initargs=initargs,
            **supervise_options,
        )
    # The pool is never larger than the item count; chunks must be sized
    # for the *actual* pool, or a small input on a large ``workers`` gets
    # one giant chunk per live worker and no load balancing at all.
    _check_shutdown()
    pool_size = min(workers, len(items))
    try:
        pool = _make_pool(pool_size, initializer, initargs)
    except (ImportError, OSError, ValueError):  # pragma: no cover - host-specific
        return [func(item) for item in items]
    try:
        if chunk_size is None:
            chunk_size = _default_chunk_size(len(items), pool_size)
        return pool.map(func, items, chunksize=chunk_size)
    finally:
        _shutdown_pool(pool)


def imap_ordered(
    func: Callable[[T], R],
    tasks: Sequence[T],
    workers: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: Tuple = (),
    supervise: Optional[bool] = None,
    **supervise_options,
) -> Iterator[R]:
    """Lazily yield ``func(task)`` in task order; the caller may stop early.

    This is the early-exit primitive of the bounded searches: chunks are
    consumed in generation order, so breaking at the first hit reproduces
    the serial search's verdict (and its ``programs_examined`` count) while
    later chunks — possibly already running speculatively — are abandoned.
    ``initializer``/``initargs`` behave as in :func:`parallel_map` (run
    once per worker process, skipped on the serial fallbacks).

    Supervision semantics and the ``supervise=`` escape hatch are as in
    :func:`parallel_map`.
    """
    tasks = list(tasks)
    workers = resolve_workers(workers)
    if workers <= 1 or len(tasks) <= 1:
        for task in tasks:
            yield func(task)
        return
    if resolve_supervise(supervise):
        from .supervise import supervised_imap

        yield from supervised_imap(
            func,
            tasks,
            workers=workers,
            initializer=initializer,
            initargs=initargs,
            **supervise_options,
        )
        return
    # Same audit as parallel_map: the pool is capped at the task count, and
    # anything derived from the worker count below must use the actual pool
    # size.  (imap dispatches one task per worker slot — chunk granularity
    # is the caller's shard layout — so nothing else to size here.)
    _check_shutdown()
    pool_size = min(workers, len(tasks))
    try:
        pool = _make_pool(pool_size, initializer, initargs)
    except (ImportError, OSError, ValueError):  # pragma: no cover - host-specific
        for task in tasks:
            yield func(task)
        return
    try:
        for result in pool.imap(func, tasks):
            _check_shutdown()
            yield result
    finally:
        _shutdown_pool(pool)
