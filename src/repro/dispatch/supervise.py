"""Supervised task execution: retries, deadlines, respawn, and quarantine.

:mod:`repro.dispatch.pool` is fair-weather: one worker death aborts the
whole sweep, a hung worker stalls it forever, and a task that keeps failing
kills the run.  This module is the bad-weather engine behind the same
order-preserving contract:

* every task gets ``retries`` extra attempts with capped exponential
  backoff before it is given up on;
* a per-task deadline (``task_timeout``) detects hung or dead workers; the
  offending worker is killed and respawned, and its task is retried;
* a worker that dies mid-task (OOM kill, segfault, ``os._exit``) is
  detected through its pipe, respawned, and its task retried;
* result payloads are checksummed across the process boundary; a corrupt
  payload is indistinguishable from a lost one and simply retried;
* worker-side exceptions travel back with their full remote traceback and
  are re-raised in the parent chained onto a :class:`RemoteTaskError`
  carrying the worker's stack;
* a task that *keeps* failing is bisected via the caller's ``split``
  callback down to an unsplittable unit, which is quarantined and reported
  in the :class:`SupervisionReport` instead of killing the run;
* when no worker process can be started at all, the whole bag degrades to
  a supervised in-process loop (same retry/quarantine semantics, no
  injection).

Deterministic fault injection (:mod:`repro.dispatch.faults`) hooks in at
the worker side: the plan decides, by task index and attempt, whether a
worker crashes, hangs, or corrupts its payload — which is what the chaos
parity suites drive.

Results are yielded in task order; consuming the iterator lazily and
breaking early abandons the outstanding tail, and worker teardown always
pairs ``kill()`` with ``join()`` so no zombies survive an early exit or a
``KeyboardInterrupt``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
import threading
import time
import traceback
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .faults import FaultPlan, corrupt_payload, resolve_fault_plan

RETRIES_ENV = "REPRO_RETRIES"
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"
BACKOFF_ENV = "REPRO_RETRY_BACKOFF"
SHUTDOWN_GRACE_ENV = "REPRO_SHUTDOWN_GRACE"

DEFAULT_RETRIES = 2
DEFAULT_BACKOFF = 0.05
BACKOFF_CAP = 5.0
DEFAULT_SHUTDOWN_GRACE = 5.0

_warned_env_values: set = set()


def _env_number(name: str, default, parse):
    """A numeric environment knob; unparseable values warn once and default."""
    # lint: allow(env-dynamic) — shared parser for the registered numeric
    # knobs above; every caller passes one of this module's *_ENV constants.
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return parse(raw)
    except ValueError:
        if (name, raw) not in _warned_env_values:
            _warned_env_values.add((name, raw))
            warnings.warn(
                f"ignoring unparseable {name}={raw!r}", RuntimeWarning, stacklevel=3
            )
        return default


def resolve_retries(retries: Optional[int] = None) -> int:
    """Effective retry budget: argument, else ``$REPRO_RETRIES``, else 2."""
    if retries is None:
        retries = _env_number(RETRIES_ENV, DEFAULT_RETRIES, int)
    return max(0, retries)


def resolve_task_timeout(task_timeout: Optional[float] = None) -> Optional[float]:
    """Effective per-task deadline: argument, else ``$REPRO_TASK_TIMEOUT``, else none."""
    if task_timeout is None:
        task_timeout = _env_number(TASK_TIMEOUT_ENV, None, float)
    if task_timeout is not None and task_timeout <= 0:
        return None
    return task_timeout


def resolve_backoff(backoff: Optional[float] = None) -> float:
    """Base retry backoff: argument, else ``$REPRO_RETRY_BACKOFF``, else 50 ms."""
    if backoff is None:
        backoff = _env_number(BACKOFF_ENV, DEFAULT_BACKOFF, float)
    return max(0.0, backoff)


def resolve_shutdown_grace(grace: Optional[float] = None) -> float:
    """Drain budget on shutdown: argument, else ``$REPRO_SHUTDOWN_GRACE``, else 5 s."""
    if grace is None:
        grace = _env_number(SHUTDOWN_GRACE_ENV, DEFAULT_SHUTDOWN_GRACE, float)
    return max(0.0, grace)


class ShutdownRequested(BaseException):
    """A graceful shutdown was requested mid-sweep.

    Raised out of the supervised engines *after* in-flight work has been
    drained (completed results are journaled via ``on_complete`` first), so
    a consumer's usual exception path — keep the checkpoint journal, close
    the stream — leaves a resumable sweep behind.  Derives from
    :class:`BaseException` so no worker-failure handler can swallow it.
    """


_shutdown_event = threading.Event()


def request_shutdown() -> None:
    """Ask every supervised engine in this process to drain and stop.

    Thread- and signal-safe; the engines notice at their next loop
    iteration, finish (and journal) what their workers already hold, and
    raise :class:`ShutdownRequested` to their consumer.
    """
    _shutdown_event.set()


def shutdown_requested() -> bool:
    """Has :func:`request_shutdown` been called (and not yet cleared)?"""
    return _shutdown_event.is_set()


def clear_shutdown() -> None:
    """Reset the shutdown flag (a long-lived embedder starting a new cycle)."""
    _shutdown_event.clear()


def _shutdown_signal_handler(signum, frame):
    if _shutdown_event.is_set():
        # A second signal means "stop being graceful": fall back to the
        # ordinary interrupt unwind (engines still kill+join their pools).
        raise KeyboardInterrupt
    request_shutdown()


def install_shutdown_signals(signums: Sequence[int] = (signal.SIGTERM, signal.SIGINT)):
    """Route SIGTERM/SIGINT into :func:`request_shutdown` (drain, not abort).

    The first signal starts a graceful drain; a second one raises
    :class:`KeyboardInterrupt` for the classic hard unwind.  Returns the
    ``{signum: previous handler}`` map for :func:`uninstall_shutdown_signals`.
    Only callable from the main thread (a ``ValueError`` from ``signal``
    propagates); long-running embedders like :mod:`repro.service` install
    their own asyncio handlers instead.
    """
    previous = {}
    for signum in signums:
        previous[signum] = signal.signal(signum, _shutdown_signal_handler)
    return previous


def uninstall_shutdown_signals(previous) -> None:
    """Restore the handlers saved by :func:`install_shutdown_signals`."""
    for signum, handler in previous.items():
        try:
            signal.signal(signum, handler)
        except (ValueError, TypeError):  # pragma: no cover - exotic handlers
            pass


class RemoteTaskError(Exception):
    """Carries a worker-side failure description, traceback included."""


@dataclass(frozen=True)
class QuarantinedTask:
    """One irreducible task given up on after exhausting every recovery."""

    task: Any
    attempts: int
    error: str
    remote_traceback: str

    def describe(self) -> str:
        return (
            f"quarantined after {self.attempts} attempt(s): {self.error}\n"
            f"{self.remote_traceback}"
        )


@dataclass
class SupervisionReport:
    """Mutable run statistics; pass one in to observe what supervision did."""

    retried: int = 0
    respawns: int = 0
    timeouts: int = 0
    crashes: int = 0
    corrupt_payloads: int = 0
    degraded_serial: bool = False
    quarantined: List[QuarantinedTask] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"supervision: {self.retried} retries, {self.respawns} respawns, "
            f"{self.timeouts} timeouts, {self.crashes} crashes, "
            f"{self.corrupt_payloads} corrupt payloads, "
            f"{len(self.quarantined)} quarantined"
            + (" (degraded to serial)" if self.degraded_serial else "")
        )


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def _worker_main(conn, func, initializer, initargs, plan: Optional[FaultPlan]):
    """The supervised worker loop: recv task, run, checksum, send.

    The payload is pickled *inside* a checksummed envelope: the parent can
    always unpickle the outer message and verify the digest before trusting
    the inner bytes, so a corrupted result can never masquerade as a
    verdict.  Exceptions are caught and shipped back with the formatted
    remote traceback (and the exception object itself when it pickles).
    """
    try:
        if initializer is not None:
            try:
                initializer(*initargs)
            except Exception:
                # A failed warm-up (e.g. a cache directory that cannot be
                # indexed) must not take the worker down: whatever the
                # initializer would have seeded is rebuilt lazily inside
                # the tasks themselves.  Dying here would make the
                # supervisor respawn the worker into the same failure —
                # a crash-loop that starves the sweep.
                warnings.warn(
                    "worker initializer failed; continuing without its "
                    f"warm-up\n{traceback.format_exc()}",
                    RuntimeWarning,
                )
        while True:
            message = conn.recv()
            if message is None:
                return
            job_id, fault_index, fault_attempt, task = message
            if plan is not None:
                # May never return: a crash exits the process, a hang
                # sleeps past the supervisor's deadline.
                plan.inject_before(fault_index, fault_attempt)
            try:
                result = func(task)
                try:
                    payload = pickle.dumps((True, result))
                except Exception as exc:  # unpicklable result
                    payload = _error_payload(exc, traceback.format_exc())
            except Exception as exc:
                payload = _error_payload(exc, traceback.format_exc())
            digest = hashlib.sha256(payload).hexdigest()
            if plan is not None and plan.corrupts(fault_index, fault_attempt):
                payload = corrupt_payload(payload)
            conn.send((job_id, digest, payload))
    except (EOFError, OSError, KeyboardInterrupt):  # parent gone / shutdown
        return


def _error_payload(exc: BaseException, tb: str) -> bytes:
    try:
        pickled = pickle.dumps(exc)
    except Exception:
        pickled = None
    return pickle.dumps((False, (type(exc).__name__, repr(exc), tb, pickled)))


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


@dataclass
class _WorkItem:
    root: int
    path: Tuple[int, ...]
    task: Any
    attempts: int = 0
    not_before: float = 0.0


@dataclass
class _Root:
    outstanding: int = 1
    split_up: bool = False
    tainted: bool = False
    results: Dict[Tuple[int, ...], Any] = field(default_factory=dict)


class _Worker:
    __slots__ = ("process", "conn", "item", "job_id", "deadline")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.item: Optional[_WorkItem] = None
        self.job_id: Optional[int] = None
        self.deadline: Optional[float] = None


def _join_obstinately(process) -> None:
    """``join()`` that survives a ``KeyboardInterrupt`` mid-wait."""
    while True:
        try:
            process.join()
            return
        except KeyboardInterrupt:
            continue


def _raise_remote(error: Tuple, attempts: int):
    """Re-raise a worker-side failure with the remote stack chained on."""
    name, rendered, tb, pickled = error
    cause = RemoteTaskError(
        f"task failed in worker after {attempts} attempt(s); "
        f"remote traceback:\n{tb}"
    )
    exc = None
    if pickled is not None:
        try:
            exc = pickle.loads(pickled)
        except Exception:
            exc = None
    if isinstance(exc, BaseException):
        raise exc from cause
    raise RemoteTaskError(f"{name}: {rendered}") from cause


def supervised_imap(
    func: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: Optional[int] = None,
    *,
    retries: Optional[int] = None,
    task_timeout: Optional[float] = None,
    backoff: Optional[float] = None,
    split: Optional[Callable[[Any], Optional[Tuple[Any, Any]]]] = None,
    merge: Optional[Callable[[List[Any]], Any]] = None,
    quarantine: bool = False,
    quarantine_result: Optional[Callable[[Any], Any]] = None,
    on_complete: Optional[Callable[[int, Any], None]] = None,
    initializer: Optional[Callable] = None,
    initargs: Tuple = (),
    fault_plan=None,
    report: Optional[SupervisionReport] = None,
) -> Iterator[Any]:
    """Yield ``func(task)`` in task order under full supervision.

    ``split(task)`` (optional) bisects a task that exhausted its retries
    into two halves — returning ``None`` marks it unsplittable; ``merge``
    (required with ``split``) folds the ordered sub-results of a split task
    back into one result for its original slot.  With ``quarantine`` true,
    an unsplittable failing task is recorded on ``report.quarantined`` and
    contributes ``quarantine_result(task)`` (default ``None``) instead of
    raising.  ``on_complete(index, result)`` fires as soon as a task's
    result is final — before ordered yielding, in completion order — and is
    what the checkpoint journal hooks; it is skipped for results tainted by
    a quarantined sub-task, so a resumed sweep retries them.

    Fault injection (``fault_plan`` / ``$REPRO_FAULT_PLAN``) only happens
    in worker processes: the serial fallback is the injection-free ground
    truth.
    """
    from .pool import resolve_workers

    tasks = list(tasks)
    if merge is None and split is not None:
        raise TypeError("split= requires merge= to fold sub-results")
    workers = resolve_workers(workers)
    retries = resolve_retries(retries)
    task_timeout = resolve_task_timeout(task_timeout)
    backoff = resolve_backoff(backoff)
    plan = resolve_fault_plan(fault_plan)
    if report is None:
        report = SupervisionReport()
    if not tasks:
        return
    if workers <= 1 or len(tasks) <= 1:
        yield from _serial_supervised(
            func, tasks, retries, backoff, split, merge, quarantine,
            quarantine_result, on_complete, report,
        )
        return
    yield from _parallel_supervised(
        func, tasks, min(workers, len(tasks)), retries, task_timeout, backoff,
        split, merge, quarantine, quarantine_result, on_complete,
        initializer, initargs, plan, report,
    )


def supervised_map(
    func: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: Optional[int] = None,
    **kwargs,
) -> List[Any]:
    """Eager list form of :func:`supervised_imap`."""
    return list(supervised_imap(func, tasks, workers, **kwargs))


# -- serial fallback --------------------------------------------------------


def _serial_supervised(
    func, tasks, retries, backoff, split, merge, quarantine,
    quarantine_result, on_complete, report,
):
    """The in-process engine: same retry/bisection/quarantine semantics.

    No fault injection and no deadlines (a hang in-process cannot be
    contained anyway), but a flaky or poisonous task is handled exactly as
    in the parallel engine, so consumers behave identically at
    ``workers=1``.
    """

    def attempt_leaf(task, budget):
        """(ok, result, leaves_quarantined) for one irreducible task."""
        failures = 0
        while True:
            try:
                return True, func(task), False
            except Exception as exc:
                failures += 1
                if failures <= budget:
                    report.retried += 1
                    time.sleep(min(BACKOFF_CAP, backoff * 2 ** (failures - 1)))
                    continue
                parts = split(task) if split is not None else None
                if parts is not None:
                    left = run_tree(parts[0], 0)
                    right = run_tree(parts[1], 0)
                    tainted = left[1] or right[1]
                    return True, merge([left[0], right[0]]), tainted
                if quarantine:
                    report.quarantined.append(
                        QuarantinedTask(
                            task=task,
                            attempts=failures,
                            error=repr(exc),
                            remote_traceback=traceback.format_exc(),
                        )
                    )
                    placeholder = (
                        quarantine_result(task) if quarantine_result else None
                    )
                    return True, placeholder, True
                raise

    def run_tree(task, budget):
        ok, result, tainted = attempt_leaf(task, budget)
        return result, tainted

    for index, task in enumerate(tasks):
        if _shutdown_event.is_set():
            raise ShutdownRequested(
                f"graceful shutdown after {index} of {len(tasks)} task(s)"
            )
        result, tainted = run_tree(task, retries)
        if on_complete is not None and not tainted:
            on_complete(index, result)
        yield result


# -- parallel engine --------------------------------------------------------


def _spawn_worker(func, initializer, initargs, plan) -> Optional[_Worker]:
    try:
        import multiprocessing

        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX hosts
            context = multiprocessing.get_context()
        parent_conn, child_conn = context.Pipe(duplex=True)
        process = context.Process(
            target=_worker_main,
            args=(child_conn, func, initializer, initargs, plan),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)
    except (ImportError, OSError, ValueError):  # pragma: no cover - host-specific
        return None


def _parallel_supervised(
    func, tasks, workers, retries, task_timeout, backoff,
    split, merge, quarantine, quarantine_result, on_complete,
    initializer, initargs, plan, report,
):
    from multiprocessing import connection as mpconnection

    roots = [_Root() for _ in tasks]
    pending: List[_WorkItem] = [
        _WorkItem(root=i, path=(), task=task) for i, task in enumerate(tasks)
    ]
    dispatch_count = [0] * len(tasks)
    completed: Dict[int, Any] = {}
    next_yield = 0
    job_counter = 0
    pool: List[_Worker] = []

    def finish_root(index: int) -> None:
        root = roots[index]
        if root.split_up:
            ordered = [root.results[path] for path in sorted(root.results)]
            result = merge(ordered)
        else:
            result = root.results[()]
        completed[index] = result
        if on_complete is not None and not root.tainted:
            on_complete(index, result)

    def complete_leaf(item: _WorkItem, result: Any, tainted: bool = False) -> None:
        root = roots[item.root]
        root.results[item.path] = result
        root.outstanding -= 1
        if tainted:
            root.tainted = True
        if root.outstanding == 0:
            finish_root(item.root)

    def fail_item(item: _WorkItem, error: Optional[Tuple]) -> None:
        """One failed attempt: retry with backoff, bisect, or quarantine."""
        item.attempts += 1
        if item.attempts <= retries:
            report.retried += 1
            item.not_before = time.monotonic() + min(
                BACKOFF_CAP, backoff * 2 ** (item.attempts - 1)
            )
            pending.append(item)
            return
        parts = split(item.task) if split is not None else None
        if parts is not None:
            root = roots[item.root]
            root.split_up = True
            root.outstanding += 1  # parent replaced by two children
            for offset, part in enumerate(parts):
                # Children get a single attempt each before splitting
                # further: poison isolation is a bisection, not a second
                # round of (already exhausted) transient-failure retries.
                pending.append(
                    _WorkItem(
                        root=item.root,
                        path=item.path + (offset,),
                        task=part,
                        attempts=retries,
                    )
                )
            return
        if quarantine:
            rendered = "unknown failure (worker crash, timeout, or corrupt payload)"
            tb = ""
            if error is not None:
                rendered, tb = f"{error[0]}: {error[1]}", error[2]
            report.quarantined.append(
                QuarantinedTask(
                    task=item.task,
                    attempts=item.attempts,
                    error=rendered,
                    remote_traceback=tb,
                )
            )
            placeholder = quarantine_result(item.task) if quarantine_result else None
            complete_leaf(item, placeholder, tainted=True)
            return
        if error is not None:
            _raise_remote(error, item.attempts)
        raise RemoteTaskError(
            f"task failed {item.attempts} time(s) without a reportable "
            "exception (worker crash, timeout, or corrupt payload)"
        )

    def kill_worker(worker: _Worker) -> None:
        try:
            worker.process.kill()
        except (OSError, AttributeError):  # pragma: no cover - already gone
            pass
        _join_obstinately(worker.process)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass

    def respawn(worker: _Worker) -> None:
        pool.remove(worker)
        replacement = _spawn_worker(func, initializer, initargs, plan)
        if replacement is not None:
            report.respawns += 1
            pool.append(replacement)
        # With no replacement the pool just shrinks; the serial tail-drain
        # below covers the pathological all-workers-lost case.

    def drain_for_shutdown() -> None:
        """Give busy workers one grace window to finish what they hold.

        Completions landing inside the window go through ``complete_leaf``
        — and hence ``on_complete``, i.e. the checkpoint journal — exactly
        as in the main loop; whatever is still running when the window
        closes is abandoned (killed by the ``finally`` teardown) and simply
        recomputed on resume.  No new work is dispatched.
        """
        deadline = time.monotonic() + resolve_shutdown_grace()
        while True:
            busy = [w for w in pool if w.item is not None]
            remaining = deadline - time.monotonic()
            if not busy or remaining <= 0:
                return
            ready = mpconnection.wait(
                [w.conn for w in busy], min(remaining, 0.2)
            )
            for conn in ready:
                worker = next(w for w in pool if w.conn is conn)
                try:
                    job_id, digest, payload = worker.conn.recv()
                except (EOFError, OSError):
                    worker.item = None
                    kill_worker(worker)
                    pool.remove(worker)
                    continue
                if worker.item is None or job_id != worker.job_id:
                    continue
                item, worker.item, worker.deadline = worker.item, None, None
                if hashlib.sha256(payload).hexdigest() != digest:
                    continue  # not trustworthy; recomputed on resume
                ok, value = pickle.loads(payload)
                if ok:
                    complete_leaf(item, value)
                # A worker-side failure this late is not retried: the task
                # stays unrecorded and the resume re-attempts it.

    try:
        for _ in range(workers):
            worker = _spawn_worker(func, initializer, initargs, plan)
            if worker is not None:
                pool.append(worker)
        if not pool:
            # No pool on this host at all: degrade to the serial engine.
            report.degraded_serial = True
            yield from _serial_supervised(
                func, list(tasks), retries, backoff, split, merge, quarantine,
                quarantine_result, on_complete, report,
            )
            return

        while next_yield < len(tasks):
            if _shutdown_event.is_set():
                drain_for_shutdown()
                raise ShutdownRequested(
                    f"graceful shutdown with {len(tasks) - next_yield} of "
                    f"{len(tasks)} task(s) unyielded"
                )
            now = time.monotonic()
            if not pool:
                # Every worker is gone and none could be respawned.  No
                # worker holds an item (death requeues it), so everything
                # left lives in ``pending``: drain it in-process with the
                # same failure handling, then fall through to the ordered
                # yield below.
                report.degraded_serial = True
                while pending:
                    if _shutdown_event.is_set():
                        raise ShutdownRequested(
                            "graceful shutdown during degraded-serial drain"
                        )
                    item = min(pending, key=lambda i: (i.root, i.path))
                    pending.remove(item)
                    delay = item.not_before - time.monotonic()
                    if delay > 0:
                        time.sleep(min(delay, BACKOFF_CAP))
                    try:
                        complete_leaf(item, func(item.task))
                    except Exception as exc:
                        fail_item(
                            item,
                            (
                                type(exc).__name__,
                                repr(exc),
                                traceback.format_exc(),
                                None,
                            ),
                        )
                while next_yield < len(tasks) and next_yield in completed:
                    yield completed.pop(next_yield)
                    next_yield += 1
                continue
            # Assign eligible pending work to idle workers.
            idle = [w for w in pool if w.item is None]
            if idle and pending:
                eligible = [i for i in pending if i.not_before <= now]
                for worker in idle:
                    if not eligible:
                        break
                    item = min(eligible, key=lambda i: (i.root, i.path))
                    pending.remove(item)
                    eligible.remove(item)
                    job_counter += 1
                    worker.item = item
                    worker.job_id = job_counter
                    worker.deadline = (
                        now + task_timeout if task_timeout is not None else None
                    )
                    try:
                        worker.conn.send(
                            (
                                job_counter,
                                item.root,
                                dispatch_count[item.root],
                                item.task,
                            )
                        )
                    except (OSError, ValueError, BrokenPipeError):
                        # Worker already dead (or task unpicklable — which
                        # recv-side supervision cannot see): treat as a
                        # failed attempt and replace the worker.
                        report.crashes += 1
                        dead, worker.item = worker.item, None
                        kill_worker(worker)
                        respawn(worker)
                        fail_item(dead, None)
                        continue
                    dispatch_count[item.root] += 1

            while next_yield < len(tasks) and next_yield in completed:
                yield completed.pop(next_yield)
                next_yield += 1
            if next_yield >= len(tasks):
                return

            busy = [w for w in pool if w.item is not None]
            if not busy:
                if pending:
                    sleep_until = min(i.not_before for i in pending)
                    time.sleep(max(0.0, min(1.0, sleep_until - now)))
                    continue
                # Workers are idle, nothing is pending, yet some root is
                # still incomplete: impossible with the requeue invariant,
                # but never busy-spin if it is ever violated.
                time.sleep(0.01)  # pragma: no cover
                continue

            timeout = 1.0
            deadlines = [w.deadline for w in busy if w.deadline is not None]
            if deadlines:
                timeout = min(timeout, max(0.0, min(deadlines) - now))
            if pending:
                eligible_at = min(i.not_before for i in pending)
                if eligible_at > now and any(w.item is None for w in pool):
                    timeout = min(timeout, max(0.0, eligible_at - now))

            ready = mpconnection.wait([w.conn for w in busy], timeout)
            for conn in ready:
                worker = next(w for w in pool if w.conn is conn)
                try:
                    job_id, digest, payload = worker.conn.recv()
                except (EOFError, OSError):
                    # The worker died mid-task (injected or real crash).
                    report.crashes += 1
                    dead, worker.item = worker.item, None
                    kill_worker(worker)
                    respawn(worker)
                    if dead is not None:
                        fail_item(dead, None)
                    continue
                if worker.item is None or job_id != worker.job_id:
                    continue  # stale message; cannot happen with 1 job/worker
                item, worker.item, worker.deadline = worker.item, None, None
                if hashlib.sha256(payload).hexdigest() != digest:
                    report.corrupt_payloads += 1
                    fail_item(item, None)
                    continue
                ok, value = pickle.loads(payload)
                if ok:
                    complete_leaf(item, value)
                else:
                    fail_item(item, value)

            # Deadline sweep: kill and respawn overdue workers.
            now = time.monotonic()
            for worker in list(pool):
                if (
                    worker.item is not None
                    and worker.deadline is not None
                    and now >= worker.deadline
                ):
                    report.timeouts += 1
                    overdue, worker.item = worker.item, None
                    kill_worker(worker)
                    respawn(worker)
                    fail_item(overdue, None)
    finally:
        for worker in pool:
            try:
                worker.process.kill()
            except (OSError, AttributeError):  # pragma: no cover
                pass
        for worker in pool:
            _join_obstinately(worker.process)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
