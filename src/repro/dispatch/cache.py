"""A persistent, content-addressed verdict cache.

Verdicts of the per-program queries (litmus expectations, SC-DRF and
compilation-violation checks) depend on nothing but the *structure* of the
program, the model configuration, and the checker semantics.  The cache
therefore keys every entry by a canonical SHA-256 fingerprint of exactly
those inputs:

* the program AST, serialised structurally (dataclass fields, enums,
  tuples) with incidental metadata — names, descriptions — excluded;
* the model configuration (a :class:`~repro.core.js_model.JsModel` value,
  the SC-oracle marker, or per-query flags like ``use_operational``);
* :data:`SEMANTICS_REVISION`, bumped whenever a change to the checker can
  alter any verdict — bumping it orphans every existing entry at once.

Storage is one JSON file per verdict under ``<dir>/<hh>/<hash>.json``.
Writes go through a temp file + ``os.replace`` so concurrent shard workers
can share a cache directory, and every entry carries a checksum of its
verdict payload.  Unreadable, truncated, checksum-failing or foreign files
are treated as misses (the verdict is recomputed and the entry rewritten) —
the cache can never turn a correct sweep into a wrong one, only a cold one.
Corrupt entries are additionally *quarantined*: the file is renamed to
``*.corrupt`` (so it is never re-parsed on every later lookup), counted on
:meth:`VerdictCache.stats`, and warned about once per process.

Hardening knobs: ``REPRO_CACHE_QUOTA`` bounds the cache directory's size
(``512M``-style suffixes accepted) with oldest-first (LRU-by-mtime)
eviction checked every :data:`QUOTA_CHECK_INTERVAL` writes; a cache whose
directory turns out to be unwritable degrades to read-only mode (hits still
served, writes skipped, one warning) instead of failing every ``put``.

The cache location comes from the ``REPRO_VERDICT_CACHE`` environment
variable (``off``/``0``/``none`` disable it; unset means no caching) or an
explicit :class:`VerdictCache` handed to the consumer APIs.

Two storage backends implement this API: the file-per-verdict layout in
this module (the default) and the crash-safe append-only segment log in
:mod:`repro.dispatch.store`, selected by ``REPRO_CACHE_BACKEND=segments``
(or sniffed automatically from a directory that already contains segment
files).  :func:`open_cache` is the backend-dispatching constructor; both
backends share the same keys and verdict payloads, so a directory can be
migrated between them (``repro-cache migrate``) without losing a verdict.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import threading
import time
import warnings
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

SEMANTICS_REVISION = "2"
"""Revision tag of the verdict-affecting semantics.

Bump this whenever the models, the enumeration, or the searches change in a
way that can alter any recorded verdict; stale entries are then never read
again (the revision is part of every key's preimage).
"""

CACHE_ENV = "REPRO_VERDICT_CACHE"
QUOTA_ENV = "REPRO_CACHE_QUOTA"
BACKEND_ENV = "REPRO_CACHE_BACKEND"
CORRUPT_TTL_ENV = "REPRO_CORRUPT_TTL"

DISABLED_ENV_VALUES = frozenset({"", "0", "off", "no", "none", "disabled"})
"""The values every ``REPRO_*`` on/off knob treats as "disabled".

Shared across the dispatch layer and the static analyzer's ``REPRO_ANALYZE``
gate so all boolean knobs parse identically.
"""

_DISABLED_VALUES = DISABLED_ENV_VALUES

_BACKEND_NAMES = {
    "files": "files",
    "file": "files",
    "json": "files",
    "segments": "segments",
    "segment": "segments",
    "log": "segments",
}

QUOTA_CHECK_INTERVAL = 64
"""Writes between size-quota checks (walking the directory is not free)."""

QUOTA_EVICT_TO = 0.8
"""Eviction compacts the cache down to this fraction of the quota."""

_SIZE_SUFFIXES = {"k": 2 ** 10, "m": 2 ** 20, "g": 2 ** 30}


def parse_size(raw: str) -> int:
    """``"512M"``-style size strings to bytes (plain integers pass through)."""
    raw = raw.strip().lower()
    if raw and raw[-1] in _SIZE_SUFFIXES:
        return int(float(raw[:-1]) * _SIZE_SUFFIXES[raw[-1]])
    return int(raw)


def _quota_from_env() -> Optional[int]:
    raw = os.environ.get(QUOTA_ENV, "").strip()
    if raw.lower() in _DISABLED_VALUES:
        return None
    try:
        return parse_size(raw)
    except ValueError:
        warnings.warn(
            f"ignoring unparseable {QUOTA_ENV}={raw!r} (expected bytes, "
            "optionally with a K/M/G suffix)",
            RuntimeWarning,
            stacklevel=3,
        )
        return None


class _Miss:
    """Sentinel distinguishing 'not cached' from a cached falsy verdict."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "MISS"

    def __bool__(self) -> bool:
        return False


MISS = _Miss()


def canonical(obj: Any) -> Any:
    """A JSON-serialisable canonical form of ``obj`` for fingerprinting.

    Handles the value vocabulary of this package: primitives, tuples/lists,
    dicts, (frozen)sets, ranges, enums and (frozen) dataclasses.  Dataclass
    instances serialise as ``["@ClassName", [[field, value], ...]]`` so two
    structurally equal ASTs fingerprint identically regardless of object
    identity.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, bytes):
        return ["@bytes", obj.hex()]
    if isinstance(obj, enum.Enum):
        return ["@enum", type(obj).__name__, obj.name]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [
            "@" + type(obj).__name__,
            [[f.name, canonical(getattr(obj, f.name))] for f in dataclasses.fields(obj)],
        ]
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, range):
        return ["@range", obj.start, obj.stop, obj.step]
    if isinstance(obj, (set, frozenset)):
        encoded = sorted(
            (canonical(item) for item in obj),
            key=lambda c: json.dumps(c, sort_keys=True),
        )
        return ["@set", encoded]
    if isinstance(obj, dict):
        items = [[canonical(k), canonical(v)] for k, v in obj.items()]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return ["@dict", items]
    raise TypeError(f"cannot canonicalise {type(obj).__name__!s} for fingerprinting")


def fingerprint(*parts: Any) -> str:
    """The SHA-256 hex digest of the canonical form of ``parts``."""
    blob = json.dumps(
        [canonical(part) for part in parts], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


_EXCLUDED_PROGRAM_FIELDS = frozenset({"name", "description"})


def program_fingerprint(program: Any) -> str:
    """The content hash of a litmus program's *structure*.

    Deliberately excludes ``name`` and ``description``: generated sweeps
    label programs positionally (``shape-17``), and overlapping corpora
    should share verdicts whenever the buffers and threads coincide.  The
    preimage covers the program type's qualified name and *every other*
    dataclass field, so two structurally-similar programs of different
    types — or of a future ``Program`` grown a semantics-bearing field —
    can never collide on one fingerprint.  Non-dataclass program types
    raise :class:`TypeError` outright: a silently degraded fingerprint
    would poison the persistent verdict cache with colliding entries.

    Memoised per (immutable) ``Program`` object: a warm-cache sweep pays
    one SHA-256 of the full AST per program instead of one per lookup, and
    repeated queries against the same object (expectation sets, sweep
    re-checks) become dictionary hits.  The memo rides along when programs
    are pickled to shard workers.  It is read from the instance ``__dict__``
    only — never through ``getattr`` — so a class-level attribute of the
    same name cannot serve one stale hash for every instance.
    """
    state = getattr(program, "__dict__", None)
    cached = state.get("_fingerprint_memo") if isinstance(state, dict) else None
    if cached is None:
        if not dataclasses.is_dataclass(program) or isinstance(program, type):
            raise TypeError(
                "cannot fingerprint non-dataclass program of type "
                f"{type(program).__qualname__!s}"
            )
        # Raw field values: fingerprint() canonicalises the whole payload in
        # one recursive pass (pre-canonicalising here would walk it twice).
        payload = [
            [f.name, getattr(program, f.name)]
            for f in dataclasses.fields(program)
            if f.name not in _EXCLUDED_PROGRAM_FIELDS
        ]
        cached = fingerprint("program", type(program).__qualname__, payload)
        try:
            # Program is a frozen dataclass; the memo is not a field, so it
            # never enters equality, canonicalisation, or the hash itself.
            object.__setattr__(program, "_fingerprint_memo", cached)
        except (AttributeError, TypeError):  # slotted program types
            pass
    return cached


STALE_TMP_SECONDS = 3600.0
"""Age past which an orphaned ``*.tmp`` file in the cache dir is reclaimed.

Writers hold a temp file only for the instants between ``mkstemp`` and the
atomic rename, so anything this old is debris from an interrupted writer
(e.g. a ``KeyboardInterrupt`` between creating the file and entering the
cleanup scope), never a live write in progress.
"""

STALE_CORRUPT_SECONDS = 7 * 24 * 3600.0
"""Default age past which a quarantined ``*.corrupt`` file is reclaimed.

Quarantined entries exist only for post-mortems; a week-old one has had
its post-mortem or never will.  Override with ``REPRO_CORRUPT_TTL``
(seconds; ``off``/``0`` keeps quarantined files forever).
"""


def _corrupt_ttl_from_env() -> Optional[float]:
    """The quarantine TTL in seconds, or ``None`` when sweeping is disabled."""
    raw = os.environ.get(CORRUPT_TTL_ENV, "").strip()
    if not raw:
        return STALE_CORRUPT_SECONDS
    if raw.lower() in _DISABLED_VALUES:
        return None
    try:
        return float(raw)
    except ValueError:
        warnings.warn(
            f"ignoring unparseable {CORRUPT_TTL_ENV}={raw!r} (expected "
            "seconds); using the default quarantine TTL",
            RuntimeWarning,
            stacklevel=3,
        )
        return STALE_CORRUPT_SECONDS


# Directories already swept this process: concurrent shard workers all open
# the same cache directory, and one sweep per process is plenty.
_swept_directories: set = set()
_corrupt_swept_directories: set = set()

# Warn-once registries (per process, keyed by directory): one corruption
# warning and one degraded-mode warning per cache directory is plenty.
_warned_corrupt_dirs: set = set()
_warned_degraded_dirs: set = set()
_warned_backend_values: set = set()


def _verdict_checksum(verdict: Any) -> str:
    """The payload checksum stored inside (and verified against) an entry."""
    blob = json.dumps(verdict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class VerdictCache:
    """Content-addressed on-disk verdict store (see module docstring)."""

    def __init__(
        self,
        directory: os.PathLike,
        revision: Optional[str] = None,
        quota_bytes: Optional[int] = None,
    ):
        self.directory = Path(directory)
        self.revision = SEMANTICS_REVISION if revision is None else revision
        self.quota_bytes = _quota_from_env() if quota_bytes is None else quota_bytes
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0
        self.evictions = 0
        self.degraded = False
        self._writes_since_quota_check = 0
        self._sweep_stale_tmp()
        self._sweep_stale_corrupt()

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/corruption/eviction counters and the degraded flag."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "evictions": self.evictions,
            "degraded": self.degraded,
        }

    def _stale_file_patterns(self) -> Tuple[str, ...]:
        """Glob patterns (relative to the cache dir) of temp-file debris."""
        return ("*/*.tmp",)

    def _corrupt_file_patterns(self) -> Tuple[str, ...]:
        """Glob patterns (relative to the cache dir) of quarantined entries."""
        return ("*/*.corrupt",)

    def _sweep_aged_files(
        self, patterns: Iterable[str], max_age: float, registry: set
    ) -> None:
        """Reclaim matching files older than ``max_age``, once per directory
        per process.

        Every failure is ignored (the sweeps are hygiene, not correctness —
        debris wastes space but is never read as an entry), and the age
        cutoff guarantees nothing a live writer still holds is touched.
        """
        key = str(self.directory)
        if key in registry:
            return
        registry.add(key)
        try:
            if not self.directory.is_dir():
                return
            cutoff = time.time() - max_age
            for pattern in patterns:
                for path in self.directory.glob(pattern):
                    try:
                        if path.stat().st_mtime < cutoff:
                            path.unlink()
                    except OSError:
                        continue
        except OSError:  # pragma: no cover - host-specific listing failures
            return

    def _sweep_stale_tmp(self) -> None:
        """Reclaim orphaned temp files older than :data:`STALE_TMP_SECONDS`.

        Writers hold a temp file only for the instants between ``mkstemp``
        and the atomic rename, so anything that old is debris from an
        interrupted writer, never a live write in progress.
        """
        self._sweep_aged_files(
            self._stale_file_patterns(), STALE_TMP_SECONDS, _swept_directories
        )

    def _sweep_stale_corrupt(self) -> None:
        """Age out quarantined ``*.corrupt`` files past their TTL.

        Quarantine preserves corrupt bytes for a post-mortem, but nothing
        ever deletes them — on a long-lived cache directory they would
        otherwise accumulate forever *and* count against the size quota.
        The TTL comes from ``REPRO_CORRUPT_TTL`` (default one week;
        ``off`` disables the sweep entirely).
        """
        ttl = _corrupt_ttl_from_env()
        if ttl is None:
            return
        self._sweep_aged_files(
            self._corrupt_file_patterns(), ttl, _corrupt_swept_directories
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VerdictCache({str(self.directory)!r}, revision={self.revision!r})"

    # -- construction / transport -----------------------------------------

    @classmethod
    def from_env(cls) -> Optional["VerdictCache"]:
        """The environment-configured cache, or ``None`` when disabled/unset.

        The backend comes from ``REPRO_CACHE_BACKEND`` (or is sniffed from
        the directory's existing layout) — see :func:`open_cache`.
        """
        raw = os.environ.get(CACHE_ENV, "").strip()
        if raw.lower() in _DISABLED_VALUES:
            return None
        return open_cache(raw)

    @property
    def spec(self) -> Tuple[str, str]:
        """A picklable description; shard workers rebuild the cache from it."""
        return (str(self.directory), self.revision)

    @classmethod
    def from_spec(cls, spec: Optional[Tuple[str, ...]]) -> Optional["VerdictCache"]:
        """Rebuild a cache from its :attr:`spec` tuple (``None`` passes through).

        A 2-tuple is the classic file-per-verdict spec; a 3-tuple whose
        last element is a backend name dispatches to that backend
        (segment stores are *shared* per process, so every shard task in a
        worker reuses one scanned index).
        """
        if spec is None:
            return None
        if len(spec) >= 3 and spec[2] == "segments":
            from .store import SegmentVerdictCache

            return SegmentVerdictCache.shared(spec[0], spec[1])
        return cls(spec[0], spec[1])

    # -- keys ---------------------------------------------------------------

    def key(self, *parts: Any) -> str:
        """A cache key over ``parts``; the revision is always in the preimage."""
        return fingerprint(self.revision, *parts)

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    # -- storage ------------------------------------------------------------

    def _quarantine(self, key: str, reason: str) -> None:
        """Park a corrupt entry as ``*.corrupt`` so it is never re-parsed.

        A corrupt file left in place would be re-read (and re-fail) on
        every later lookup of its key; the rename makes the corruption a
        one-time cost and preserves the bytes for a post-mortem.  Counted,
        and warned about once per process per directory.
        """
        self.corrupt += 1
        path = self._path(key)
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            # Quarantine is best-effort; at worst the file stays a miss.
            pass
        dir_key = str(self.directory)
        if dir_key not in _warned_corrupt_dirs:
            _warned_corrupt_dirs.add(dir_key)
            warnings.warn(
                f"corrupt verdict-cache entry under {dir_key} ({reason}); "
                "quarantined as *.corrupt and recomputing (further "
                "corruption in this directory is counted silently — see "
                "VerdictCache.stats())",
                RuntimeWarning,
                stacklevel=4,
            )

    def get(self, key: str) -> Any:
        """The recorded verdict for ``key``, or :data:`MISS`.

        A missing file is a plain miss.  An unreadable, truncated,
        checksum-failing or foreign file is a *corrupt* miss: the entry is
        quarantined (renamed to ``*.corrupt``), counted, and the caller
        recomputes and overwrites — the cache can serve wrong bytes to
        nobody.
        """
        try:
            with self._path(key).open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return MISS
        except (OSError, ValueError):
            self.misses += 1
            self._quarantine(key, "unreadable or not valid JSON")
            return MISS
        if (
            not isinstance(entry, dict)
            or entry.get("key") != key
            or "verdict" not in entry
        ):
            self.misses += 1
            self._quarantine(key, "foreign or truncated entry schema")
            return MISS
        if "sha" in entry and entry["sha"] != _verdict_checksum(entry["verdict"]):
            self.misses += 1
            self._quarantine(key, "verdict payload fails its checksum")
            return MISS
        self.hits += 1
        return entry["verdict"]

    def _enter_degraded(self) -> None:
        """Switch to read-only mode after a directory-level write failure."""
        self.degraded = True
        dir_key = str(self.directory)
        if dir_key not in _warned_degraded_dirs:
            _warned_degraded_dirs.add(dir_key)
            warnings.warn(
                f"verdict-cache directory {dir_key} is unwritable; "
                "degrading to read-only mode (hits still served, new "
                "verdicts recomputed every run)",
                RuntimeWarning,
                stacklevel=4,
            )

    def put(self, key: str, verdict: Any) -> None:
        """Record ``verdict`` atomically (best-effort).

        Expected IO failures (read-only directories, ENOSPC) and
        unserialisable verdicts are swallowed — the cache stays cold, never
        wrong.  A failure to even *stage* the write (the directory itself
        is unwritable) flips the cache into read-only degraded mode: hits
        keep being served, and later ``put`` calls return immediately
        instead of re-failing the filesystem on every verdict.
        Control-flow exceptions (``KeyboardInterrupt``, ``SystemExit``, …)
        are *not* caught: the temp file is reclaimed in the ``finally``
        scope and the exception propagates.  Anything the cleanup misses
        (an interrupt in the instants around ``mkstemp``) is swept by
        :meth:`_sweep_stale_tmp` on the next cache open.
        """
        if self.degraded:
            return
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        except OSError:
            self._enter_degraded()
            return
        committed = False
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "key": key,
                        "verdict": verdict,
                        "sha": _verdict_checksum(verdict),
                    },
                    handle,
                )
            os.replace(tmp, path)
            committed = True
        except (OSError, TypeError, ValueError):
            # ENOSPC and friends, or a verdict json cannot serialise.
            pass
        finally:
            if not committed:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        if committed:
            self.writes += 1
            self._writes_since_quota_check += 1
            if (
                self.quota_bytes is not None
                and self._writes_since_quota_check >= QUOTA_CHECK_INTERVAL
            ):
                self._enforce_quota()

    def _enforce_quota(self) -> None:
        """Evict oldest entries (LRU by mtime) until under the size quota.

        Walks the entry files, so it only runs every
        :data:`QUOTA_CHECK_INTERVAL` writes.  Quarantined ``*.corrupt``
        files and stale temp files count toward the total and are evicted
        first (oldest-first overall); eviction stops at
        :data:`QUOTA_EVICT_TO` of the quota so one oversized write does not
        trigger a walk per put.
        """
        self._writes_since_quota_check = 0
        if self.quota_bytes is None:
            return
        try:
            files = []
            total = 0
            for path in self.directory.glob("*/*"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                # Quarantined and temp debris goes before any live entry:
                # it is never read back, so evicting it costs nothing.
                priority = 0 if path.suffix in (".corrupt", ".tmp") else 1
                files.append((priority, stat.st_mtime, stat.st_size, path))
                total += stat.st_size
            if total <= self.quota_bytes:
                return
            target = self.quota_bytes * QUOTA_EVICT_TO
            for _priority, _mtime, size, path in sorted(files):
                if total <= target:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                self.evictions += 1
        except OSError:  # pragma: no cover - host-specific listing failures
            return

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """The cached verdict, or ``compute()`` recorded under ``key``."""
        verdict = self.get(key)
        if verdict is MISS:
            verdict = compute()
            self.put(key, verdict)
        return verdict


def get_or_compute_aliased(
    cache: Any,
    key: str,
    alias_key: Any,
    compute: Callable[[], Any],
    parity: Optional[Callable[[Any], bool]] = None,
    on_alias_hit: Optional[Callable[[], None]] = None,
) -> Any:
    """``get_or_compute`` with a secondary (alias) index.

    The canonical cache tier of the symmetry engine: ``key`` is the query's
    primary key, ``alias_key`` a class-level key shared by every query the
    caller has proven verdict-equivalent (e.g. keyed by a program's
    canonical fingerprint and canonically-relabeled outcome).  Lookup order
    is primary, then alias; an alias hit must first pass the caller's
    ``parity`` check (the read-back relabeling validation) before the
    verdict is replayed under the primary key.  A computed verdict is
    recorded under both keys, so any member of the class warms the whole
    class.  ``alias_key=None`` degrades to plain :meth:`get_or_compute`.

    ``alias_key`` may also be a zero-argument callable returning an
    ``(alias key, parity)`` pair: it is only invoked on a primary miss, so
    warm lookups never pay for building the alias (relabeling an outcome
    and hashing a canonical fingerprint cost more than the primary hit
    they would ride on).  The ``parity`` argument is ignored in that form.
    """
    verdict = cache.get(key)
    if verdict is not MISS:
        return verdict
    if callable(alias_key):
        alias_key, parity = alias_key()
    if alias_key is not None and alias_key != key:
        verdict = cache.get(alias_key)
        if verdict is not MISS and (parity is None or parity(verdict)):
            if on_alias_hit is not None:
                on_alias_hit()
            cache.put(key, verdict)
            return verdict
    verdict = compute()
    cache.put(key, verdict)
    if alias_key is not None and alias_key != key:
        cache.put(alias_key, verdict)
    return verdict


def resolve_backend(
    backend: Optional[str] = None, directory: Optional[os.PathLike] = None
) -> str:
    """The storage backend name (``"files"`` or ``"segments"``) to use.

    Precedence: an explicit ``backend`` argument, then the
    ``REPRO_CACHE_BACKEND`` environment variable, then *sniffing* — a
    directory that already contains segment files keeps being read as a
    segment store even with nothing configured (so a migrated cache never
    silently falls back to the empty legacy layout).  Unknown names warn
    once per process and fall back to the file backend.
    """
    raw = backend if backend is not None else os.environ.get(BACKEND_ENV, "")
    raw = raw.strip().lower()
    if raw:
        resolved = _BACKEND_NAMES.get(raw)
        if resolved is not None:
            return resolved
        if raw not in _warned_backend_values:
            _warned_backend_values.add(raw)
            warnings.warn(
                f"unknown cache backend {raw!r} (expected "
                "'files' or 'segments'); using the file-per-verdict backend",
                RuntimeWarning,
                stacklevel=3,
            )
        return "files"
    if directory is not None:
        from .store import is_segment_store

        if is_segment_store(directory):
            return "segments"
    return "files"


def open_cache(
    directory: os.PathLike,
    revision: Optional[str] = None,
    backend: Optional[str] = None,
    quota_bytes: Optional[int] = None,
) -> VerdictCache:
    """Open ``directory`` with the resolved storage backend.

    This is the backend-dispatching constructor: ``VerdictCache(dir)``
    always means the file-per-verdict layout, ``open_cache(dir)`` means
    *whatever the configuration and the directory's existing layout say*.
    """
    if resolve_backend(backend, directory) == "segments":
        from .store import SegmentVerdictCache

        return SegmentVerdictCache(directory, revision, quota_bytes)
    return VerdictCache(directory, revision, quota_bytes)


def warm_spec(spec: Optional[Tuple[str, ...]]) -> None:
    """Worker initializer: open (and index) the cache once per process.

    Passed as ``initializer=warm_spec, initargs=(cache_spec,)`` to the
    worker pool so a segment store pays its index scan at worker start,
    not inside the first task; the instance lands in the per-process
    shared registry that :meth:`VerdictCache.from_spec` consults.  A
    top-level function, hence picklable under any start method.
    """
    if isinstance(spec, tuple):
        VerdictCache.from_spec(spec)


LRU_TIER_ENV = "REPRO_LRU_TIER"
DEFAULT_LRU_CAPACITY = 4096

_warned_lru_values: set = set()


def resolve_lru_capacity(capacity: Optional[int] = None) -> int:
    """The in-process LRU tier's entry capacity (0 disables the tier).

    Argument, else ``$REPRO_LRU_TIER`` (``off``/``0`` disable), else
    :data:`DEFAULT_LRU_CAPACITY`.
    """
    if capacity is not None:
        return max(0, int(capacity))
    raw = os.environ.get(LRU_TIER_ENV, "").strip()
    if not raw:
        return DEFAULT_LRU_CAPACITY
    if raw.lower() in _DISABLED_VALUES:
        return 0
    try:
        return max(0, int(raw))
    except ValueError:
        if raw not in _warned_lru_values:
            _warned_lru_values.add(raw)
            warnings.warn(
                f"ignoring unparseable {LRU_TIER_ENV}={raw!r} (expected an "
                "entry count); using the default capacity",
                RuntimeWarning,
                stacklevel=3,
            )
        return DEFAULT_LRU_CAPACITY


class TieredVerdictCache:
    """A bounded in-process LRU tier layered above a persistent cache.

    A long-running process (the verdict service) answers its hottest keys
    from memory — no file open, no segment-index lookup, no JSON parse —
    while every verdict still lands in the backing store, so nothing served
    from the tier can outlive a process that crashed before persisting it.
    With ``backing=None`` the tier stands alone (a purely in-memory cache).

    Implements the consumer-facing :class:`VerdictCache` surface — ``get``
    / ``put`` / ``get_or_compute`` / ``key`` / ``stats`` / ``spec`` — and is
    thread-safe (the service's request threads share one instance).  The
    tier is transparent to correctness: keys are the same content-addressed
    fingerprints, a tier hit is a value the backing store (or this process)
    computed under that exact key, and eviction only ever costs a re-read.

    ``stats()`` merges the backing store's counters with the tier's own
    ``lru_hits`` / ``lru_misses`` / ``lru_evictions`` / ``lru_entries``.
    """

    def __init__(
        self,
        backing: Optional[VerdictCache] = None,
        capacity: Optional[int] = None,
        revision: Optional[str] = None,
    ):
        self.backing = backing
        self.capacity = resolve_lru_capacity(capacity)
        if revision is not None:
            self.revision = revision
        elif backing is not None:
            self.revision = backing.revision
        else:
            self.revision = SEMANTICS_REVISION
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.lru_hits = 0
        self.lru_misses = 0
        self.lru_evictions = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TieredVerdictCache(capacity={self.capacity}, "
            f"backing={self.backing!r})"
        )

    def key(self, *parts: Any) -> str:
        """Same preimage discipline as :meth:`VerdictCache.key`."""
        return fingerprint(self.revision, *parts)

    def get(self, key: str) -> Any:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.lru_hits += 1
                return self._entries[key]
            self.lru_misses += 1
        if self.backing is None:
            return MISS
        verdict = self.backing.get(key)
        if verdict is not MISS:
            self._admit(key, verdict)
        return verdict

    def _admit(self, key: str, verdict: Any) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[key] = verdict
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.lru_evictions += 1

    def put(self, key: str, verdict: Any) -> None:
        """Write through: the tier serves it, the backing store keeps it."""
        if self.backing is not None:
            self.backing.put(key, verdict)
        self._admit(key, verdict)

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        verdict = self.get(key)
        if verdict is MISS:
            verdict = compute()
            self.put(key, verdict)
        return verdict

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            tier = {
                "lru_hits": self.lru_hits,
                "lru_misses": self.lru_misses,
                "lru_evictions": self.lru_evictions,
                "lru_entries": len(self._entries),
                "lru_capacity": self.capacity,
            }
        merged = self.backing.stats() if self.backing is not None else {}
        merged.update(tier)
        return merged

    @property
    def spec(self):
        """Shard workers get the *backing* store's picklable spec.

        The tier itself is process-local by design — shipping it across a
        fork would fork its counters and pin its memory in every worker —
        so worker-side lookups go straight to the shared persistent store.
        ``None`` (no backing) means workers run uncached.
        """
        return self.backing.spec if self.backing is not None else None

    @property
    def journal_directory(self):
        """Checkpoint journals co-locate with the backing store's, if any."""
        return getattr(self.backing, "journal_directory", None)

    @property
    def directory(self):
        return self.backing.directory if self.backing is not None else None


def resolve_cache(cache: Any = None) -> Optional[VerdictCache]:
    """Normalise a consumer-facing ``cache=`` argument.

    ``None`` defers to the ``REPRO_VERDICT_CACHE`` environment variable,
    ``False`` disables caching outright, and a :class:`VerdictCache` passes
    through unchanged.
    """
    if cache is None:
        return VerdictCache.from_env()
    if cache is False:
        return None
    return cache
