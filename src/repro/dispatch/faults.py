"""Deterministic fault injection for the supervised dispatch layer.

A :class:`FaultPlan` names, ahead of time, exactly which task indices fail
and how — a worker crash (the process dies as if OOM-killed or segfaulted),
a hang (the worker sleeps past any reasonable deadline), or a corrupt
result payload (the bytes on the wire no longer match their checksum).
Faults are *attempt-scoped*: a fault listed for task ``i`` fires on the
first ``times`` attempts of that task (default 1), so the supervisor's
retry of the same task succeeds and the chaos parity suites can assert
bit-identical verdicts against a fault-free serial run.

Plans come from the ``REPRO_FAULT_PLAN`` environment variable (inherited by
worker processes) or are passed explicitly to the supervised entry points.
The spec grammar is a comma/semicolon-separated list of::

    crash@INDEX         kill the worker process at task INDEX (os._exit)
    hang@INDEX          sleep ``hang_seconds`` at task INDEX
    corrupt@INDEX       deliver an undecodable payload for task INDEX
    KIND@INDEXxTIMES    fire on the first TIMES attempts instead of 1
    hang=SECONDS        set the hang duration (default 3600)

e.g. ``REPRO_FAULT_PLAN="crash@2;hang@5;corrupt@7;hang=30"``.  Seeded
random plans are built with :meth:`FaultPlan.seeded`: indices are chosen by
a hash of ``(seed, index)``, so one ``(seed, rates)`` pair names the same
fault schedule on every host and every run.

Injection happens only in supervised *worker processes* (and, for ``crash``
and ``corrupt``, only where the supervisor can contain the damage); the
serial fallback path never injects, which is what makes a serial run the
ground truth the chaos suites compare against.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

CRASH = "crash"
HANG = "hang"
CORRUPT = "corrupt"
_KINDS = (CRASH, HANG, CORRUPT)

DEFAULT_HANG_SECONDS = 3600.0
"""Default sleep of an injected hang: far past any sane task deadline."""

CRASH_EXIT_CODE = 87
"""Exit status of an injected worker crash (distinguishable from real ones)."""


class FaultPlanError(ValueError):
    """An unparseable ``REPRO_FAULT_PLAN`` specification."""


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: ``kind`` fires at ``index`` for ``times`` attempts."""

    kind: str
    index: int
    times: int = 1


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults, keyed by task index.

    ``faults`` maps a task index to the fault scheduled there (one fault per
    index: the spec is a schedule, not a distribution).  The plan is
    picklable and serialises back to its spec string, so it survives both
    ``fork`` and ``spawn`` workers and the environment round-trip.
    """

    faults: Dict[int, Fault] = field(default_factory=dict)
    hang_seconds: float = DEFAULT_HANG_SECONDS

    # -- construction -------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULT_PLAN`` grammar (see module docstring)."""
        faults: Dict[int, Fault] = {}
        hang_seconds = DEFAULT_HANG_SECONDS
        for raw_token in spec.replace(";", ",").split(","):
            token = raw_token.strip()
            if not token:
                continue
            if token.lower().startswith("hang="):
                try:
                    hang_seconds = float(token[5:])
                except ValueError:
                    raise FaultPlanError(
                        f"bad hang duration in fault-plan token {token!r}"
                    ) from None
                continue
            kind, sep, where = token.partition("@")
            kind = kind.strip().lower()
            if not sep or kind not in _KINDS:
                raise FaultPlanError(
                    f"bad fault-plan token {token!r} "
                    f"(expected KIND@INDEX with KIND in {_KINDS})"
                )
            where, times_sep, times_raw = where.partition("x")
            try:
                index = int(where)
                times = int(times_raw) if times_sep else 1
            except ValueError:
                raise FaultPlanError(
                    f"bad index/repeat in fault-plan token {token!r}"
                ) from None
            if index < 0 or times < 1:
                raise FaultPlanError(
                    f"bad index/repeat in fault-plan token {token!r}"
                )
            faults[index] = Fault(kind, index, times)
        return cls(faults=faults, hang_seconds=hang_seconds)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The environment-configured plan, or ``None`` when unset/empty."""
        raw = os.environ.get(FAULT_PLAN_ENV, "").strip()
        if not raw:
            return None
        return cls.parse(raw)

    @classmethod
    def seeded(
        cls,
        seed: int,
        total: int,
        crash: float = 0.0,
        hang: float = 0.0,
        corrupt: float = 0.0,
        hang_seconds: float = DEFAULT_HANG_SECONDS,
    ) -> "FaultPlan":
        """A reproducible random plan over ``total`` task indices.

        Each index draws one uniform value from ``sha256(seed, index)`` —
        no global RNG state, so the schedule depends on nothing but the
        arguments and is identical across processes, hosts and runs.  The
        rates partition the unit interval: ``crash`` first, then ``hang``,
        then ``corrupt``.
        """
        faults: Dict[int, Fault] = {}
        for index in range(total):
            digest = hashlib.sha256(f"{seed}:{index}".encode("ascii")).digest()
            draw = int.from_bytes(digest[:8], "big") / 2 ** 64
            if draw < crash:
                faults[index] = Fault(CRASH, index)
            elif draw < crash + hang:
                faults[index] = Fault(HANG, index)
            elif draw < crash + hang + corrupt:
                faults[index] = Fault(CORRUPT, index)
        return cls(faults=faults, hang_seconds=hang_seconds)

    # -- serialisation ------------------------------------------------------

    def spec(self) -> str:
        """A spec string that parses back to this plan."""
        tokens = [
            f"{fault.kind}@{fault.index}" + (f"x{fault.times}" if fault.times != 1 else "")
            for fault in sorted(self.faults.values(), key=lambda f: f.index)
        ]
        if self.hang_seconds != DEFAULT_HANG_SECONDS:
            tokens.append(f"hang={self.hang_seconds:g}")
        return ",".join(tokens)

    # -- worker-side injection ---------------------------------------------

    def fault_at(self, index: int, attempt: int) -> Optional[Fault]:
        """The fault to fire for attempt ``attempt`` of task ``index``, if any."""
        fault = self.faults.get(index)
        if fault is not None and attempt < fault.times:
            return fault
        return None

    def inject_before(self, index: int, attempt: int) -> None:
        """Fire a crash/hang scheduled for this attempt (runs in the worker).

        ``crash`` exits the process immediately — no exception propagates,
        no result is sent, exactly like a kernel OOM kill.  ``hang`` sleeps
        ``hang_seconds``; a supervisor deadline is expected to kill the
        worker long before the sleep returns.  ``corrupt`` does nothing
        here (it is applied to the outgoing payload, see
        :meth:`corrupts`).
        """
        fault = self.fault_at(index, attempt)
        if fault is None:
            return
        if fault.kind == CRASH:
            os._exit(CRASH_EXIT_CODE)
        elif fault.kind == HANG:
            time.sleep(self.hang_seconds)

    def corrupts(self, index: int, attempt: int) -> bool:
        """Should the payload of this attempt be corrupted on the wire?"""
        fault = self.fault_at(index, attempt)
        return fault is not None and fault.kind == CORRUPT


def corrupt_payload(blob: bytes) -> bytes:
    """A deterministically mangled copy of ``blob``.

    The supervisor's checksum check must catch this regardless of blob
    content, so the corruption both flips bytes and truncates: even a
    single-byte payload comes back different.
    """
    mangled = bytes((b ^ 0x5A) for b in blob[: max(1, len(blob) // 2)])
    return b"\x00CORRUPT\x00" + mangled


def resolve_fault_plan(plan=None) -> Optional[FaultPlan]:
    """Normalise a ``fault_plan=`` argument.

    ``None`` defers to ``REPRO_FAULT_PLAN``, ``False`` disables injection
    outright, a string is parsed, and a :class:`FaultPlan` passes through.
    """
    if plan is None:
        return FaultPlan.from_env()
    if plan is False:
        return None
    if isinstance(plan, str):
        return FaultPlan.parse(plan)
    return plan
