"""A crash-safe, multi-process segment-log backend for the verdict cache.

The file-per-verdict layout of :mod:`repro.dispatch.cache` pays one inode,
one ``open`` and one directory walk per verdict — fine for a workstation
sweep, hopeless for a long-running verdict service.  This module stores the
same content-addressed entries in a handful of bounded *segment files*:

* every record is appended as ``magic | payload length | sha256[:16] |
  payload`` (the payload is the canonical JSON of ``{"k": key, "v":
  verdict}``), so any prefix of a segment is decodable and any torn or
  corrupt suffix is detectable;
* an in-memory ``key -> (segment, offset, length)`` index is rebuilt by a
  torn-tail-tolerant scan at open, extended incrementally as other
  processes append, and fully rebuilt whenever a read detects the disk
  moved under it (compaction, eviction);
* writes are multi-process-safe: each append takes an advisory ``flock``
  on the active segment, repairs any torn tail left by a killed writer
  (records after a tear would otherwise be unreachable), and writes the
  whole record with a single ``os.write`` on an ``O_APPEND`` descriptor.
  Readers never lock — a stale read fails its checksum and triggers an
  index rebuild, never a wrong verdict;
* when the active segment exceeds :data:`DEFAULT_SEGMENT_BYTES`
  (``REPRO_SEGMENT_BYTES``), writers roll to a fresh segment with an
  ``O_EXCL`` create (the loser of a race simply uses the winner's file);
* compaction rewrites the latest record of every live key into one merged
  file, atomically swaps it over the highest victim segment with
  ``os.replace``, and only then unlinks the shadowed lower segments — a
  ``SIGKILL`` at *any* point leaves either the original segments or the
  merged segment plus duplicates, never a lost committed record (the
  chaos drill in ``tests/test_store.py`` kills it at every step);
* the size quota (``REPRO_CACHE_QUOTA``) is enforced at *segment*
  granularity: byte accounting stats a handful of segment files instead of
  walking thousands of entries, quarantine sidecars and temp debris are
  evicted first, then whole oldest segments (never the active one without
  rolling it first).

The store implements the exact :class:`~repro.dispatch.cache.VerdictCache`
API (``get`` / ``put`` / ``get_or_compute`` / ``stats`` / ``spec``), is
selected by ``REPRO_CACHE_BACKEND=segments`` (or sniffed from a directory
that already contains segment files), and every verdict it serves is
bit-identical to the file-per-verdict backend — the keys, payloads and
checksums share one canonical encoding.

Tooling lives in the ``repro-cache`` CLI (also ``python -m
repro.dispatch.store``): ``migrate`` converts a legacy file-per-verdict
directory in place with a read-back parity check over every key before any
legacy file is removed, ``fsck`` scans for torn tails and mid-file
corruption (``--repair`` quarantines the bad byte ranges into ``*.corrupt``
sidecars and rewrites the segment from its valid records, resynchronising
on the record magic so later records are salvaged), ``compact`` merges
segments, and ``stats`` prints the health counters.
"""

from __future__ import annotations

import argparse
import errno
import fcntl
import hashlib
import json
import os
import struct
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .cache import (
    CACHE_ENV,
    MISS,
    QUOTA_CHECK_INTERVAL,
    QUOTA_EVICT_TO,
    SEMANTICS_REVISION,
    VerdictCache,
)
from .faults import resolve_fault_plan

SEGMENT_BYTES_ENV = "REPRO_SEGMENT_BYTES"

DEFAULT_SEGMENT_BYTES = 4 * 2 ** 20
"""Size past which the active segment is sealed and a fresh one started."""

MAGIC = b"RVS1"
_HEADER = struct.Struct("<4sI16s")  # magic, payload length, sha256[:16]
HEADER_SIZE = _HEADER.size

MAX_PAYLOAD_BYTES = 64 * 2 ** 20
"""Sanity bound on a record's length field: a corrupt header cannot make a
scanner allocate gigabytes or skip over the rest of the segment."""

_SEGMENT_GLOB = "seg-*.log"

COMPACT_STEPS = (
    "start",
    "victims-locked",
    "merged-written",
    "merged-swapped",
    "shadows-unlinked",
)
"""Named kill points of :meth:`SegmentVerdictCache.compact`.

A :class:`~repro.dispatch.faults.FaultPlan` passed to ``compact`` is probed
at each step index (``crash@2`` dies with the merged file written but not
yet swapped in, and so on) — the chaos drill proves every kill point
recovers with zero lost committed records.
"""

# Per-process store registry: shard workers rebuilding a store from its spec
# share one instance (and its scanned index) instead of re-scanning the
# segment files once per task.  Safe across fork: the store holds no file
# descriptors between operations except the positionless pread cache.
_shared_stores: Dict[Tuple[str, str], "SegmentVerdictCache"] = {}


class _RecordError(Exception):
    """A record read that failed its structural or checksum validation."""


def _segment_bytes_from_env() -> int:
    raw = os.environ.get(SEGMENT_BYTES_ENV, "").strip()
    if not raw:
        return DEFAULT_SEGMENT_BYTES
    try:
        from .cache import parse_size

        return max(4096, parse_size(raw))
    except ValueError:
        return DEFAULT_SEGMENT_BYTES


def encode_record(key: str, verdict: Any) -> bytes:
    """One length-prefixed, checksummed record (raises on unserialisable)."""
    payload = json.dumps(
        {"k": key, "v": verdict}, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    digest = hashlib.sha256(payload).digest()[:16]
    return _HEADER.pack(MAGIC, len(payload), digest) + payload


def _try_parse(buf: bytes, pos: int) -> Optional[Tuple[str, int, Any]]:
    """``(key, record length, verdict)`` of the record at ``pos``, or ``None``.

    ``None`` covers every flaw a torn tail or corruption can produce: a
    short header, a foreign magic, an insane length field, truncated
    payload bytes, a checksum mismatch, or undecodable JSON.
    """
    if pos + HEADER_SIZE > len(buf):
        return None
    magic, length, digest = _HEADER.unpack_from(buf, pos)
    if magic != MAGIC or not 0 < length <= MAX_PAYLOAD_BYTES:
        return None
    end = pos + HEADER_SIZE + length
    if end > len(buf):
        return None
    payload = buf[pos + HEADER_SIZE : end]
    if hashlib.sha256(payload).digest()[:16] != digest:
        return None
    try:
        entry = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(entry, dict) or not isinstance(entry.get("k"), str) or "v" not in entry:
        return None
    return entry["k"], HEADER_SIZE + length, entry["v"]


def _scan_records(
    buf: bytes, base: int = 0
) -> Tuple[List[Tuple[str, int, int]], int]:
    """Valid-prefix scan: ``([(key, offset, length)], consumed bytes)``.

    Stops at the first flaw; ``consumed < len(buf)`` means a torn or
    corrupt tail follows (from ``base + consumed`` on).  Offsets are
    absolute (``base`` is where ``buf`` starts inside the segment).
    """
    entries: List[Tuple[str, int, int]] = []
    pos = 0
    while pos < len(buf):
        parsed = _try_parse(buf, pos)
        if parsed is None:
            break
        key, length, _verdict = parsed
        entries.append((key, base + pos, length))
        pos += length
    return entries, pos


def _scan_with_resync(
    buf: bytes,
) -> Tuple[List[Tuple[str, int, int]], List[Tuple[int, int]]]:
    """Full fsck scan: records plus corrupt byte ranges, resyncing on magic.

    Unlike :func:`_scan_records`, a flaw does not end the scan: the scanner
    searches forward for the next record magic and keeps going, so records
    *after* a corrupted region are salvaged rather than abandoned.
    """
    records: List[Tuple[str, int, int]] = []
    regions: List[Tuple[int, int]] = []
    pos = 0
    while pos < len(buf):
        parsed = _try_parse(buf, pos)
        if parsed is not None:
            key, length, _verdict = parsed
            records.append((key, pos, length))
            pos += length
            continue
        nxt = buf.find(MAGIC, pos + 1)
        end = len(buf) if nxt == -1 else nxt
        if regions and regions[-1][1] == pos:
            regions[-1] = (regions[-1][0], end)
        else:
            regions.append((pos, end))
        pos = end
    return records, regions


@dataclass
class _SegmentState:
    """What this process knows about one segment file."""

    scanned: int = 0  # bytes validated into the index
    size: int = 0  # file size at last look
    torn: bool = False  # unreadable bytes follow ``scanned``


class SegmentVerdictCache(VerdictCache):
    """Append-only segment-log verdict store (see module docstring).

    Drop-in for :class:`VerdictCache`: same keys, same verdict payloads,
    same ``stats()`` counters (plus segment-level extras), same degraded
    read-only mode on unwritable directories.
    """

    backend = "segments"

    def __init__(
        self,
        directory: os.PathLike,
        revision: Optional[str] = None,
        quota_bytes: Optional[int] = None,
        segment_bytes: Optional[int] = None,
    ):
        self.segment_bytes = (
            _segment_bytes_from_env() if segment_bytes is None else max(4096, segment_bytes)
        )
        self._index: Dict[str, Tuple[int, int, int]] = {}
        self._segments: Dict[int, _SegmentState] = {}
        self._read_fds: Dict[int, int] = {}
        super().__init__(directory, revision, quota_bytes)
        self._rebuild_index()

    # -- transport ----------------------------------------------------------

    @property
    def spec(self) -> Tuple[str, str, str]:
        """Picklable description; workers rebuild (and share) the store."""
        return (str(self.directory), self.revision, self.backend)

    @property
    def journal_directory(self) -> Path:
        """Where sweep checkpoint journals co-locate with this store.

        :func:`~repro.dispatch.journal.resolve_checkpoint` falls back to
        this when nothing else configures a checkpoint directory: a sweep
        whose verdicts live in a crash-safe store is resumable by default.
        """
        return self.directory / "journals"

    @classmethod
    def shared(cls, directory: os.PathLike, revision: Optional[str] = None
               ) -> "SegmentVerdictCache":
        """The per-process store for ``directory`` (one index scan, not N).

        Shard workers rebuilding the cache from a spec once per task would
        otherwise pay a full segment scan per task; fork-started workers
        additionally inherit the parent's already-warm instance.
        """
        key = (str(Path(directory)), SEMANTICS_REVISION if revision is None else revision)
        store = _shared_stores.get(key)
        if store is None:
            store = cls(directory, revision)
            _shared_stores[key] = store
        return store

    # -- filesystem layout --------------------------------------------------

    @staticmethod
    def _segment_name(num: int) -> str:
        return f"seg-{num:08d}.log"

    def _segment_path(self, num: int) -> Path:
        return self.directory / self._segment_name(num)

    def _list_segments(self) -> List[Tuple[int, Path]]:
        try:
            paths = list(self.directory.glob(_SEGMENT_GLOB))
        except OSError:
            return []
        segments = []
        for path in paths:
            stem = path.name[len("seg-") : -len(".log")]
            try:
                segments.append((int(stem), path))
            except ValueError:
                continue
        segments.sort()
        return segments

    def _create_segment(self, start_num: int) -> int:
        """Create the next segment at or after ``start_num``; return its number."""
        num = start_num
        while True:
            try:
                fd = os.open(
                    self._segment_path(num), os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
                os.close(fd)
                return num
            except FileExistsError:
                num += 1

    # -- hygiene sweeps (flat layout: override the ``*/*`` globs) -----------

    def _stale_file_patterns(self):
        return ("*.tmp",)

    def _corrupt_file_patterns(self):
        return ("*.corrupt",)

    # -- index maintenance --------------------------------------------------

    def _close_read_fds(self) -> None:
        for fd in self._read_fds.values():
            try:
                os.close(fd)
            except OSError:
                pass
        self._read_fds.clear()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self._close_read_fds()
        except Exception:
            pass

    def _read_fd(self, num: int) -> int:
        fd = self._read_fds.get(num)
        if fd is None:
            fd = os.open(self._segment_path(num), os.O_RDONLY)
            self._read_fds[num] = fd
        return fd

    def _merge_entry(self, key: str, num: int, offset: int, length: int) -> None:
        """Latest-wins index merge: higher (segment, offset) shadows lower."""
        current = self._index.get(key)
        if current is None or (num, offset) >= (current[0], current[1]):
            self._index[key] = (num, offset, length)

    def _rebuild_index(self) -> None:
        """Full torn-tail-tolerant scan of every segment (lock-free)."""
        self._close_read_fds()
        self._index = {}
        self._segments = {}
        for num, path in self._list_segments():
            try:
                fd = os.open(path, os.O_RDONLY)
            except OSError:
                continue  # vanished mid-listing (compaction/eviction)
            try:
                size = os.fstat(fd).st_size
                buf = os.pread(fd, size, 0)
            except OSError:
                continue
            finally:
                os.close(fd)
            entries, consumed = _scan_records(buf)
            for key, offset, length in entries:
                self._merge_entry(key, num, offset, length)
            self._segments[num] = _SegmentState(
                scanned=consumed, size=len(buf), torn=consumed < len(buf)
            )

    def _refresh(self) -> bool:
        """Fold other processes' appends into the index; True if it changed.

        New segments are scanned whole; known segments are delta-scanned
        from their validated end.  A segment that shrank or vanished means
        compaction or eviction moved the ground under us — full rebuild.
        """
        listed = dict(self._list_segments())
        if set(self._segments) - set(listed):
            self._rebuild_index()
            return True
        changed = False
        for num, path in sorted(listed.items()):
            state = self._segments.get(num)
            try:
                size = path.stat().st_size
            except OSError:
                self._rebuild_index()
                return True
            if state is None:
                state = _SegmentState()
                self._segments[num] = state
            elif size < state.size or (state.torn and size != state.size):
                # Shrunk (compaction/eviction replaced it), or a tear we
                # remember was repaired by a writer (truncated away, maybe
                # already written over) — the bytes past ``scanned`` are
                # not the ones we skipped, so delta state is meaningless.
                self._rebuild_index()
                return True
            if size > state.size and not state.torn:
                try:
                    fd = self._read_fd(num)
                    buf = os.pread(fd, size - state.scanned, state.scanned)
                except OSError:
                    self._rebuild_index()
                    return True
                entries, consumed = _scan_records(buf, base=state.scanned)
                for key, offset, length in entries:
                    self._merge_entry(key, num, offset, length)
                state.scanned += consumed
                state.torn = state.scanned < size
                changed = changed or bool(entries)
            state.size = size
        return changed

    # -- reads (lock-free) --------------------------------------------------

    def _read_at(self, num: int, offset: int, length: int) -> Tuple[str, Any]:
        try:
            fd = self._read_fd(num)
            data = os.pread(fd, length, offset)
        except OSError as exc:
            raise _RecordError(str(exc)) from exc
        if len(data) != length:
            raise _RecordError("short read")
        parsed = _try_parse(data, 0)
        if parsed is None:
            raise _RecordError("record fails validation")
        key, _length, verdict = parsed
        return key, verdict

    def get(self, key: str) -> Any:
        """The recorded verdict for ``key``, or :data:`MISS` (never locks).

        A read that fails — the segment was compacted, evicted or replaced
        since the index was built — triggers a full rebuild and one retry;
        a record another process appended since our last look is found by
        an incremental refresh.  Either way the store serves a correct
        verdict or a miss, never stale bytes.
        """
        refreshed = False
        rebuilt = False
        while True:
            entry = self._index.get(key)
            if entry is None:
                if not refreshed:
                    refreshed = True
                    if self._refresh():
                        continue
                self.misses += 1
                return MISS
            num, offset, length = entry
            try:
                stored_key, verdict = self._read_at(num, offset, length)
            except _RecordError:
                stored_key = None
            if stored_key == key:
                self.hits += 1
                return verdict
            # Stale index: the bytes moved (compaction swap, eviction).
            if rebuilt:
                self.misses += 1
                return MISS
            rebuilt = refreshed = True
            self._rebuild_index()

    # -- writes (flocked appends) -------------------------------------------

    def put(self, key: str, verdict: Any) -> None:
        """Append ``{key: verdict}`` to the active segment (best-effort).

        Multi-process-safe: the append happens under an exclusive
        ``flock`` of the active segment, after folding any bytes other
        writers appended into the index and truncating a torn tail a
        killed writer left (committed records are never truncated — a
        tear can only be the *last* incomplete write, and every complete
        record before it has already been validated into the index).
        Unserialisable verdicts and expected IO failures are swallowed
        exactly like the file backend; a directory that cannot even stage
        a write flips the store into read-only degraded mode.
        """
        if self.degraded:
            return
        try:
            record = encode_record(key, verdict)
        except (TypeError, ValueError):
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError:
            self._enter_degraded()
            return
        try:
            self._append(key, record)
        except OSError as exc:
            if exc.errno in (errno.EACCES, errno.EPERM, errno.EROFS):
                self._enter_degraded()
            return
        self.writes += 1
        self._writes_since_quota_check += 1
        if (
            self.quota_bytes is not None
            and self._writes_since_quota_check >= QUOTA_CHECK_INTERVAL
        ):
            self._enforce_quota()

    def _append(self, key: str, record: bytes) -> None:
        while True:
            segments = self._list_segments()
            if not segments:
                self._create_segment(1)
                continue
            num, path = segments[-1]
            try:
                fd = os.open(path, os.O_RDWR | os.O_APPEND)
            except FileNotFoundError:
                continue  # compacted/evicted between listing and open
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
                try:
                    path_stat = os.stat(path)
                except FileNotFoundError:
                    continue  # unlinked while we waited for the lock
                fd_stat = os.fstat(fd)
                if (fd_stat.st_ino, fd_stat.st_dev) != (
                    path_stat.st_ino,
                    path_stat.st_dev,
                ):
                    continue  # replaced (compaction swap) while we waited
                if fd_stat.st_size >= self.segment_bytes:
                    self._create_segment(num + 1)
                    continue
                state = self._segments.setdefault(num, _SegmentState())
                if fd_stat.st_size > state.scanned:
                    # Fold in other writers' records; under the exclusive
                    # lock nothing can append concurrently, so a flaw here
                    # is a genuine tear — truncate it away before our
                    # record lands, or it would be unreachable forever.
                    buf = os.pread(fd, fd_stat.st_size - state.scanned, state.scanned)
                    entries, consumed = _scan_records(buf, base=state.scanned)
                    for entry_key, offset, length in entries:
                        self._merge_entry(entry_key, num, offset, length)
                    state.scanned += consumed
                    if state.scanned < fd_stat.st_size:
                        os.ftruncate(fd, state.scanned)
                offset = state.scanned
                written = os.write(fd, record)
                if written != len(record):  # pragma: no cover - ENOSPC partials
                    os.ftruncate(fd, offset)
                    raise OSError(errno.ENOSPC, "short append")
                self._merge_entry(key, num, offset, len(record))
                state.scanned = offset + len(record)
                state.size = state.scanned
                state.torn = False
                return
            finally:
                try:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                except OSError:  # pragma: no cover
                    pass
                os.close(fd)

    # -- quota: segment-granularity LRU -------------------------------------

    def _storage_files(self) -> List[Tuple[int, float, int, Path, Optional[int]]]:
        """``(priority, mtime, size, path, segment number)`` of every file.

        Priority 0 — quarantine sidecars and temp debris — is evicted
        before any live segment.  Byte accounting stats a handful of files
        (segments, not entries), which is what makes the quota check cheap
        enough to run inline.
        """
        files = []
        for num, path in self._list_segments():
            try:
                stat = path.stat()
            except OSError:
                continue
            files.append((1, stat.st_mtime, stat.st_size, path, num))
        try:
            for path in self.directory.iterdir():
                if path.suffix not in (".corrupt", ".tmp"):
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                files.append((0, stat.st_mtime, stat.st_size, path, None))
        except OSError:
            pass
        return files

    def total_bytes(self) -> int:
        """Bytes the store occupies (segments + quarantine + temp debris)."""
        return sum(size for _p, _m, size, _path, _num in self._storage_files())

    def _enforce_quota(self) -> None:
        """Evict sidecars first, then whole oldest segments, down to target.

        Dropping a segment drops every key whose latest record lived in it
        (counted on ``evictions``); the active segment is rolled before it
        is ever evicted, so an in-flight append can at worst land in a
        just-evicted file — an immediate eviction, never a torn store.
        """
        self._writes_since_quota_check = 0
        if self.quota_bytes is None:
            return
        try:
            files = self._storage_files()
            total = sum(size for _p, _m, size, _path, _num in files)
            if total <= self.quota_bytes:
                return
            target = self.quota_bytes * QUOTA_EVICT_TO
            segment_numbers = sorted(
                num for _p, _m, _s, _path, num in files if num is not None
            )
            active = segment_numbers[-1] if segment_numbers else None
            # Oldest-first overall, quarantine/debris before live segments.
            for priority, _mtime, size, path, num in sorted(files):
                if total <= target:
                    break
                if num is not None and num == active:
                    # Never evict the live append target without sealing it:
                    # roll first so concurrent writers move on, then drop it.
                    active = self._create_segment(num + 1)
                removed_keys = 0
                if num is not None:
                    removed_keys = sum(
                        1 for entry in self._index.values() if entry[0] == num
                    )
                try:
                    os.unlink(path)
                except OSError:
                    continue
                total -= size
                if num is not None:
                    self._segments.pop(num, None)
                    fd = self._read_fds.pop(num, None)
                    if fd is not None:
                        try:
                            os.close(fd)
                        except OSError:
                            pass
                    self._index = {
                        key: entry
                        for key, entry in self._index.items()
                        if entry[0] != num
                    }
                    self.evictions += removed_keys
                else:
                    self.evictions += 1
        except OSError:  # pragma: no cover - host-specific listing failures
            return

    # -- compaction ----------------------------------------------------------

    @staticmethod
    def _compact_step(plan, step: int) -> None:
        if plan is not None:
            plan.inject_before(step, 0)

    def compact(self, fault_plan=None) -> Dict[str, Any]:
        """Merge sealed segments into one; crash-safe at every kill point.

        The merged file carries the *latest* record of every live key, is
        fsynced, then atomically swapped over the highest victim segment;
        only after the swap are the shadowed lower segments unlinked.  Any
        kill — before the swap, between swap and unlinks, mid-unlink —
        leaves every committed record reachable: either in the original
        segments, or in the merged segment which shadows whatever
        duplicates survive.  Writers are excluded from the victims by a
        fresh active segment created first (and by the per-victim
        ``flock`` held across the swap); a concurrent compactor is
        excluded by ``compact.lock``.  ``fault_plan`` injects deterministic
        crashes at the :data:`COMPACT_STEPS` kill points (testing only;
        explicit-only — ``$REPRO_FAULT_PLAN`` targets sweep workers and is
        deliberately not consulted here).
        """
        plan = resolve_fault_plan(fault_plan) if fault_plan is not None else None
        summary: Dict[str, Any] = {
            "compacted": 0,
            "live_records": 0,
            "reclaimed_bytes": 0,
            "skipped": False,
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            lock_fd = os.open(
                self.directory / "compact.lock", os.O_RDWR | os.O_CREAT, 0o644
            )
        except OSError:
            summary["skipped"] = True
            return summary
        victim_fds: List[Tuple[int, Path, int]] = []
        try:
            try:
                fcntl.flock(lock_fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                summary["skipped"] = True  # another compactor is running
                return summary
            self._compact_step(plan, 0)
            segments = self._list_segments()
            if len(segments) < 1:
                return summary
            # Seal everything: a fresh active segment takes new appends.
            highest = segments[-1][0]
            self._create_segment(highest + 1)
            victims = [(num, path) for num, path in segments if num <= highest]
            if not victims:
                return summary
            for num, path in victims:
                try:
                    fd = os.open(path, os.O_RDWR)
                except FileNotFoundError:
                    continue  # evicted in the meantime
                fcntl.flock(fd, fcntl.LOCK_EX)
                victim_fds.append((num, path, fd))
            if not victim_fds:
                return summary
            self._compact_step(plan, 1)
            live: Dict[str, Tuple[int, int, int]] = {}
            buffers: Dict[int, bytes] = {}
            victim_bytes = 0
            for num, path, fd in victim_fds:
                size = os.fstat(fd).st_size
                buf = os.pread(fd, size, 0)
                buffers[num] = buf
                victim_bytes += len(buf)
                entries, _consumed = _scan_records(buf)
                for key, offset, length in entries:
                    current = live.get(key)
                    if current is None or (num, offset) >= (current[0], current[1]):
                        live[key] = (num, offset, length)
            ordered = sorted(live.items(), key=lambda item: (item[1][0], item[1][1]))
            tmp_fd, tmp_path = tempfile.mkstemp(
                dir=str(self.directory), suffix=".tmp"
            )
            merged_bytes = 0
            with os.fdopen(tmp_fd, "wb") as handle:
                for _key, (num, offset, length) in ordered:
                    handle.write(buffers[num][offset : offset + length])
                    merged_bytes += length
                handle.flush()
                os.fsync(handle.fileno())
            self._compact_step(plan, 2)
            target = victim_fds[-1][1]
            os.replace(tmp_path, target)
            self._compact_step(plan, 3)
            for num, path, fd in victim_fds[:-1]:
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass
            self._compact_step(plan, 4)
            summary["compacted"] = len(victim_fds)
            summary["live_records"] = len(ordered)
            summary["reclaimed_bytes"] = victim_bytes - merged_bytes
            return summary
        finally:
            for _num, _path, fd in victim_fds:
                try:
                    os.close(fd)  # releases the flock
                except OSError:
                    pass
            try:
                os.close(lock_fd)
            except OSError:
                pass
            self._rebuild_index()

    # -- fsck ----------------------------------------------------------------

    def fsck(self, repair: bool = False) -> Dict[str, Any]:
        """Scan every segment for corruption; optionally quarantine it.

        Returns a report of valid records, torn/corrupt byte ranges and
        salvageable records found *after* corrupt regions (the scanner
        resynchronises on the record magic).  With ``repair=True``, each
        damaged segment is rewritten from its valid records only — under
        the same locks as compaction — and the corrupt bytes are appended
        to a ``<segment>.corrupt`` sidecar for post-mortem (sidecars are
        aged out by the quarantine sweep and evicted first by the quota).
        """
        report: Dict[str, Any] = {
            "segments": 0,
            "records": 0,
            "corrupt_regions": 0,
            "corrupt_bytes": 0,
            "repaired_segments": 0,
            "details": [],
        }
        for num, path in self._list_segments():
            try:
                buf = path.read_bytes()
            except OSError:
                continue
            records, regions = _scan_with_resync(buf)
            report["segments"] += 1
            report["records"] += len(records)
            if not regions:
                continue
            bad_bytes = sum(end - start for start, end in regions)
            report["corrupt_regions"] += len(regions)
            report["corrupt_bytes"] += bad_bytes
            report["details"].append(
                {
                    "segment": path.name,
                    "records": len(records),
                    "regions": [[start, end] for start, end in regions],
                }
            )
            if not repair:
                continue
            try:
                fd = os.open(path, os.O_RDWR)
            except OSError:
                continue
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
                buf = os.pread(fd, os.fstat(fd).st_size, 0)
                records, regions = _scan_with_resync(buf)
                if not regions:
                    continue  # another process repaired it meanwhile
                sidecar = path.with_suffix(".corrupt")
                with sidecar.open("ab") as handle:
                    for start, end in regions:
                        handle.write(buf[start:end])
                tmp_fd, tmp_path = tempfile.mkstemp(
                    dir=str(self.directory), suffix=".tmp"
                )
                with os.fdopen(tmp_fd, "wb") as handle:
                    for _key, offset, length in records:
                        handle.write(buf[offset : offset + length])
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_path, path)
                self.corrupt += len(regions)
                report["repaired_segments"] += 1
            except OSError:
                continue
            finally:
                try:
                    os.close(fd)
                except OSError:
                    pass
        if report["repaired_segments"]:
            self._rebuild_index()
        return report

    # -- observability -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        stats = super().stats()
        stats.update(
            {
                "backend": self.backend,
                "segments": len(self._segments),
                "keys": len(self._index),
            }
        )
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SegmentVerdictCache({str(self.directory)!r}, "
            f"revision={self.revision!r})"
        )


def is_segment_store(directory: os.PathLike) -> bool:
    """Does ``directory`` already hold segment files? (Backend sniffing.)"""
    try:
        return any(Path(directory).glob(_SEGMENT_GLOB))
    except OSError:
        return False


# ---------------------------------------------------------------------------
# migration: legacy file-per-verdict -> segments, with a parity checker
# ---------------------------------------------------------------------------


def _iter_legacy_entries(
    directory: Path,
) -> Iterator[Tuple[Path, Optional[str], Any]]:
    """Every legacy ``<hh>/<key>.json`` entry: ``(path, key, verdict)``.

    A file that fails the same validation :meth:`VerdictCache.get` applies
    (readable JSON, matching embedded key, matching checksum) yields
    ``(path, None, None)`` so the caller can quarantine it.
    """
    from .cache import _verdict_checksum

    for path in sorted(directory.glob("*/*.json")):
        key = path.stem
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            yield path, None, None
            continue
        if (
            not isinstance(entry, dict)
            or entry.get("key") != key
            or "verdict" not in entry
            or (
                "sha" in entry
                and entry["sha"] != _verdict_checksum(entry["verdict"])
            )
        ):
            yield path, None, None
            continue
        yield path, key, entry["verdict"]


def migrate_legacy(
    directory: os.PathLike,
    revision: Optional[str] = None,
    remove_legacy: bool = True,
) -> Dict[str, Any]:
    """Migrate a file-per-verdict cache directory to the segment store.

    Online and in place: every valid legacy entry is appended to segment
    files in the same directory (readers keep hitting the legacy files
    until they are removed), then a *read-back parity check* re-opens the
    store cold and compares the stored verdict of **every** migrated key
    against the legacy verdict.  Only a fully clean parity pass removes
    the legacy files; any failure leaves them untouched and is reported.
    Corrupt legacy entries are quarantined as ``*.corrupt`` (never
    migrated, never deleted) and counted.
    """
    directory = Path(directory)
    store = SegmentVerdictCache(directory, revision)
    migrated: Dict[str, Tuple[Any, Path]] = {}
    corrupt = 0
    for path, key, verdict in _iter_legacy_entries(directory):
        if key is None:
            corrupt += 1
            try:
                os.replace(path, path.with_suffix(".corrupt"))
            except OSError:
                pass
            continue
        store.put(key, verdict)
        migrated[key] = (verdict, path)
    # Read-back parity: a *fresh* store instance, so every verdict comes off
    # the disk through the full decode path, not from the writer's index.
    checker = SegmentVerdictCache(directory, revision)
    failures: List[str] = []
    for key, (verdict, _path) in migrated.items():
        stored = checker.get(key)
        if stored is MISS or stored != verdict:
            failures.append(key)
    report: Dict[str, Any] = {
        "migrated": len(migrated),
        "corrupt_legacy": corrupt,
        "parity_checked": len(migrated),
        "parity_failures": sorted(failures),
        "legacy_removed": False,
    }
    if failures or not remove_legacy:
        return report
    for _key, (_verdict, path) in migrated.items():
        try:
            path.unlink()
        except OSError:
            pass
    for subdir in directory.iterdir():
        if subdir.is_dir():
            try:
                subdir.rmdir()  # only succeeds when empty
            except OSError:
                pass
    report["legacy_removed"] = True
    return report


# ---------------------------------------------------------------------------
# the repro-cache CLI
# ---------------------------------------------------------------------------


def _cli_store(directory: str, revision: Optional[str]) -> SegmentVerdictCache:
    return SegmentVerdictCache(directory, revision)


def main(argv: Optional[List[str]] = None) -> int:
    """``repro-cache``: migrate / fsck / compact / stats for a cache dir.

    Exit codes: 0 success, 1 problem found (parity failure, corruption),
    2 usage error.
    """
    parser = argparse.ArgumentParser(
        prog="repro-cache",
        description=(
            "Maintenance tooling for the persistent verdict cache: migrate a "
            "legacy file-per-verdict directory to the crash-safe segment-log "
            "backend, check and repair segment integrity, compact, and "
            "report health counters."
        ),
    )
    parser.add_argument(
        "--dir",
        default=os.environ.get(CACHE_ENV, "").strip(),
        help="cache directory (default: $REPRO_VERDICT_CACHE)",
    )
    parser.add_argument(
        "--revision",
        default=None,
        help=f"semantics revision for key context (default: {SEMANTICS_REVISION})",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    migrate = sub.add_parser(
        "migrate",
        help="legacy file-per-verdict -> segments, with read-back parity "
        "over every key; legacy files are removed only on a clean pass",
    )
    migrate.add_argument(
        "--keep-legacy",
        action="store_true",
        help="run the migration and parity check but keep the legacy files",
    )
    fsck = sub.add_parser(
        "fsck",
        help="scan segments for torn tails and corruption (exit 1 if any); "
        "--repair quarantines corrupt bytes and rewrites the segments",
    )
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="rewrite damaged segments from their valid records, moving "
        "corrupt bytes into *.corrupt sidecars",
    )
    fsck.add_argument(
        "--json",
        action="store_true",
        help="emit the fsck report as one JSON object (machine-readable; "
        "exit codes unchanged)",
    )
    sub.add_parser("compact", help="merge sealed segments (crash-safe swap)")
    stats = sub.add_parser(
        "stats", help="print store health counters and layout"
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit the counters as one JSON object (machine-readable)",
    )
    args = parser.parse_args(argv)

    if not args.dir:
        parser.error("--dir (or $REPRO_VERDICT_CACHE) is required")
    directory = Path(args.dir).expanduser()

    if args.command == "migrate":
        report = migrate_legacy(
            directory, args.revision, remove_legacy=not args.keep_legacy
        )
        print(
            f"migrated {report['migrated']} entries "
            f"({report['corrupt_legacy']} corrupt legacy files quarantined)"
        )
        if report["parity_failures"]:
            print(
                f"PARITY FAILURE on {len(report['parity_failures'])} key(s); "
                "legacy files kept:"
            )
            for key in report["parity_failures"][:20]:
                print(f"  {key}")
            return 1
        print(
            f"read-back parity: {report['parity_checked']}/{report['migrated']} "
            "keys verdict-equal"
        )
        print(
            "legacy files removed"
            if report["legacy_removed"]
            else "legacy files kept (--keep-legacy)"
        )
        return 0

    store = _cli_store(str(directory), args.revision)
    if args.command == "fsck":
        report = store.fsck(repair=args.repair)
        if args.json:
            report = dict(report)
            report["repair"] = bool(args.repair)
            report["clean"] = not report["corrupt_regions"]
            print(json.dumps(report, sort_keys=True))
            return 1 if report["corrupt_regions"] and not args.repair else 0
        print(
            f"fsck: {report['segments']} segment(s), {report['records']} "
            f"valid record(s), {report['corrupt_regions']} corrupt region(s) "
            f"({report['corrupt_bytes']} bytes)"
        )
        for detail in report["details"]:
            print(
                f"  {detail['segment']}: {detail['records']} records, "
                f"corrupt ranges {detail['regions']}"
            )
        if args.repair and report["repaired_segments"]:
            print(
                f"repaired {report['repaired_segments']} segment(s); corrupt "
                "bytes quarantined as *.corrupt sidecars"
            )
        return 1 if report["corrupt_regions"] and not args.repair else 0
    if args.command == "compact":
        summary = store.compact()
        if summary["skipped"]:
            print("compaction skipped (another compactor holds the lock)")
            return 0
        print(
            f"compacted {summary['compacted']} segment(s) into one: "
            f"{summary['live_records']} live records, "
            f"{summary['reclaimed_bytes']} bytes reclaimed"
        )
        return 0
    if args.command == "stats":
        stats = store.stats()
        stats["bytes"] = store.total_bytes()
        if args.json:
            print(json.dumps(stats, sort_keys=True))
            return 0
        for name in sorted(stats):
            print(f"{name}: {stats[name]}")
        return 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
