"""x86-TSO as a compilation target for the uni-size JavaScript model (§6.3).

Compilation mapping (the standard one, shared with C++ SC atomics):

* ``Atomics.store`` → ``MOV`` followed by ``MFENCE``,
* ``Atomics.load``  → plain ``MOV``,
* non-atomic accesses → plain ``MOV``,
* ``Atomics.exchange``/``add`` → ``LOCK``-prefixed RMW.

The model is the usual axiomatic TSO: coherence per location plus
acyclicity of the global happens-before built from preserved program order
(everything except write-to-read), the fences implied by the mapping
(trailing ``MFENCE`` on SeqCst stores, implicitly fenced locked RMWs),
external reads-from, from-read and coherence.
"""

from __future__ import annotations

from ..core.events import SEQCST
from ..core.relations import Relation
from .model import UniExecution, rmw_atomicity, sc_per_location


def _preserved_program_order(uni: UniExecution) -> Relation:
    """TSO ppo: program order minus write→read pairs (store buffering)."""
    pairs = []
    for (a, b) in uni.po():
        first, second = uni.event(a), uni.event(b)
        if first.is_write and not first.is_rmw and second.is_read and not second.is_write:
            continue
        pairs.append((a, b))
    return Relation(pairs)


def _implied_fences(uni: UniExecution) -> Relation:
    """Orderings restored by the mapping's MFENCEs and locked RMWs.

    A SeqCst store carries a trailing ``MFENCE``, so it is globally ordered
    before every later access of its thread; locked RMWs are fully fenced
    in both directions.
    """
    pairs = []
    for (a, b) in uni.po():
        first, second = uni.event(a), uni.event(b)
        if first.is_write and first.ord is SEQCST:
            pairs.append((a, b))
        if second.is_rmw or first.is_rmw:
            pairs.append((a, b))
    return Relation(pairs)


def x86_consistent(uni: UniExecution) -> bool:
    """Is the uni-size execution allowed by x86-TSO under the mapping?"""
    if not sc_per_location(uni):
        return False
    if not rmw_atomicity(uni):
        return False
    ghb = (
        _preserved_program_order(uni)
        .union(_implied_fences(uni), uni.rfe(), uni.fr(), uni.co_relation())
    )
    return ghb.is_acyclic()
