"""ARMv7 as a compilation target for the uni-size JavaScript model (§6.3).

Compilation mapping (the fully fenced C++ SC scheme on ARMv7):

* ``Atomics.store`` → ``dmb; str; dmb``,
* ``Atomics.load``  → ``ldr; dmb`` with a leading ``dmb`` contributed by the
  surrounding SeqCst accesses (the classic "dmb everywhere" scheme),
* non-atomic accesses → plain ``ldr``/``str``,
* RMWs → ``dmb; ldrex/strex loop; dmb``.

As for POWER we model a *weakening* of the architecture: only the orderings
the mapping's ``dmb`` barriers restore are preserved, and the global axiom
requires acyclicity of those orderings together with external
communication.  ARMv7 (non-multi-copy-atomic, like POWER) shares the model
shape with :mod:`repro.imm.power`; the two differ in the fence placement
the respective mappings generate.
"""

from __future__ import annotations

from ..core.events import SEQCST
from ..core.relations import Relation
from .model import UniExecution, no_thin_air, rmw_atomicity, sc_per_location


def _dmb_order(uni: UniExecution) -> Relation:
    """Orderings restored by the surrounding ``dmb`` barriers of SeqCst accesses."""
    pairs = []
    for (a, b) in uni.po():
        first, second = uni.event(a), uni.event(b)
        # A dmb precedes every SeqCst access: earlier accesses are ordered
        # before it.
        if second.ord is SEQCST:
            pairs.append((a, b))
        # A dmb follows every SeqCst access: it is ordered before every
        # later access of its thread.
        if first.ord is SEQCST:
            pairs.append((a, b))
    return Relation(pairs)


def armv7_consistent(uni: UniExecution) -> bool:
    """Is the uni-size execution allowed by (this weakened) ARMv7 model?"""
    if not sc_per_location(uni):
        return False
    if not rmw_atomicity(uni):
        return False
    if not no_thin_air(uni):
        return False
    global_order = _dmb_order(uni).union(uni.rfe(), uni.fre(), uni.coe())
    return global_order.is_acyclic()
