"""RISC-V (RVWMO) as a compilation target for the uni-size JavaScript model (§6.3).

Compilation mapping (the fence-based scheme, equivalent in strength to the
``.aq``/``.rl`` annotated one for this fragment):

* ``Atomics.store`` → ``fence rw,w; sw; fence rw,rw``,
* ``Atomics.load``  → ``lw; fence r,rw`` with the global ordering provided
  by the stores' trailing full fences,
* non-atomic accesses → plain ``lw``/``sw``,
* RMWs → ``amoswap.aqrl`` (sequentially consistent AMO).

RVWMO's preserved program order also keeps same-address ordering and
syntactic dependencies; the fragment's dependencies are inside ``po``
already, and same-address ordering is subsumed by the coherence axiom, so
the model below keeps only the fence-restored orderings — again a
weakening, which is the safe direction for a compilation check.
"""

from __future__ import annotations

from ..core.events import SEQCST
from ..core.relations import Relation
from .model import UniExecution, no_thin_air, rmw_atomicity, sc_per_location


def _fence_order(uni: UniExecution) -> Relation:
    """Orderings restored by the mapping's RISC-V fences."""
    pairs = []
    for (a, b) in uni.po():
        first, second = uni.event(a), uni.event(b)
        # fence rw,w before a SeqCst store orders earlier accesses before it;
        # the AMO's .aq/.rl gives an RMW both directions.
        if second.ord is SEQCST and (second.is_write or second.is_rmw):
            pairs.append((a, b))
        # fence r,rw / fence rw,rw after a SeqCst load or store orders it
        # before later accesses.
        if first.ord is SEQCST:
            pairs.append((a, b))
    return Relation(pairs)


def riscv_consistent(uni: UniExecution) -> bool:
    """Is the uni-size execution allowed by (this weakened) RVWMO model?"""
    if not sc_per_location(uni):
        return False
    if not rmw_atomicity(uni):
        return False
    if not no_thin_air(uni):
        return False
    global_order = _fence_order(uni).union(uni.rfe(), uni.fre(), uni.coe())
    return global_order.is_acyclic()
