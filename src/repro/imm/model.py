"""Uni-size executions and the IMM-style intermediate model (§6.3).

§6.3 of the paper proves, in Coq and via the IMM framework of Podkopaev et
al., that the *uni-size* subset of the corrected JavaScript model compiles
correctly to x86-TSO, POWER, RISC-V, ARMv7 and ARMv8.  Reproducing the IMM
Coq development is out of scope; what this package reproduces is the
*statement* being proved, checked in a bounded fashion:

    for every uni-size JavaScript program within the bound, every execution
    allowed by the target architecture's model (under the standard
    compilation mapping) is allowed by the uni-size JavaScript model.

To keep the many target models comparable they all operate on the same
structure, :class:`UniExecution`: a uni-size view of a JavaScript candidate
execution (each distinct access footprint is an abstract location) equipped
with an explicit per-location coherence order.  The compilation mappings
(§6.3: ``SeqCst`` → fenced/ordered accesses, ``Unordered`` → plain
accesses) are folded into the target models as ordering guarantees attached
to the SeqCst events — e.g. the trailing ``MFENCE`` of the x86 mapping
appears as ``W_sc ; po`` edges in the x86 global-happens-before.  This
avoids duplicating a per-architecture instruction layer while exercising
exactly the per-execution obligations of Theorem 6.3.

The module also defines :func:`imm_consistent`, a simplified IMM-style
intermediate consistency predicate (coherence, atomicity, no-thin-air on
``po ∪ rf``, and a partial-SC acyclicity over SeqCst events); the paper's
factoring "architecture ⊨ IMM ⊨ JS" is mirrored by the bounded checks in
:mod:`repro.imm.compilation`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..core.events import Event, SEQCST
from ..core.execution import CandidateExecution
from ..core.relations import Relation

Location = Tuple[str, int, int]
"""An abstract uni-size location: (block, first byte, end byte)."""


@dataclass(frozen=True)
class UniExecution:
    """A uni-size execution: events at abstract locations, with rf and co.

    ``execution`` is the underlying JavaScript candidate execution (used to
    recover modes and thread identifiers); ``co`` maps every location to the
    coherence order of the writes at that location (Init first).
    """

    execution: CandidateExecution
    co: Tuple[Tuple[Location, Tuple[int, ...]], ...]

    # -- basic views ----------------------------------------------------------

    def event(self, eid: int) -> Event:
        return self.execution.event(eid)

    def events(self) -> Tuple[Event, ...]:
        return tuple(self.execution.events)

    def location_of(self, event: Event) -> Location:
        footprint = event.footprint
        return (event.block, footprint.start, footprint.stop)

    def po(self) -> Relation:
        return self.execution.sb

    def rf(self) -> Relation:
        return self.execution.reads_from()

    def co_relation(self) -> Relation:
        pairs = set()
        for _loc, order in self.co:
            pairs.update(Relation.from_total_order(order).pairs)
        return Relation(pairs)

    def fr(self) -> Relation:
        """From-read: a read is before every coherence-successor of its source."""
        co = self.co_relation()
        pairs = set()
        for (w, r) in self.rf():
            for (_w, later) in co:
                if _w == w and later != r:
                    pairs.add((r, later))
        return Relation(pairs)

    def same_location(self) -> Relation:
        events = self.events()
        pairs = set()
        for a in events:
            for b in events:
                if a.eid != b.eid and self.location_of(a) == self.location_of(b):
                    pairs.add((a.eid, b.eid))
        return Relation(pairs)

    def _split(self, relation: Relation) -> Tuple[Relation, Relation]:
        internal, external = [], []
        for (a, b) in relation:
            if self.event(a).tid == self.event(b).tid:
                internal.append((a, b))
            else:
                external.append((a, b))
        return Relation(internal), Relation(external)

    def rfe(self) -> Relation:
        return self._split(self.rf())[1]

    def fre(self) -> Relation:
        return self._split(self.fr())[1]

    def coe(self) -> Relation:
        return self._split(self.co_relation())[1]

    def eco(self) -> Relation:
        """Extended communication: ``(rf ∪ co ∪ fr)⁺``."""
        return self.rf().union(self.co_relation(), self.fr()).transitive_closure()

    # -- selectors -------------------------------------------------------------

    def seqcst_events(self) -> FrozenSet[int]:
        return frozenset(e.eid for e in self.events() if e.ord is SEQCST)

    def reads(self) -> FrozenSet[int]:
        return frozenset(e.eid for e in self.events() if e.is_read)

    def writes(self) -> FrozenSet[int]:
        return frozenset(e.eid for e in self.events() if e.is_write)

    def rmws(self) -> FrozenSet[int]:
        return frozenset(e.eid for e in self.events() if e.is_rmw)

    def po_loc(self) -> Relation:
        same = self.same_location()
        return self.po().intersection(
            same.union(self._init_overlap_pairs())
        )

    def _init_overlap_pairs(self) -> Relation:
        # The Init event covers every location, so po-loc (and coherence)
        # treat it as overlapping everything; po never relates it anyway.
        return Relation()


class UniSizeError(ValueError):
    """Raised when an execution cannot be viewed as uni-size."""


def is_unisize_execution(execution: CandidateExecution) -> bool:
    """No partial overlaps and no torn reads (``rf⁻¹`` functional)."""
    return (not execution.has_partial_overlaps()) and execution.rf_inverse_functional()


def coherence_orders(
    execution: CandidateExecution,
) -> Iterator[Tuple[Tuple[Location, Tuple[int, ...]], ...]]:
    """Enumerate per-location coherence orders for a uni-size execution.

    The Init event is coherence-first at every location (it is the
    initialising write of the whole buffer); the remaining writes at each
    location are permuted freely.
    """
    if not is_unisize_execution(execution):
        raise UniSizeError("execution has partial overlaps or torn reads")
    by_location: Dict[Location, List[int]] = {}
    init_eids = [e.eid for e in execution.events if e.is_init]
    for event in execution.events:
        if not event.is_write or event.is_init:
            continue
        footprint = event.footprint
        by_location.setdefault(
            (event.block, footprint.start, footprint.stop), []
        ).append(event.eid)
    # Locations only ever read still need the Init write as their sole writer.
    for event in execution.events:
        if event.is_read and not event.is_write:
            footprint = event.footprint
            by_location.setdefault(
                (event.block, footprint.start, footprint.stop), []
            )
    locations = sorted(by_location)
    init_of_block = {execution.event(e).block: e for e in init_eids}
    per_location = []
    for location in locations:
        init_eid = init_of_block[location[0]]
        writers = by_location[location]
        per_location.append(
            [
                ((init_eid,) + perm)
                for perm in itertools.permutations(sorted(writers))
            ]
        )
    for combo in itertools.product(*per_location):
        yield tuple(zip(locations, combo))


def uni_executions(execution: CandidateExecution) -> Iterator[UniExecution]:
    """All uni-size executions (coherence choices) over one candidate execution."""
    for co in coherence_orders(execution):
        yield UniExecution(execution=execution, co=co)


# ---------------------------------------------------------------------------
# shared consistency building blocks
# ---------------------------------------------------------------------------


def sc_per_location(uni: UniExecution) -> bool:
    """Coherence: acyclic(po-loc ∪ rf ∪ co ∪ fr) — common to every target model."""
    combined = uni.po_loc().union(uni.rf(), uni.co_relation(), uni.fr())
    return combined.is_acyclic()


def rmw_atomicity(uni: UniExecution) -> bool:
    """No foreign write intervenes between an RMW's read source and the RMW itself."""
    co = uni.co_relation()
    fr = uni.fr()
    for rmw in uni.rmws():
        event = uni.event(rmw)
        for (r, intervener) in fr:
            if r != rmw:
                continue
            other = uni.event(intervener)
            if other.tid == event.tid:
                continue
            if (intervener, rmw) in co:
                return False
    return True


def no_thin_air(uni: UniExecution) -> bool:
    """A conservative out-of-thin-air guard: acyclic(po ∪ rf).

    The litmus fragment carries its dependencies inside ``po``, so this is
    the standard (load-buffering-forbidding) approximation IMM uses for its
    intermediate layer.
    """
    return uni.po().union(uni.rf()).is_acyclic()


def imm_consistent(uni: UniExecution) -> bool:
    """The simplified IMM-style intermediate consistency predicate.

    * coherence (SC per location),
    * RMW atomicity,
    * no-thin-air on ``po ∪ rf``,
    * partial SC: the SeqCst events are ordered consistently with
      ``po ∪ rf ∪ co ∪ fr`` restricted to SeqCst endpoints (the ``psc``
      acyclicity of IMM/RC11, specialised to the fragment's single atomic
      mode).
    """
    if not sc_per_location(uni):
        return False
    if not rmw_atomicity(uni):
        return False
    if not no_thin_air(uni):
        return False
    sc = uni.seqcst_events()
    communication = uni.po().union(uni.rf(), uni.co_relation(), uni.fr())
    psc = communication.restrict(domain=sc, codomain=sc)
    return psc.is_acyclic()
