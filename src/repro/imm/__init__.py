"""Uni-size compilation targets (§6.3): IMM-style intermediate model and architectures."""

from .model import (
    UniExecution,
    UniSizeError,
    coherence_orders,
    imm_consistent,
    is_unisize_execution,
    no_thin_air,
    rmw_atomicity,
    sc_per_location,
    uni_executions,
)
from .x86 import x86_consistent
from .power import power_consistent
from .riscv import riscv_consistent
from .armv7 import armv7_consistent
from .armv8_unisize import armv8_unisize_consistent
from .compilation import (
    ARCHITECTURES,
    ArchitectureCheckResult,
    UniSizeCompilationReport,
    check_unisize_compilation,
)

__all__ = [
    "UniExecution",
    "UniSizeError",
    "coherence_orders",
    "imm_consistent",
    "is_unisize_execution",
    "no_thin_air",
    "rmw_atomicity",
    "sc_per_location",
    "uni_executions",
    "x86_consistent",
    "power_consistent",
    "riscv_consistent",
    "armv7_consistent",
    "armv8_unisize_consistent",
    "ARCHITECTURES",
    "ArchitectureCheckResult",
    "UniSizeCompilationReport",
    "check_unisize_compilation",
]
