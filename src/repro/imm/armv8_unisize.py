"""Uni-size ARMv8 as a compilation target (§6.3, the "again ARMv8" of Thm 6.3).

Theorem 6.3 re-proves ARMv8 compilation for the uni-size subset via IMM, in
addition to the direct mixed-size proof of Theorem 6.2.  At the uni-size
execution level the release/acquire mapping (``Atomics.load`` → ``ldar``,
``Atomics.store`` → ``stlr``) restores exactly the orderings below; the
multi-copy-atomic global axiom is the acyclicity of those orderings with
external communication — the uni-size shadow of the ``ob`` axiom of
:mod:`repro.armv8.axiomatic`.
"""

from __future__ import annotations

from ..core.events import SEQCST
from ..core.relations import Relation
from .model import UniExecution, no_thin_air, rmw_atomicity, sc_per_location


def _release_acquire_order(uni: UniExecution) -> Relation:
    """The bob-like orderings of the ldar/stlr mapping."""
    pairs = []
    for (a, b) in uni.po():
        first, second = uni.event(a), uni.event(b)
        first_sc_read = first.ord is SEQCST and first.is_read
        first_sc_write = first.ord is SEQCST and first.is_write
        second_sc_read = second.ord is SEQCST and second.is_read
        second_sc_write = second.ord is SEQCST and second.is_write
        # [A]; po — an acquire load is ordered before everything after it.
        if first_sc_read:
            pairs.append((a, b))
        # po; [L] — everything is ordered before a later release store.
        if second_sc_write:
            pairs.append((a, b))
        # [L]; po; [A] — release before a later acquire.
        if first_sc_write and second_sc_read:
            pairs.append((a, b))
    return Relation(pairs)


def armv8_unisize_consistent(uni: UniExecution) -> bool:
    """Is the uni-size execution allowed by the uni-size ARMv8 (ldar/stlr) model?"""
    if not sc_per_location(uni):
        return False
    if not rmw_atomicity(uni):
        return False
    if not no_thin_air(uni):
        return False
    external = uni.rfe().union(uni.fre(), uni.coe())
    return _release_acquire_order(uni).union(external).is_acyclic()
