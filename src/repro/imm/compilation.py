"""Bounded checking of Theorem 6.3: uni-size JavaScript compiles to every target.

For each uni-size JavaScript program supplied, the checker enumerates

1. the program's concrete candidate executions (the usual rbf grounding),
   restricted to the uni-size ones (no partial overlaps, no tearing);
2. per execution, every per-location coherence order;
3. per (execution, coherence) pair, asks the target architecture's model
   whether the pair is consistent under the §6.3 compilation mapping;

and verifies that every architecture-consistent pair corresponds to an
execution the (uni-size / corrected mixed-size) JavaScript model allows —
the per-execution obligation of Theorem 6.3.  It also records whether the
simplified IMM-style intermediate model sits between the two, mirroring the
paper's factoring ``architecture ⊨ IMM ⊨ JavaScript``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..core.execution import CandidateExecution
from ..core.js_model import FINAL_MODEL, JsModel, exists_valid_total_order
from ..core.unisize import unisize_exists_valid_total_order
from ..lang.ast import Program
from ..lang.enumeration import ground_executions
from .armv7 import armv7_consistent
from .armv8_unisize import armv8_unisize_consistent
from .model import UniExecution, imm_consistent, is_unisize_execution, uni_executions
from .power import power_consistent
from .riscv import riscv_consistent
from .x86 import x86_consistent

ArchitectureModel = Callable[[UniExecution], bool]

# lint: allow(mutable-state) — read-only dispatch table of consistency
# predicates, never mutated after import.
ARCHITECTURES: Dict[str, ArchitectureModel] = {
    "x86-tso": x86_consistent,
    "power": power_consistent,
    "riscv": riscv_consistent,
    "armv7": armv7_consistent,
    "armv8": armv8_unisize_consistent,
}


@dataclass
class ArchitectureCheckResult:
    """Per-architecture statistics of the bounded Thm 6.3 check."""

    architecture: str
    executions_checked: int = 0
    architecture_allowed: int = 0
    imm_allowed: int = 0
    js_allowed: int = 0
    counterexamples: List[CandidateExecution] = field(default_factory=list)
    imm_gaps: int = 0

    @property
    def correct(self) -> bool:
        """True iff every architecture-allowed execution is JavaScript-allowed."""
        return not self.counterexamples

    def summary(self) -> str:
        status = "correct" if self.correct else (
            f"VIOLATED ({len(self.counterexamples)})"
        )
        return (
            f"{self.architecture}: {status} — "
            f"{self.architecture_allowed}/{self.executions_checked} target-allowed, "
            f"{self.imm_allowed} IMM-allowed, {self.js_allowed} JS-allowed"
        )


@dataclass
class UniSizeCompilationReport:
    """The Thm 6.3 bounded check over a set of programs."""

    model: str
    programs: int = 0
    skipped_mixed_size: int = 0
    per_architecture: Dict[str, ArchitectureCheckResult] = field(default_factory=dict)

    @property
    def correct(self) -> bool:
        return all(result.correct for result in self.per_architecture.values())

    def summary_lines(self) -> List[str]:
        lines = [
            f"uni-size compilation check under {self.model}: "
            f"{self.programs} programs ({self.skipped_mixed_size} mixed-size executions skipped)"
        ]
        lines.extend(
            self.per_architecture[arch].summary() for arch in sorted(self.per_architecture)
        )
        return lines


def check_unisize_compilation(
    programs: Iterable[Program],
    model: JsModel = FINAL_MODEL,
    architectures: Optional[Iterable[str]] = None,
    use_unisize_js_model: bool = True,
) -> UniSizeCompilationReport:
    """Run the bounded Theorem 6.3 check over ``programs``.

    ``use_unisize_js_model`` selects the Fig. 12 uni-size validity for the
    JavaScript side (the theorem's statement); setting it to ``False``
    checks against the mixed-size corrected model instead, which by the
    §6.3 reduction must agree on these executions.
    """
    selected = dict(ARCHITECTURES)
    if architectures is not None:
        selected = {name: ARCHITECTURES[name] for name in architectures}
    report = UniSizeCompilationReport(model=model.name)
    for name in selected:
        report.per_architecture[name] = ArchitectureCheckResult(architecture=name)

    for program in programs:
        report.programs += 1
        for ground in ground_executions(program):
            execution = ground.execution
            if not is_unisize_execution(execution):
                report.skipped_mixed_size += 1
                continue
            js_allowed: Optional[bool] = None
            for uni in uni_executions(execution):
                imm_ok = imm_consistent(uni)
                for name, arch_model in selected.items():
                    result = report.per_architecture[name]
                    result.executions_checked += 1
                    if not arch_model(uni):
                        continue
                    result.architecture_allowed += 1
                    if imm_ok:
                        result.imm_allowed += 1
                    else:
                        result.imm_gaps += 1
                    if js_allowed is None:
                        if use_unisize_js_model:
                            js_allowed = (
                                unisize_exists_valid_total_order(execution) is not None
                            )
                        else:
                            js_allowed = (
                                exists_valid_total_order(execution, model) is not None
                            )
                    if js_allowed:
                        result.js_allowed += 1
                    else:
                        result.counterexamples.append(execution)
    return report
