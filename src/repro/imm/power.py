"""POWER as a compilation target for the uni-size JavaScript model (§6.3).

Compilation mapping (the "leading sync" C++ SC scheme):

* ``Atomics.store`` → ``sync; st``,
* ``Atomics.load``  → ``sync; ld; cmp; bc; isync`` (ctrl-isync tail),
* non-atomic accesses → plain ``ld``/``st``,
* RMWs → ``sync; larx/stcx loop; isync``.

The model here is deliberately a *weakening* of the full herd POWER model:
preserved program order keeps only the orderings the mapping's fences
restore (``sync`` before a SeqCst access orders all earlier accesses before
it; the ctrl-isync tail orders a SeqCst load before everything after it;
plain accesses are unordered), and the global axiom requires acyclicity of
those fence orderings together with external communication.  Using a
weaker-than-real target can only make the compilation check harder, never
easier, so a pass remains meaningful (§4's "no stronger than Flat"
argument, transposed)."""

from __future__ import annotations

from ..core.events import SEQCST
from ..core.relations import Relation
from .model import UniExecution, no_thin_air, rmw_atomicity, sc_per_location


def _fence_order(uni: UniExecution) -> Relation:
    """Orderings restored by the mapping's sync / ctrl-isync fences."""
    pairs = []
    for (a, b) in uni.po():
        first, second = uni.event(a), uni.event(b)
        # The leading sync of a SeqCst access orders every earlier access
        # of the thread before it (and, being cumulative, before whatever
        # observes it).
        if second.ord is SEQCST:
            pairs.append((a, b))
        # The ctrl-isync tail of a SeqCst load orders it before all later
        # accesses; a SeqCst RMW's trailing isync does the same.
        if first.ord is SEQCST and first.is_read:
            pairs.append((a, b))
    return Relation(pairs)


def power_consistent(uni: UniExecution) -> bool:
    """Is the uni-size execution allowed by (this weakened) POWER model?"""
    if not sc_per_location(uni):
        return False
    if not rmw_atomicity(uni):
        return False
    if not no_thin_air(uni):
        return False
    global_order = _fence_order(uni).union(uni.rfe(), uni.fre(), uni.coe())
    return global_order.is_acyclic()
