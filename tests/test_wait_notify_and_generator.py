"""Tests for the §7 wait/notify semantics and the diy-style corpus generator."""

import pytest

from repro.armv8 import validate_corpus
from repro.compile import check_program_compilation
from repro.core.js_model import FINAL_MODEL
from repro.lang.ast import Load, Notify, Program, Register, Store, Thread, TypedAccess, Wait
from repro.lang.memory import INT32, new_shared_array_buffer, new_typed_array
from repro.lang.wait_notify import (
    wait_notify_allowed_outcomes,
    wait_notify_outcome_allowed,
)
from repro.litmus import GeneratorConfig, generate_arm_corpus, generate_js_corpus
from repro.litmus.catalogue import fig13_wait_notify


def _wait_notify_program(expected=0, store_value=42):
    sab = new_shared_array_buffer("x", 4)
    view = new_typed_array("x", sab, INT32)
    loc = TypedAccess(view, 0)
    return Program(
        name="wn",
        buffers=(sab,),
        threads=(
            Thread((Wait(loc, expected), Load(Register("r0"), loc, atomic=True))),
            Thread((Store(loc, store_value, atomic=True), Notify(loc, dest=Register("r1")))),
        ),
    )


class TestWaitNotify:
    def test_corrected_outcomes_match_intuition(self):
        outcomes = wait_notify_allowed_outcomes(fig13_wait_notify().program, corrected=True)
        values = {o.get("0:r0") for o in outcomes if "0:r0" in o}
        assert values == {42}
        counts = {o.get("1:r1") for o in outcomes}
        assert counts <= {0, 1}

    def test_uncorrected_allows_fig13b_and_fig13c(self):
        program = fig13_wait_notify().program
        assert wait_notify_outcome_allowed(program, {"0:r0": 0}, corrected=False)
        stuck_outcomes = [
            o
            for o in wait_notify_allowed_outcomes(program, corrected=False)
            if "0:r0" not in o
        ]
        assert any(o.get("1:r1") == 0 for o in stuck_outcomes)

    def test_corrected_forbids_stuck_waiter_after_notify(self):
        program = fig13_wait_notify().program
        stuck_outcomes = [
            o
            for o in wait_notify_allowed_outcomes(program, corrected=True)
            if "0:r0" not in o
        ]
        assert stuck_outcomes == []

    def test_non_matching_expected_value_never_suspends(self):
        program = _wait_notify_program(expected=7)
        outcomes = wait_notify_allowed_outcomes(program, corrected=True)
        assert all("0:r0" in o for o in outcomes)

    def test_notify_count_reflects_queue_contents(self):
        program = _wait_notify_program()
        outcomes = wait_notify_allowed_outcomes(program, corrected=True)
        assert {o["1:r1"] for o in outcomes} == {0, 1}


class TestGenerator:
    def test_arm_corpus_is_deterministic_and_bounded(self):
        config = GeneratorConfig(max_tests=30)
        first = [p.name for p in generate_arm_corpus(config)]
        second = [p.name for p in generate_arm_corpus(config)]
        assert first == second
        assert len(first) == 30

    def test_arm_corpus_includes_mixed_size_tests(self):
        config = GeneratorConfig(accesses_per_thread=1, max_tests=None)
        names = [p.name for p in generate_arm_corpus(config)]
        assert any("mixed" in name for name in names)

    def test_generated_arm_corpus_validates_soundly(self):
        corpus = list(generate_arm_corpus(GeneratorConfig(max_tests=12)))
        result = validate_corpus(corpus)
        assert result.sound
        assert result.executions > 0

    def test_js_corpus_programs_are_well_formed(self):
        corpus = list(generate_js_corpus(GeneratorConfig(max_tests=10)))
        assert len(corpus) == 10
        for program in corpus:
            assert program.thread_count == 2

    def test_generated_js_program_compiles_correctly(self):
        program = next(iter(generate_js_corpus(GeneratorConfig(max_tests=1))))
        result = check_program_compilation(program, FINAL_MODEL)
        assert result.correct
