"""Tests of the JavaScript validity rules: Fig. 4, the §3 fixes, Fig. 10, §6.4."""

import pytest

from repro.core.events import Event, SEQCST, UNORDERED, make_init_event
from repro.core.execution import CandidateExecution
from repro.core.js_model import (
    ARMV8_FIX_MODEL,
    FINAL_MODEL,
    FINAL_MODEL_STRONG_TEAR,
    ORIGINAL_MODEL,
    exists_valid_total_order,
    invalid_for_all_total_orders,
    is_valid,
    tear_free_reads,
    validity_violations,
)


def _bytes(value, width=4):
    return tuple((value & ((1 << (8 * width)) - 1)).to_bytes(width, "little"))


def write(eid, tid, index, value, width=4, mode=SEQCST, tearfree=True):
    return Event(eid=eid, tid=tid, ord=mode, block="b", index=index,
                 writes=_bytes(value, width), tearfree=tearfree)


def read(eid, tid, index, value, width=4, mode=SEQCST, tearfree=True):
    return Event(eid=eid, tid=tid, ord=mode, block="b", index=index,
                 reads=_bytes(value, width), tearfree=tearfree)


def fig5_shape(tot):
    """The Fig. 5 shape: WSC — WUn — RSC on the same range, sw between the ends.

    The unordered write sits tot-between a synchronising SeqCst pair.
    """
    init = make_init_event("b", 4)
    w_sc = write(1, 0, 0, 1, mode=SEQCST)
    w_un = write(2, 1, 0, 2, mode=UNORDERED)
    r_sc = read(3, 2, 0, 1, mode=SEQCST)
    return CandidateExecution.build(
        events=[init, w_sc, w_un, r_sc],
        rbf={(k, 1, 3) for k in range(4)},
        tot=tot,
    )


class TestScAtomicsRules:
    def test_fig5_forbidden_by_original_rule(self):
        execution = fig5_shape(tot=[0, 1, 2, 3])
        assert not is_valid(execution, ORIGINAL_MODEL)
        assert "sequentially-consistent-atomics" in validity_violations(
            execution, ORIGINAL_MODEL
        )

    def test_fig5_allowed_after_armv8_fix(self):
        execution = fig5_shape(tot=[0, 1, 2, 3])
        assert is_valid(execution, ARMV8_FIX_MODEL)
        assert is_valid(execution, FINAL_MODEL)

    def test_fig5_allowed_by_original_with_other_tot(self):
        # Moving the unordered write out of the window satisfies even the
        # original rule: the execution is not dead.
        execution = fig5_shape(tot=[0, 2, 1, 3])
        assert is_valid(execution, ORIGINAL_MODEL)

    def test_seqcst_intervener_still_forbidden_by_final_rule(self):
        init = make_init_event("b", 4)
        w1 = write(1, 0, 0, 1, mode=SEQCST)
        w2 = write(2, 1, 0, 2, mode=SEQCST)
        r1 = read(3, 2, 0, 1, mode=SEQCST)
        execution = CandidateExecution.build(
            events=[init, w1, w2, r1],
            rbf={(k, 1, 3) for k in range(4)},
            tot=[0, 1, 2, 3],
        )
        assert not is_valid(execution, FINAL_MODEL)
        # Moving the intervening SC write out of the window (before the
        # writer) rescues the execution: with no sb forcing it between the
        # pair, another total order exists.
        assert not invalid_for_all_total_orders(execution, FINAL_MODEL)
        assert is_valid(execution.with_witness(tot=[0, 2, 1, 3]), FINAL_MODEL)
        # The original model also forbids the original witness.
        assert not is_valid(execution, ORIGINAL_MODEL)


class TestHappensBeforeConsistency:
    def test_read_cannot_happen_before_its_writer(self):
        init = make_init_event("b", 4)
        r0 = read(1, 0, 0, 1, mode=UNORDERED)
        w0 = write(2, 0, 0, 1, mode=UNORDERED)
        execution = CandidateExecution.build(
            events=[init, r0, w0],
            sb=[(1, 2)],              # the read precedes the write it reads from
            rbf={(k, 2, 1) for k in range(4)},
            tot=[0, 1, 2],
        )
        assert not is_valid(execution, FINAL_MODEL)
        assert "happens-before-consistency-2" in validity_violations(
            execution, FINAL_MODEL
        )

    def test_stale_read_hidden_by_newer_write_forbidden(self):
        init = make_init_event("b", 8)
        data = write(1, 0, 0, 3, mode=UNORDERED)
        flag_w = write(2, 0, 4, 1, mode=SEQCST)
        flag_r = read(3, 1, 4, 1, mode=SEQCST)
        stale = read(4, 1, 0, 0, mode=UNORDERED)
        rbf = {(k, 0, 4) for k in range(0, 4)} | {(k, 2, 3) for k in range(4, 8)}
        execution = CandidateExecution.build(
            events=[init, data, flag_w, flag_r, stale],
            sb=[(1, 2), (3, 4)],
            rbf=rbf,
        )
        assert exists_valid_total_order(execution, FINAL_MODEL) is None
        assert exists_valid_total_order(execution, ORIGINAL_MODEL) is None


class TestTearFreeReads:
    def _torn_execution(self):
        # The buffer is wider than the accesses, so the Init event's range
        # differs from the access range (as in Fig. 14's 32-byte buffer).
        init = make_init_event("b", 4)
        store = write(1, 1, 0, 0x0101, width=2, mode=UNORDERED)
        load = read(2, 0, 0, 0x0001, width=2, mode=UNORDERED)
        return CandidateExecution.build(
            events=[init, store, load],
            rbf={(0, 1, 2), (1, 0, 2)},
            tot=[0, 1, 2],
        )

    def test_init_tearing_allowed_by_weak_rule(self):
        execution = self._torn_execution()
        assert tear_free_reads(execution, strong=False)
        assert is_valid(execution, FINAL_MODEL)

    def test_init_tearing_forbidden_by_strong_rule(self):
        execution = self._torn_execution()
        assert not tear_free_reads(execution, strong=True)
        assert not is_valid(execution, FINAL_MODEL_STRONG_TEAR)

    def test_two_tearfree_writes_cannot_both_feed_one_read(self):
        init = make_init_event("b", 4)
        w1 = write(1, 1, 0, 0x0001, width=2, mode=UNORDERED)
        w2 = write(2, 2, 0, 0x0100, width=2, mode=UNORDERED)
        load = read(3, 0, 0, 0x0101, width=2, mode=UNORDERED)
        execution = CandidateExecution.build(
            events=[init, w1, w2, load],
            rbf={(0, 1, 3), (1, 2, 3)},
            tot=[0, 1, 2, 3],
        )
        assert not is_valid(execution, FINAL_MODEL)

    def test_tearing_reads_are_exempt(self):
        init = make_init_event("b", 4)
        w1 = write(1, 1, 0, 0x0001, width=2, mode=UNORDERED)
        w2 = write(2, 2, 0, 0x0100, width=2, mode=UNORDERED)
        load = read(3, 0, 0, 0x0101, width=2, mode=UNORDERED, tearfree=False)
        execution = CandidateExecution.build(
            events=[init, w1, w2, load],
            rbf={(0, 1, 3), (1, 2, 3)},
            tot=[0, 1, 2, 3],
        )
        assert is_valid(execution, FINAL_MODEL)


class TestWitnessSearch:
    def test_exists_valid_total_order_finds_linear_extension_of_hb(self):
        execution = fig5_shape(tot=None)
        witness = exists_valid_total_order(execution, ORIGINAL_MODEL)
        assert witness is not None
        # Init is hb-before everything, so it must come first.
        assert witness[0] == 0

    def test_all_models_accept_simple_sequential_execution(self):
        init = make_init_event("b", 4)
        store = write(1, 0, 0, 1, mode=SEQCST)
        load = read(2, 0, 0, 1, mode=SEQCST)
        execution = CandidateExecution.build(
            events=[init, store, load],
            sb=[(1, 2)],
            rbf={(k, 1, 2) for k in range(4)},
            tot=[0, 1, 2],
        )
        for model in (ORIGINAL_MODEL, ARMV8_FIX_MODEL, FINAL_MODEL, FINAL_MODEL_STRONG_TEAR):
            assert is_valid(execution, model), model.name
