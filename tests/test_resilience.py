"""The resilience layer: fault injection, supervision, journaling, cache hardening.

Covers the ISSUE-6 acceptance points: sweeps under an injected fault plan
(crash + hang + corrupt) stay bit-identical to serial, a killed sweep
resumes from its journal recomputing only unfinished chunks, poison tasks
are bisected down and quarantined instead of killing the run, and the
verdict cache detects/quarantines corrupt entries, enforces its quota, and
degrades to read-only on unwritable directories.

The subprocess kill/resume drill is marked ``chaos`` (see
``tests/conftest.py``) and stays out of the default tier-1 run.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
import warnings
from pathlib import Path

import pytest

from repro.core import FINAL_MODEL, ORIGINAL_MODEL
from repro.dispatch import (
    MISS,
    SEMANTICS_REVISION,
    FaultPlan,
    FaultPlanError,
    QuarantinedTask,
    RemoteTaskError,
    ShutdownRequested,
    SupervisionReport,
    SweepJournal,
    VerdictCache,
    clear_shutdown,
    install_shutdown_signals,
    request_shutdown,
    resolve_checkpoint,
    resolve_fault_plan,
    resolve_retries,
    resolve_task_timeout,
    shutdown_requested,
    supervised_imap,
    supervised_map,
    uninstall_shutdown_signals,
)
from repro.dispatch.cache import parse_size
from repro.dispatch.faults import CRASH_EXIT_CODE, corrupt_payload
from repro.litmus.runner import _batch_fingerprint, run_catalogue, run_tests
from repro.litmus.catalogue import by_name
from repro.search import SearchBounds, search_sc_drf_violation
from repro.search import counterexamples as _counterexamples

# A fast, representative catalogue subset (same as test_dispatch).
FAST_TESTS = ["sb-sc", "lb-sc", "corr-un", "mp-un-sc", "mixed-size-overlap"]

# A tiny shape space: 10 programs, all checked in well under a second.
TINY_BOUNDS = SearchBounds(
    threads=2,
    max_accesses_per_thread=1,
    max_total_accesses=2,
    locations=1,
    values=(1,),
    guarded_observer=False,
)

# The §5.4 bound that contains the Fig. 8 counter-example.
SC_DRF_BOUNDS = SearchBounds(
    threads=2,
    max_accesses_per_thread=2,
    max_total_accesses=4,
    locations=1,
    values=(1, 2),
    guarded_observer=True,
)


# -- module-level workers (shipped to fork-started worker processes) --------

def _square(x):
    return x * x


def _always_boom(x):
    raise ValueError(f"boom {x}")


POISON = 5


def _chunk_squares(task):
    start, stop = task
    if start <= POISON < stop:
        raise ValueError(f"poison {POISON}")
    return [x * x for x in range(start, stop)]


def _split_range(task):
    start, stop = task
    if stop - start <= 1:
        return None
    mid = (start + stop) // 2
    return (start, mid), (mid, stop)


def _merge_parts(parts):
    out = []
    for part in parts:
        out.extend(part)
    return out


def _quarantine_part(task):
    start, stop = task
    return [None] * (stop - start)


def _sweep_chunk_bomb(task):
    raise AssertionError(f"journaled chunk recomputed: {task!r}")


# ---------------------------------------------------------------------------
# fault plans
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_grammar(self):
        plan = FaultPlan.parse("crash@3;hang@7,corrupt@11x2;hang=0.5")
        assert set(plan.faults) == {3, 7, 11}
        assert plan.faults[3].kind == "crash"
        assert plan.faults[7].kind == "hang"
        assert plan.faults[11].kind == "corrupt"
        assert plan.faults[11].times == 2
        assert plan.hang_seconds == 0.5

    def test_spec_round_trip(self):
        plan = FaultPlan.parse("crash@0,corrupt@4x3,hang@9,hang=2")
        assert FaultPlan.parse(plan.spec()) == plan

    @pytest.mark.parametrize(
        "bad",
        ["explode@3", "crash@", "crash@x", "crash@-1", "crash@2x0", "hang=abc", "crash3"],
    )
    def test_parse_rejects_bad_tokens(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)

    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(11, 200, crash=0.1, hang=0.1, corrupt=0.1)
        b = FaultPlan.seeded(11, 200, crash=0.1, hang=0.1, corrupt=0.1)
        assert a == b
        assert a.faults, "rates this high should schedule at least one fault"
        other = FaultPlan.seeded(12, 200, crash=0.1, hang=0.1, corrupt=0.1)
        assert a != other

    def test_fault_fires_only_for_first_attempts(self):
        plan = FaultPlan.parse("corrupt@2x2")
        assert plan.fault_at(2, 0) is not None
        assert plan.fault_at(2, 1) is not None
        assert plan.fault_at(2, 2) is None  # the retry after `times` succeeds
        assert plan.fault_at(3, 0) is None

    def test_corrupt_payload_always_differs(self):
        for blob in (b"", b"x", b"some longer pickled payload" * 10):
            assert corrupt_payload(blob) != blob

    def test_resolve_fault_plan(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert resolve_fault_plan(None) is None
        monkeypatch.setenv("REPRO_FAULT_PLAN", "crash@1")
        assert resolve_fault_plan(None).faults[1].kind == "crash"
        assert resolve_fault_plan(False) is None
        assert resolve_fault_plan("hang@2").faults[2].kind == "hang"
        plan = FaultPlan.parse("corrupt@0")
        assert resolve_fault_plan(plan) is plan


# ---------------------------------------------------------------------------
# the supervised engine
# ---------------------------------------------------------------------------


class TestSupervisedEngine:
    def test_serial_path_matches_plain_loop(self):
        items = list(range(10))
        report = SupervisionReport()
        # Injection never happens on the serial path: it is the ground truth.
        got = supervised_map(
            _square, items, workers=1, fault_plan="crash@0x9", report=report
        )
        assert got == [x * x for x in items]
        assert report.crashes == 0 and not report.quarantined

    def test_crash_recovery_is_bit_identical(self):
        items = list(range(12))
        report = SupervisionReport()
        got = supervised_map(
            _square,
            items,
            workers=2,
            fault_plan="crash@3;crash@8",
            backoff=0.0,
            report=report,
        )
        assert got == [x * x for x in items]
        assert report.crashes >= 2
        assert report.respawns >= 2
        assert report.retried >= 2

    def test_hang_recovery_is_bit_identical(self):
        items = list(range(8))
        report = SupervisionReport()
        got = supervised_map(
            _square,
            items,
            workers=2,
            fault_plan="hang@2,hang=30",
            task_timeout=0.5,
            backoff=0.0,
            report=report,
        )
        assert got == [x * x for x in items]
        assert report.timeouts >= 1

    def test_corrupt_payload_recovery_is_bit_identical(self):
        items = list(range(8))
        report = SupervisionReport()
        got = supervised_map(
            _square,
            items,
            workers=2,
            fault_plan="corrupt@4",
            backoff=0.0,
            report=report,
        )
        assert got == [x * x for x in items]
        assert report.corrupt_payloads >= 1

    def test_env_fault_plan_reaches_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "crash@1")
        report = SupervisionReport()
        got = supervised_map(
            _square, list(range(6)), workers=2, backoff=0.0, report=report
        )
        assert got == [x * x for x in range(6)]
        assert report.crashes >= 1

    def test_remote_traceback_is_preserved(self):
        with pytest.raises(ValueError, match="boom") as excinfo:
            supervised_map(
                _always_boom, [0, 1], workers=2, retries=0, backoff=0.0
            )
        cause = excinfo.value.__cause__
        assert isinstance(cause, RemoteTaskError)
        assert "_always_boom" in str(cause)  # the worker-side traceback

    def test_poison_chunk_bisected_down_and_quarantined(self):
        tasks = [(0, 8), (8, 16)]
        report = SupervisionReport()
        got = supervised_map(
            _chunk_squares,
            tasks,
            workers=2,
            retries=0,
            backoff=0.0,
            split=_split_range,
            merge=_merge_parts,
            quarantine=True,
            quarantine_result=_quarantine_part,
            report=report,
        )
        expected = [
            [None if x == POISON else x * x for x in range(0, 8)],
            [x * x for x in range(8, 16)],
        ]
        assert got == expected
        assert [q.task for q in report.quarantined] == [(POISON, POISON + 1)]
        quarantined = report.quarantined[0]
        assert isinstance(quarantined, QuarantinedTask)
        assert "poison 5" in quarantined.error

    def test_on_complete_skipped_for_tainted_roots(self):
        completions = []
        report = SupervisionReport()
        list(
            supervised_imap(
                _chunk_squares,
                [(0, 8), (8, 16)],
                workers=2,
                retries=0,
                backoff=0.0,
                split=_split_range,
                merge=_merge_parts,
                quarantine=True,
                quarantine_result=_quarantine_part,
                on_complete=lambda index, result: completions.append(index),
                report=report,
            )
        )
        # Root 0 contains the quarantined leaf: a checkpoint journaling it
        # would freeze the unknown verdict, so only the clean root completes.
        assert completions == [1]

    def test_degraded_serial_when_no_worker_can_spawn(self, monkeypatch):
        from repro.dispatch import supervise as supervise_module

        monkeypatch.setattr(
            supervise_module, "_spawn_worker", lambda *args: None
        )
        report = SupervisionReport()
        got = supervised_map(
            _square, list(range(6)), workers=2, backoff=0.0, report=report
        )
        assert got == [x * x for x in range(6)]
        assert report.degraded_serial

    def test_env_resolvers(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "5")
        assert resolve_retries(None) == 5
        assert resolve_retries(1) == 1
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2.5")
        assert resolve_task_timeout(None) == 2.5
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0")
        assert resolve_task_timeout(None) is None


# ---------------------------------------------------------------------------
# the checkpoint journal
# ---------------------------------------------------------------------------


def _open_journal(directory, total=8, fingerprint="f" * 40, revision=SEMANTICS_REVISION):
    return SweepJournal.open(directory, "test", fingerprint, revision, total)


class TestSweepJournal:
    def test_record_and_resume(self, tmp_path):
        journal = _open_journal(tmp_path)
        journal.record(0, [3, None])
        journal.record(2, [5, "hit"])
        journal.record(2, ["ignored duplicate"])
        journal.close()
        resumed = _open_journal(tmp_path)
        assert resumed.completed() == {0: [3, None], 2: [5, "hit"]}
        resumed.close()

    def test_finish_removes_the_file(self, tmp_path):
        journal = _open_journal(tmp_path)
        journal.record(0, "done")
        path = journal.path
        assert path.exists()
        journal.finish()
        assert not path.exists()

    def test_torn_last_line_is_dropped(self, tmp_path):
        journal = _open_journal(tmp_path)
        journal.record(0, "ok")
        journal.record(1, "ok")
        journal.close()
        with journal.path.open("a") as handle:
            handle.write('{"i": 2, "r": "torn and never chec')
        resumed = _open_journal(tmp_path)
        assert resumed.completed() == {0: "ok", 1: "ok"}
        resumed.close()

    def test_tampered_entry_is_dropped(self, tmp_path):
        journal = _open_journal(tmp_path)
        journal.record(0, "honest")
        journal.close()
        lines = journal.path.read_text().splitlines()
        entry = json.loads(lines[1])
        entry["r"] = "tampered"  # checksum now stale
        lines[1] = json.dumps(entry)
        journal.path.write_text("\n".join(lines) + "\n")
        resumed = _open_journal(tmp_path)
        assert resumed.completed() == {}
        resumed.close()

    def test_stale_header_invalidates_the_journal(self, tmp_path):
        journal = _open_journal(tmp_path, total=8)
        journal.record(0, "from the old sweep")
        journal.close()
        # Same file name, different sweep shape: the old entries are wrong.
        resumed = _open_journal(tmp_path, total=9)
        assert resumed.completed() == {}
        resumed.close()

    def test_compaction_shrinks_a_bloated_file(self, tmp_path):
        journal = _open_journal(tmp_path)
        journal.record(0, "v")
        journal.close()
        line = SweepJournal._entry_line(0, "v")
        with journal.path.open("a") as handle:
            for _ in range(100):  # replayed duplicates, e.g. crash loops
                handle.write(line)
        resumed = _open_journal(tmp_path)
        assert resumed.completed() == {0: "v"}
        resumed.close()
        assert len(journal.path.read_text().splitlines()) == 2  # header + entry

    def test_unwritable_directory_disables_journaling(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the journal dir should go")
        assert _open_journal(blocker / "sub") is None

    def test_resolve_checkpoint(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        assert resolve_checkpoint(None) is None
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        assert resolve_checkpoint(None) == tmp_path
        assert resolve_checkpoint(False) is None
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", "off")
        assert resolve_checkpoint(None) is None


# ---------------------------------------------------------------------------
# cache hardening
# ---------------------------------------------------------------------------


class TestCacheHardening:
    def test_corrupt_entry_quarantined_counted_and_warned_once(self, tmp_path):
        cache = VerdictCache(tmp_path)
        key = cache.key("litmus-verdict", "prog")
        cache.put(key, True)
        path = cache._path(key)
        path.write_text("{truncated garbage")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get(key) is MISS
        assert cache.corrupt == 1
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()
        # Second corruption in the same directory: counted, not re-warned.
        other = cache.key("litmus-verdict", "other")
        cache.put(other, False)
        cache._path(other).write_text("also garbage")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.get(other) is MISS
        assert cache.corrupt == 2

    def test_checksum_mismatch_is_corruption(self, tmp_path):
        cache = VerdictCache(tmp_path)
        key = cache.key("k")
        cache.put(key, {"allowed": True})
        entry = json.loads(cache._path(key).read_text())
        entry["verdict"] = {"allowed": False}  # flipped, sha now stale
        cache._path(key).write_text(json.dumps(entry))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert cache.get(key) is MISS
        assert cache.corrupt == 1
        assert cache._path(key).with_suffix(".corrupt").exists()

    def test_legacy_entry_without_sha_still_hits(self, tmp_path):
        cache = VerdictCache(tmp_path)
        key = cache.key("legacy")
        cache.put(key, [1, 2])
        entry = json.loads(cache._path(key).read_text())
        del entry["sha"]  # pre-hardening entries have no checksum
        cache._path(key).write_text(json.dumps(entry))
        assert cache.get(key) == [1, 2]
        assert cache.corrupt == 0

    def test_stats_counters(self, tmp_path):
        cache = VerdictCache(tmp_path)
        key = cache.key("x")
        assert cache.get(key) is MISS
        cache.put(key, 7)
        assert cache.get(key) == 7
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["writes"] == 1
        assert stats["corrupt"] == 0
        assert stats["degraded"] is False

    def test_quota_eviction(self, tmp_path):
        from repro.dispatch.cache import QUOTA_CHECK_INTERVAL

        cache = VerdictCache(tmp_path, quota_bytes=2000)
        # Exactly two check intervals, so enforcement has just run and the
        # directory sits at (or under) the post-eviction watermark.
        writes = 2 * QUOTA_CHECK_INTERVAL
        for i in range(writes):
            cache.put(cache.key("entry", i), {"verdict-payload": i})
        assert cache.evictions > 0
        remaining = list(tmp_path.glob("*/*.json"))
        assert 0 < len(remaining) < writes
        assert sum(p.stat().st_size for p in remaining) <= 2000

    def test_parse_size_suffixes(self):
        assert parse_size("1234") == 1234
        assert parse_size("64K") == 64 * 1024
        assert parse_size("2m") == 2 * 1024 * 1024
        assert parse_size("1G") == 1024 ** 3

    def test_unwritable_directory_degrades_to_read_only(self, tmp_path, monkeypatch):
        cache = VerdictCache(tmp_path)
        key = cache.key("served-before-degrading")
        cache.put(key, "hit me")

        import repro.dispatch.cache as cache_module

        def refuse(*args, **kwargs):
            raise OSError("disk on fire")

        monkeypatch.setattr(cache_module.tempfile, "mkstemp", refuse)
        with pytest.warns(RuntimeWarning, match="read-only"):
            cache.put(cache.key("new"), "lost")
        assert cache.degraded
        # Later puts return immediately; existing entries are still served.
        cache.put(cache.key("another"), "also lost")
        assert cache.get(key) == "hit me"
        assert cache.get(cache.key("new")) is MISS


# ---------------------------------------------------------------------------
# consumers under injected faults (the ISSUE-6 acceptance drills)
# ---------------------------------------------------------------------------


class TestChaosParity:
    def test_catalogue_chaos_parity(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "1")
        serial = run_catalogue(FAST_TESTS)
        chaotic = run_catalogue(
            FAST_TESTS,
            workers=2,
            checkpoint=str(tmp_path),
            fault_plan="crash@0;corrupt@3;hang@2,hang=30",
        )
        assert chaotic.verdicts() == serial.verdicts()
        assert chaotic.quarantined == ()
        assert not list(tmp_path.iterdir())  # journal removed on success

    def test_sweep_chaos_parity(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "1")
        serial = search_sc_drf_violation(SC_DRF_BOUNDS, ORIGINAL_MODEL)
        chaotic = search_sc_drf_violation(
            SC_DRF_BOUNDS,
            ORIGINAL_MODEL,
            workers=2,
            checkpoint=str(tmp_path),
            fault_plan="crash@0;corrupt@1;hang@2,hang=30",
        )
        assert chaotic.found == serial.found
        assert chaotic.programs_examined == serial.programs_examined
        assert (
            chaotic.counterexample.program.name
            == serial.counterexample.program.name
        )
        assert chaotic.quarantined == ()

    def test_sweep_poison_program_is_quarantined_and_reported(self, monkeypatch):
        real_worker = _counterexamples._sweep_chunk_worker
        poison = 4

        def poisoned_worker(task):
            kind, bounds, model, use_operational, start, stop, cache_spec = task
            if start <= poison < stop:
                raise ValueError(f"poison program {poison}")
            return real_worker(task)

        monkeypatch.setattr(
            _counterexamples, "_sweep_chunk_worker", poisoned_worker
        )
        report = search_sc_drf_violation(TINY_BOUNDS, FINAL_MODEL, workers=2)
        assert report.quarantined == (poison,)
        assert not report.found
        # The quarantined program still counts as examined: the sweep's
        # coverage accounting matches the serial scan.
        clean = search_sc_drf_violation(TINY_BOUNDS, FINAL_MODEL)
        assert report.programs_examined == clean.programs_examined


class TestJournalResume:
    def test_litmus_batch_resumes_from_recorded_verdicts(self, tmp_path):
        tests = [by_name(name) for name in FAST_TESTS]
        serial = run_tests(tests)
        truth = tuple(r.observed_allowed for r in serial[0].results)
        fabricated = [not v for v in truth]  # detectably different
        journal = SweepJournal.open(
            tmp_path, "litmus", _batch_fingerprint(tests), SEMANTICS_REVISION, len(tests)
        )
        journal.record(0, fabricated)
        journal.close()
        resumed = run_tests(tests, checkpoint=tmp_path)
        got = tuple(r.observed_allowed for r in resumed[0].results)
        # The journaled test was NOT recomputed: the fabricated verdicts
        # came straight back, proving only unfinished work runs on resume.
        assert got == tuple(fabricated)
        for serial_result, resumed_result in zip(serial[1:], resumed[1:]):
            assert [r.observed_allowed for r in serial_result.results] == [
                r.observed_allowed for r in resumed_result.results
            ]
        assert not list(tmp_path.iterdir())  # finish() cleaned up

    def test_sweep_resume_recomputes_nothing_when_complete(self, tmp_path, monkeypatch):
        with monkeypatch.context() as frozen:
            # Keep the journal alive past a successful run, simulating a
            # kill that landed after the last chunk was recorded.
            frozen.setattr(SweepJournal, "finish", SweepJournal.close)
            first = search_sc_drf_violation(
                SC_DRF_BOUNDS, ORIGINAL_MODEL, checkpoint=tmp_path
            )
            assert list(tmp_path.glob("*.journal"))
        # Every chunk is journaled: the resumed sweep must not compute any.
        monkeypatch.setattr(
            _counterexamples, "_sweep_chunk_worker", _sweep_chunk_bomb
        )
        resumed = search_sc_drf_violation(
            SC_DRF_BOUNDS, ORIGINAL_MODEL, checkpoint=tmp_path
        )
        assert resumed.found == first.found
        assert resumed.programs_examined == first.programs_examined
        assert (
            resumed.counterexample.program.name
            == first.counterexample.program.name
        )
        assert not list(tmp_path.glob("*.journal"))  # finished for real now

    @pytest.mark.chaos
    def test_sigkill_mid_catalogue_resumes_from_journal(self, tmp_path):
        checkpoint = tmp_path / "journal"
        script = textwrap.dedent(
            f"""
            from repro.litmus.runner import run_catalogue
            run_catalogue(checkpoint={str(checkpoint)!r})
            """
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_WORKERS", None)
        process = subprocess.Popen([sys.executable, "-c", script], env=env)
        # Let it journal part of the catalogue, then kill it dead.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if process.poll() is not None:
                break
            if list(checkpoint.glob("*.journal")):
                time.sleep(0.5)  # some entries, not all
                break
            time.sleep(0.05)
        if process.poll() is None:
            process.send_signal(signal.SIGKILL)
        process.wait()
        resumed = run_catalogue(checkpoint=checkpoint)
        serial = run_catalogue()
        assert resumed.verdicts() == serial.verdicts()
        assert not list(checkpoint.glob("*.journal"))


# ---------------------------------------------------------------------------
# graceful shutdown and journal degradation (ISSUE-8)
# ---------------------------------------------------------------------------


def _slow_square(x):
    time.sleep(0.15)
    return x * x


class _FailingHandle:
    """A journal handle whose directory just turned unwritable."""

    def write(self, data):
        raise OSError(30, "Read-only file system")

    def flush(self):
        raise OSError(30, "Read-only file system")

    def close(self):
        pass


class TestGracefulShutdown:
    def teardown_method(self):
        clear_shutdown()

    def test_signal_handlers_install_request_and_restore(self):
        previous = install_shutdown_signals()
        try:
            assert not shutdown_requested()
            signal.raise_signal(signal.SIGTERM)
            assert shutdown_requested()
            # A second signal means "stop waiting": the classic hard stop.
            with pytest.raises(KeyboardInterrupt):
                signal.raise_signal(signal.SIGTERM)
        finally:
            uninstall_shutdown_signals(previous)
            clear_shutdown()
        assert signal.getsignal(signal.SIGTERM) is previous[signal.SIGTERM]

    def test_serial_engine_raises_after_checkpointing_completed_tasks(self):
        completed = []

        def worker(x):
            if x == 3:
                request_shutdown()
            return x * x

        got = []
        with pytest.raises(ShutdownRequested):
            for value in supervised_imap(
                worker,
                list(range(8)),
                workers=1,
                on_complete=lambda index, result: completed.append(index),
            ):
                got.append(value)
        # Tasks finished before the request stay finished (and journaled);
        # the engine stops cleanly at the next task boundary.
        assert got == [0, 1, 4, 9]
        assert completed == [0, 1, 2, 3]

    def test_parallel_engine_drains_busy_workers_before_raising(self):
        completed = []
        stream = supervised_imap(
            _slow_square,
            list(range(6)),
            workers=2,
            on_complete=lambda index, result: completed.append(
                (index, result)
            ),
        )
        assert next(stream) == 0
        request_shutdown()
        with pytest.raises(ShutdownRequested):
            for _ in stream:
                pass
        # Whatever the workers had in hand when the shutdown arrived was
        # finished and checkpointed, not thrown away — and every drained
        # result is the real verdict.
        drained = dict(completed)
        assert drained[0] == 0
        for index, value in completed:
            assert value == index * index

    def test_sweep_shutdown_then_resume_recomputes_only_the_tail(
        self, tmp_path, monkeypatch
    ):
        calls = []
        real_worker = _counterexamples._sweep_chunk_worker

        def interrupting(task):
            calls.append(task)
            result = real_worker(task)
            if len(calls) == 2:
                request_shutdown()
            return result

        monkeypatch.setattr(
            _counterexamples, "_sweep_chunk_worker", interrupting
        )
        with pytest.raises(ShutdownRequested):
            search_sc_drf_violation(
                TINY_BOUNDS, workers=1, cache=False, checkpoint=tmp_path
            )
        clear_shutdown()
        assert list(tmp_path.glob("sweep-sc-drf-*.journal")), (
            "interrupted sweep left no journal"
        )
        interrupted_after = len(calls)
        resumed = search_sc_drf_violation(
            TINY_BOUNDS, workers=1, cache=False, checkpoint=tmp_path
        )
        # The two journaled chunks were not recomputed.
        recomputed = calls[interrupted_after:]
        assert recomputed
        assert not any(task in calls[:2] for task in recomputed)
        # And the resumed report is bit-identical to a fresh serial run.
        fresh = search_sc_drf_violation(TINY_BOUNDS, workers=1, cache=False)
        assert resumed.counterexample is None
        assert fresh.counterexample is None
        assert resumed.programs_examined == fresh.programs_examined
        assert not list(tmp_path.glob("sweep-sc-drf-*.journal"))


class TestJournalDegradation:
    def test_record_failure_warns_once_and_degrades(self, tmp_path):
        journal = _open_journal(tmp_path)
        journal.record(0, "ok")
        journal._handle = _FailingHandle()
        with pytest.warns(RuntimeWarning, match="continuing un-journaled"):
            journal.record(1, "lost")
        assert journal.degraded
        # Further records are silently skipped — one warning, not a storm.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            journal.record(2, "also lost")
        # Only the entry written before the failure survives for resume.
        resumed = _open_journal(tmp_path)
        assert resumed.completed() == {0: "ok"}
        resumed.close()

    def test_sweep_continues_unjournaled_when_dir_turns_read_only(
        self, tmp_path, monkeypatch
    ):
        real_open = SweepJournal.open

        def poisoning_open(directory, kind, fp, revision, total):
            journal = real_open(directory, kind, fp, revision, total)
            if journal is not None:
                real_record = journal.record
                state = {"records": 0}

                def record(index, result):
                    state["records"] += 1
                    if state["records"] == 2:
                        # The directory goes read-only mid-sweep.
                        journal._handle = _FailingHandle()
                    real_record(index, result)

                journal.record = record
            return journal

        monkeypatch.setattr(SweepJournal, "open", poisoning_open)
        with pytest.warns(RuntimeWarning, match="continuing un-journaled"):
            report = search_sc_drf_violation(
                TINY_BOUNDS, workers=1, cache=False, checkpoint=tmp_path
            )
        # The sweep finished and its verdict is untouched by the failure.
        fresh = search_sc_drf_violation(TINY_BOUNDS, workers=1, cache=False)
        assert report.counterexample is None
        assert fresh.counterexample is None
        assert report.programs_examined == fresh.programs_examined
